"""SPMD executor: run one program per rank on real threads.

``run_spmd(nranks, program)`` calls ``program(comm)`` on every rank and
collects return values, per-rank virtual clocks and communication stats.
Exceptions in any rank cancel the run and re-raise with the rank attached,
so test failures point at the failing rank program rather than hanging.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.obs import phase_span
from repro.runtime.comm import CommStats, Communicator, World
from repro.runtime.netmodel import NetworkModel, ZERO_COST
from repro.util.errors import ReproError
from repro.util.logging import get_logger

logger = get_logger("runtime.executor")


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    times: list[float]  # per-rank final virtual time
    stats: list[CommStats]

    @property
    def makespan(self) -> float:
        """The run's virtual wall time (slowest rank)."""
        return max(self.times) if self.times else 0.0

    def phase_breakdown(self) -> dict[str, float]:
        """Summed per-phase virtual seconds across ranks."""
        out: dict[str, float] = {}
        for s in self.stats:
            for phase, t in s.phase_s.items():
                out[phase] = out.get(phase, 0.0) + t
        return out

    def phase_fractions(self) -> dict[str, float]:
        """Each phase's share of total charged time (the breakdown figures)."""
        breakdown = self.phase_breakdown()
        total = sum(breakdown.values())
        if total <= 0:
            return {k: 0.0 for k in breakdown}
        return {k: v / total for k, v in breakdown.items()}


def run_spmd(
    nranks: int,
    program: Callable[[Communicator], Any],
    network: NetworkModel = ZERO_COST,
    timeout_s: float = 120.0,
) -> SPMDResult:
    """Execute ``program`` on ``nranks`` ranks and gather the results.

    ``program`` receives a :class:`Communicator`; its return value lands in
    ``SPMDResult.results[rank]``.
    """
    logger.debug("run_spmd: launching %d rank(s)", nranks)
    world = World(nranks, network)
    world.timeout_s = timeout_s
    comms = [world.communicator(r) for r in range(nranks)]
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            # the thread is named rank{r}, so this lands on a per-rank
            # wall-clock track next to the rank's virtual timeline
            with phase_span("rank_program", cat="run", rank=rank):
                results[rank] = program(comms[rank])
        except BaseException as exc:  # noqa: BLE001 - must not kill the thread pool silently
            logger.warning("rank %d failed: %s: %s", rank, type(exc).__name__, exc)
            with lock:
                errors.append((rank, exc))
            # release peers stuck in collectives so the run can unwind
            world._barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout_s)
        if t.is_alive():
            world._barrier.abort()
            raise ReproError(f"SPMD run timed out waiting for {t.name}")

    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        # BrokenBarrier on other ranks is collateral of the abort; surface
        # the root cause only
        root = [e for e in errors if not isinstance(e[1], threading.BrokenBarrierError)]
        if root:
            rank, exc = min(root, key=lambda e: e[0])
        from repro.obs import get_event_log, get_flight_recorder

        get_event_log().emit("executor.rank_failed", level="error", rank=rank,
                             error=f"{type(exc).__name__}: {exc}")
        get_flight_recorder().dump("rank_failure", exc)
        raise ReproError(f"rank {rank} failed: {type(exc).__name__}: {exc}") from exc

    result = SPMDResult(
        results=results,
        times=[c.clock.now() for c in comms],
        stats=[c.stats for c in comms],
    )
    logger.debug("run_spmd: %d rank(s) done, makespan %.6es",
                 nranks, result.makespan)
    return result


__all__ = ["run_spmd", "SPMDResult"]
