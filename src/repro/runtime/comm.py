"""Rank communicator with virtual-time accounting.

Rank programs run in threads (one per rank); messages travel through
per-(source, dest, tag) FIFO queues carrying both the payload and the
sender's virtual timestamp.  A receive completes at

    max(local_clock, send_time + alpha + bytes/beta)

so waiting on a late sender shows up as communication time on the receiving
rank, exactly as a real trace would attribute it.  Collectives are
implemented with real rendezvous (a barrier + shared slots) and charged with
the tree/ring costs from the :class:`~repro.runtime.netmodel.NetworkModel`.
"""

from __future__ import annotations

import enum
import queue
import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs import get_event_log, get_metrics, get_tracer
from repro.obs.tracer import next_span_id
from repro.runtime.faults import get_injector
from repro.runtime.netmodel import NetworkModel, ZERO_COST
from repro.runtime.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    get_resilience_log,
)
from repro.util.errors import (
    CommFaultError,
    RankKilledError,
    RankPeerFailedError,
    ReproError,
)
from repro.util.timing import VirtualClock


class ReduceOp(enum.Enum):
    """Reduction operators supported by :meth:`Communicator.allreduce`."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"


_REDUCERS = {
    ReduceOp.SUM: lambda parts: np.sum(parts, axis=0),
    ReduceOp.MAX: lambda parts: np.max(parts, axis=0),
    ReduceOp.MIN: lambda parts: np.min(parts, axis=0),
}


@dataclass
class _Message:
    payload: Any
    nbytes: int
    send_time: float
    seq: int = 0  # per-(src, dst, tag) sequence number (dedup + ordering)
    extra_delay_s: float = 0.0  # injected in-flight delay
    # sender's span context (trace_id, span_id, track, virtual send time):
    # travels with the message through drops/dups/delays/re-sends so the
    # receiver can record the causal send->recv flow edge for exactly the
    # copy that was delivered
    span: tuple[str, int, str, float] | None = None


@dataclass
class _Poison:
    """Sentinel flooded through every channel when a rank dies.

    Receivers raise :class:`RankPeerFailedError` the moment they dequeue
    one, instead of blocking until the deadlock-guard timeout.  The
    sentinel is re-enqueued on delivery so every later receive on the same
    channel fails fast too.
    """

    rank: int  # the rank that failed
    error: str  # its original error, pre-rendered


def _payload_bytes(data: Any) -> int:
    if isinstance(data, np.ndarray):
        return data.nbytes
    if isinstance(data, (int, float)):
        return 8
    if isinstance(data, (list, tuple)):
        return sum(_payload_bytes(d) for d in data)
    if isinstance(data, dict):
        return sum(_payload_bytes(v) for v in data.values())
    return 64  # opaque objects: charge a small envelope


class World:
    """Shared state of one SPMD run: channels + collective rendezvous."""

    def __init__(self, nranks: int, network: NetworkModel = ZERO_COST):
        if nranks < 1:
            raise ReproError(f"world size must be >= 1, got {nranks}")
        self.nranks = nranks
        self.network = network
        self._channels: dict[tuple[int, int, int], queue.Queue] = {}
        self._channel_lock = threading.Lock()
        self._barrier = threading.Barrier(nranks)
        self._coll_lock = threading.Lock()
        self._coll_slots: list[Any] = [None] * nranks
        self._coll_result: Any = None
        self.timeout_s = 60.0  # deadlock guard for tests
        # liveness monitor (set by run_spmd when heartbeat_s is given);
        # Communicator.compute() beats it on every call
        self.monitor = None
        # poison pill: set once by the first failing rank, then flooded
        # through every existing and future channel
        self._poison: _Poison | None = None
        # resend buffer: messages the injector "lost" in flight, keyed by
        # channel.  The sender keeps every dropped message here so the
        # receiver's timeout can trigger an idempotent re-send.
        self._lost: dict[tuple[int, int, int], list[_Message]] = {}
        self._lost_lock = threading.Lock()

    def channel(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._channel_lock:
            ch = self._channels.get(key)
            if ch is None:
                ch = queue.Queue()
                self._channels[key] = ch
                if self._poison is not None:
                    ch.put(self._poison)
            return ch

    def poison(self, rank: int, exc: BaseException) -> None:
        """Cancel peers after ``rank`` failed: flood channels, break barriers.

        Idempotent — only the first failure becomes the pill; later ones
        are collateral of the unwind and keep their own error objects.
        """
        with self._channel_lock:
            if self._poison is not None:
                return
            self._poison = _Poison(rank, f"{type(exc).__name__}: {exc}")
            channels = list(self._channels.values())
        try:
            self._barrier.abort()
        except Exception:  # noqa: BLE001 - abort must never mask the root cause
            pass
        for ch in channels:
            ch.put(self._poison)

    def stash_lost(self, src: int, dst: int, tag: int, msg: _Message) -> None:
        """Record a dropped message in the sender's resend buffer."""
        with self._lost_lock:
            self._lost.setdefault((src, dst, tag), []).append(msg)

    def redeliver(self, src: int, dst: int, tag: int) -> bool:
        """Re-send the oldest lost message on a channel (idempotent resend).

        Called by a receiver whose timeout expired; returns ``True`` when a
        lost message was found and put back in flight.
        """
        with self._lost_lock:
            pending = self._lost.get((src, dst, tag))
            if not pending:
                return False
            msg = pending.pop(0)
        self.channel(src, dst, tag).put(msg)
        return True

    def communicator(self, rank: int) -> "Communicator":
        return Communicator(self, rank)


@dataclass
class CommStats:
    """Per-rank accounting of where virtual time went."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    phase_s: dict[str, float] = field(default_factory=dict)

    def charge_phase(self, phase: str, dt: float) -> None:
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + dt

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe view for the run report's ``comm`` section."""
        return {
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "phase_s": dict(self.phase_s),
        }


class Communicator:
    """One rank's endpoint (mpi4py-flavoured API, virtual time attached)."""

    def __init__(self, world: World, rank: int):
        if not (0 <= rank < world.nranks):
            raise ReproError(f"rank {rank} out of range [0, {world.nranks})")
        self.world = world
        self.rank = rank
        self.clock = VirtualClock()
        self.stats = CommStats()
        self.retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
        # sequence numbers: next seq per (dest, tag); highest seq delivered
        # per (source, tag) — the dedup watermark for duplicated messages
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_watermark: dict[tuple[int, int], int] = {}
        # reorder buffer: messages that overtook a lost one, per (source, tag)
        self._recv_pending: dict[tuple[int, int], dict[int, _Message]] = {}
        # virtual-timeline track: one per rank in the exported trace
        self.tracer = get_tracer()
        self.track = f"virtual/rank{rank}"
        # structured event log (per-message events are debug level, so the
        # always-on default pays one attribute check per message)
        self.elog = get_event_log()
        # metric instruments (shared no-ops when metrics are disabled)
        metrics = get_metrics()
        self.metrics = metrics
        self._m_messages = metrics.counter(
            "comm_messages_total", "point-to-point messages sent")
        self._m_bytes = metrics.counter(
            "comm_bytes_sent_total", "point-to-point payload bytes sent")
        self._m_halo_bytes = metrics.counter(
            "comm_halo_bytes_total", "bytes sent through neighbour exchanges")
        self._m_recv_wait = metrics.histogram(
            "comm_recv_wait_seconds", "virtual seconds blocked in recv")
        self._m_collective = metrics.counter(
            "comm_collectives_total", "collective operations entered")

    @property
    def size(self) -> int:
        return self.world.nranks

    # ------------------------------------------------------------- local work
    def compute(self, seconds: float, phase: str = "compute") -> None:
        """Charge ``seconds`` of local computation to this rank's clock.

        An injected rank stall surfaces here: the clock additionally
        advances by the stall duration, which peers then wait out in their
        next receive or collective — exactly how a straggler rank looks in
        a real trace.
        """
        if seconds < 0:
            raise ReproError(f"negative compute charge {seconds}")
        if self.world.monitor is not None:
            self.world.monitor.beat(self.rank)
        injector = get_injector()
        if injector.enabled:
            if injector.kill_rank(self.rank):
                get_resilience_log().record_injected("rank_kill", rank=self.rank)
                raise RankKilledError(
                    f"rank {self.rank} killed by injected fault",
                    rank=self.rank,
                )
            stall = injector.stall_seconds(self.rank)
            if stall > 0.0:
                before = self.clock.now()
                self.clock.advance(stall)
                self.stats.charge_phase("fault_stall", stall)
                get_resilience_log().record_injected("stall", rank=self.rank)
                if self.tracer.enabled:
                    self.tracer.complete(self.track, "fault:stall", before,
                                         self.clock.now(), cat="fault",
                                         stall_s=stall)
            factor = injector.slow_factor(self.rank)
            if factor > 1.0:
                # a degraded rank: its compute genuinely takes longer, so
                # the extra lands in compute_s (not comm_s) — that is what
                # the imbalance-triggered rebalancer measures
                slow = seconds * (factor - 1.0)
                before = self.clock.now()
                self.clock.advance(slow)
                self.stats.compute_s += slow
                self.stats.charge_phase("fault_slow", slow)
                get_resilience_log().record_injected("rank_slow", rank=self.rank)
                if self.tracer.enabled:
                    self.tracer.complete(self.track, "fault:slow", before,
                                         self.clock.now(), cat="fault",
                                         factor=factor)
        before = self.clock.now()
        self.clock.advance(seconds)
        self.stats.compute_s += seconds
        self.stats.charge_phase(phase, seconds)
        if self.tracer.enabled:
            self.tracer.complete(self.track, phase, before, self.clock.now(),
                                 cat="compute")

    # ---------------------------------------------------------- point to point
    def send(self, dest: int, data: Any, tag: int = 0) -> None:
        """Non-blocking buffered send (MPI_Isend-like; copies the payload).

        The fault injector may drop the message into the world's resend
        buffer (recovered by the receiver's retry), duplicate it (dropped
        by the receiver's sequence dedup) or delay it in flight.
        """
        if dest == self.rank:
            raise ReproError("send to self is not allowed")
        if isinstance(data, np.ndarray):
            payload: Any = data.copy()
        else:
            payload = data
        nbytes = _payload_bytes(payload)
        key = (dest, tag)
        seq = self._send_seq.get(key, 0) + 1
        self._send_seq[key] = seq
        msg = _Message(payload, nbytes, self.clock.now(), seq=seq)
        send_span = 0
        if self.tracer.enabled:
            # span context rides inside the message: the receiving side of
            # exactly the delivered copy records the causal flow edge
            send_span = next_span_id()
            msg.span = (self.tracer.trace_id, send_span, self.track,
                        msg.send_time)
        from repro.verify.sanitizer import get_sanitizer
        san = get_sanitizer()
        if san.enabled:
            # out-of-band checksum: the payload (and every byte count the
            # virtual clocks see) is untouched
            san.note_sent(self.rank, dest, tag, seq, payload)
        copies = 1
        injector = get_injector()
        if injector.enabled:
            rule = injector.message_fault(self.rank, dest, tag)
            if rule is not None:
                get_resilience_log().record_injected(rule.kind, rank=self.rank)
                if self.tracer.enabled:
                    self.tracer.instant(
                        self.track, f"fault:{rule.kind}->{dest}",
                        self.clock.now(), cat="fault", tag=tag, seq=seq)
                if rule.kind == "drop":
                    copies = 0
                    self.world.stash_lost(self.rank, dest, tag, msg)
                elif rule.kind == "dup":
                    copies = 2
                elif rule.kind == "delay":
                    msg.extra_delay_s = rule.delay_s
        for _ in range(copies):
            self.world.channel(self.rank, dest, tag).put(msg)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        if self.metrics.enabled:
            self._m_messages.inc(1, rank=self.rank)
            self._m_bytes.inc(nbytes, rank=self.rank)
        if self.tracer.enabled:
            # a zero-duration span (not an instant) so the Perfetto flow
            # start has an enclosing slice to bind to
            self.tracer.complete(self.track, f"send->{dest}", msg.send_time,
                                 msg.send_time, cat="comm", bytes=nbytes,
                                 tag=tag, seq=seq, span_id=send_span)
            self.tracer.counter(self.track, "bytes_sent", self.clock.now(),
                                self.stats.bytes_sent)
        if self.elog.debug_enabled:
            self.elog.emit("comm.send", level="debug", rank=self.rank,
                           span_id=send_span, dest=dest, tag=tag, seq=seq,
                           bytes=nbytes)

    def _next_message(self, source: int, tag: int) -> tuple[_Message, float]:
        """Blocking in-order dequeue with timeout/backoff/re-send and dedup.

        Returns ``(message, recovery_penalty_s)`` where the penalty is the
        virtual time the retry protocol added on top of the normal arrival
        model.  Fault-free runs take the fast path: one blocking get with
        the world's deadlock-guard timeout, no per-receive overhead.

        Under injection the receiver enforces *in-order* delivery by
        sequence number: only ``watermark + 1`` is accepted.  A stale seq
        is a duplicate (discarded); a future seq means a message overtook
        one the fabric lost (sends are non-blocking, so a fast sender runs
        ahead) — it is parked in a reorder buffer and the gap triggers an
        immediate re-send request.  A timeout with nothing to redeliver
        backs off exponentially until the retry budget is spent.
        """
        ch = self.world.channel(source, self.rank, tag)
        key = (source, tag)
        policy = self.retry_policy
        log = get_resilience_log()
        fast_path = not get_injector().enabled
        attempt = 0
        penalty = 0.0
        waited_wall = 0.0
        while True:
            expected = self._recv_watermark.get(key, 0) + 1
            parked = self._recv_pending.get(key, {}).pop(expected, None)
            if parked is not None:
                msg = parked
            else:
                timeout = (self.world.timeout_s if fast_path
                           else min(policy.wall_timeout(attempt), self.world.timeout_s))
                try:
                    msg = ch.get(timeout=timeout)
                except queue.Empty:
                    if self.world._poison is not None:
                        self._raise_poisoned(self.world._poison)
                    waited_wall += timeout
                    if fast_path or waited_wall >= self.world.timeout_s \
                            or attempt >= policy.max_retries:
                        raise CommFaultError(
                            f"rank {self.rank}: recv from {source} tag {tag} "
                            f"timed out after {attempt} retries "
                            "(deadlock, or a fault beyond the retry budget)"
                        ) from None
                    # timeout: request an idempotent re-send of anything the
                    # fabric lost, back off exponentially, and charge the
                    # protocol's virtual latency so recovery shows in traces
                    attempt, penalty = self._retry(
                        source, tag, attempt, penalty, "timeout")
                    continue
                if isinstance(msg, _Poison):
                    ch.put(msg)  # keep the channel poisoned for later receives
                    self._raise_poisoned(msg)
                if msg.seq and msg.seq < expected:
                    # a duplicated copy re-announces an already-delivered
                    # seq — discard and keep waiting
                    log.record_duplicate_dropped(rank=self.rank)
                    continue
                if msg.seq and msg.seq > expected:
                    # overtake: the gap seq was lost in flight; park this
                    # message for later and ask for a re-send now
                    self._recv_pending.setdefault(key, {})[msg.seq] = msg
                    if attempt >= policy.max_retries:
                        raise CommFaultError(
                            f"rank {self.rank}: recv from {source} tag {tag} "
                            f"missing seq {expected} after {attempt} retries "
                            "(a dropped message was never recovered)"
                        )
                    attempt, penalty = self._retry(
                        source, tag, attempt, penalty, f"gap:{expected}")
                    continue
            if msg.seq:
                self._recv_watermark[key] = msg.seq
            if attempt > 0:
                log.record_recovered(penalty, rank=self.rank)
            return msg, penalty

    def _raise_poisoned(self, pill: _Poison) -> None:
        """Unwind this rank after a peer failure (poison-pill delivery)."""
        raise RankPeerFailedError(
            f"rank {self.rank}: aborting, peer rank {pill.rank} failed "
            f"({pill.error})",
            rank=pill.rank,
        )

    def _retry(self, source: int, tag: int, attempt: int, penalty: float,
               why: str) -> tuple[int, float]:
        """One recovery round: re-send request + backoff accounting."""
        redelivered = self.world.redeliver(source, self.rank, tag)
        penalty += self.retry_policy.virtual_penalty(attempt)
        attempt += 1
        get_resilience_log().record_retry(rank=self.rank)
        if self.tracer.enabled:
            self.tracer.instant(
                self.track, f"retry<-{source}", self.clock.now(),
                cat="fault", attempt=attempt, why=why, redelivered=redelivered)
        return attempt, penalty

    def recv(self, source: int, tag: int = 0, phase: str = "communication") -> Any:
        """Blocking receive; virtual clock jumps to the arrival time."""
        msg, penalty = self._next_message(source, tag)
        from repro.verify.sanitizer import get_sanitizer
        san = get_sanitizer()
        if san.enabled:
            san.check_received(source, self.rank, tag, msg.seq, msg.payload)
        arrival = (msg.send_time + msg.extra_delay_s
                   + self.world.network.transfer_time(msg.nbytes))
        before = self.clock.now()
        self.clock.advance_to(arrival)
        if penalty > 0.0:
            self.clock.advance(penalty)
        waited = self.clock.now() - before
        self.stats.comm_s += waited
        self.stats.charge_phase(phase, waited)
        if self.metrics.enabled:
            self._m_recv_wait.observe(waited, rank=self.rank)
        if self.tracer.enabled:
            recv_span = next_span_id()
            parent = 0
            if msg.span is not None:
                _, parent, src_track, src_t = msg.span
                # causal edge: the sender's send-span to this recv-span.
                # dst_t is the recv end, which the arrival model guarantees
                # is >= src_t (+ delays/penalties) — flows point forward in
                # virtual time even under retries, dups and reorders.
                self.tracer.flow(
                    f"msg:{source}->{self.rank}", parent, src_track, src_t,
                    self.track, self.clock.now(), tag=tag, seq=msg.seq,
                    bytes=msg.nbytes)
            self.tracer.complete(self.track, f"recv<-{source}", before,
                                 self.clock.now(), cat="comm",
                                 bytes=msg.nbytes, tag=tag, waited_s=waited,
                                 span_id=recv_span, parent_span_id=parent)
        if self.elog.debug_enabled:
            parent = msg.span[1] if msg.span is not None else 0
            self.elog.emit("comm.recv", level="debug", rank=self.rank,
                           parent_id=parent, source=source, tag=tag,
                           seq=msg.seq, bytes=msg.nbytes, waited_s=waited)
        return msg.payload

    def exchange(self, sends: dict[int, Any], tag: int = 0,
                 phase: str = "communication") -> dict[int, Any]:
        """Symmetric neighbour exchange: send to every key, receive from each.

        This is the halo-update pattern: post all sends first, then drain
        the receives (safe because sends are buffered).
        """
        if self.metrics.enabled and sends:
            self._m_halo_bytes.inc(
                sum(_payload_bytes(d) for d in sends.values()), rank=self.rank
            )
        for dest, data in sends.items():
            self.send(dest, data, tag)
        return {src: self.recv(src, tag, phase) for src in sends}

    # -------------------------------------------------------------- collectives
    # Collectives carry causal context the same way messages do: every rank
    # deposits its entry (time, rank, span_id, track) and the rendezvous max
    # elects the *straggler* — the rank whose late arrival gated completion.
    # Each other rank then records a flow edge from that entry to its own
    # collective span, so the measured critical path can hop to the rank
    # that actually caused the wait.
    def _coll_entry(self, coll: str) -> tuple[float, int, int, str]:
        now = self.clock.now()
        entry_span = 0
        if self.tracer.enabled:
            entry_span = next_span_id()
            # zero-duration span (like send): gives the flow start an
            # enclosing slice and the measured critical path a span_id
            self.tracer.complete(self.track, f"{coll}-enter", now, now,
                                 cat="comm", span_id=entry_span)
        return (now, self.rank, entry_span, self.track)

    def _coll_finish(self, coll: str, latest: tuple[float, int, int, str],
                     before: float, nbytes: int, **extra: Any) -> None:
        """Record the collective span + the causal edge from the straggler."""
        now = self.clock.now()
        waited = now - before
        src_t, src_rank, src_span, src_track = latest
        parent = src_span if src_rank != self.rank else 0
        if self.tracer.enabled:
            if parent:
                # fresh arrow id (one flow per dependent rank); the args
                # carry the straggler's entry span so the measured critical
                # path can resolve the jump target
                self.tracer.flow(f"coll:{coll}", next_span_id(), src_track,
                                 src_t, self.track, now, src_span=parent,
                                 src_rank=src_rank)
            self.tracer.complete(self.track, coll, before, now, cat="comm",
                                 bytes=nbytes, waited_s=waited,
                                 span_id=next_span_id(),
                                 parent_span_id=parent, **extra)
        if self.elog.debug_enabled:
            self.elog.emit(f"comm.{coll}", level="debug", rank=self.rank,
                           parent_id=parent, bytes=nbytes, waited_s=waited)

    def _rendezvous(self, value: Any, combine) -> Any:
        """All ranks deposit a value; one combines; all pick up the result."""
        w = self.world
        w._coll_slots[self.rank] = value
        idx = w._barrier.wait()
        if idx == 0:
            w._coll_result = combine(list(w._coll_slots))
        w._barrier.wait()
        result = w._coll_result
        w._barrier.wait()  # everyone read before slots are reused
        if idx == 0:
            w._coll_slots = [None] * w.nranks
            w._coll_result = None
        w._barrier.wait()
        return result

    def allreduce(self, data: np.ndarray | float, op: ReduceOp = ReduceOp.SUM,
                  phase: str = "communication") -> Any:
        """Tree allreduce with real data combination + modelled cost."""
        arr = np.asarray(data, dtype=np.float64)
        if self.metrics.enabled:
            self._m_collective.inc(1, rank=self.rank, op="allreduce")
        # synchronise: collective completes only after the latest rank enters
        latest = self._rendezvous(self._coll_entry("allreduce"), max)
        parts = self._rendezvous(arr, lambda slots: _REDUCERS[op](np.stack(slots)))
        cost = self.world.network.allreduce_time(arr.nbytes, self.size)
        before = self.clock.now()
        self.clock.advance_to(latest[0] + cost)
        self.stats.comm_s += self.clock.now() - before
        self.stats.charge_phase(phase, self.clock.now() - before)
        self._coll_finish("allreduce", latest, before, arr.nbytes, op=op.value)
        if np.ndim(data) == 0:
            return float(parts)
        return parts

    def allgather(self, data: Any, phase: str = "communication") -> list[Any]:
        """Ring allgather with modelled cost."""
        if self.metrics.enabled:
            self._m_collective.inc(1, rank=self.rank, op="allgather")
        latest = self._rendezvous(self._coll_entry("allgather"), max)
        slots = self._rendezvous(data, list)
        nbytes = _payload_bytes(data)
        cost = self.world.network.allgather_time(nbytes, self.size)
        before = self.clock.now()
        self.clock.advance_to(latest[0] + cost)
        self.stats.comm_s += self.clock.now() - before
        self.stats.charge_phase(phase, self.clock.now() - before)
        self._coll_finish("allgather", latest, before, nbytes)
        return slots

    def barrier(self) -> None:
        entry = self._rendezvous(self.clock.now(), max)
        self.clock.advance_to(entry)


__all__ = ["World", "Communicator", "ReduceOp", "CommStats"]
