"""Network cost models for the simulated communicator.

The classic postal model: a message of ``n`` bytes costs
``alpha + n / beta`` seconds end to end.  Collectives use tree algorithms on
top (``ceil(log2 P))`` rounds for reductions/broadcasts), which is what
mainstream MPI implementations do at these message sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Postal (alpha-beta) network model."""

    name: str
    latency_s: float  # alpha
    bandwidth_gbs: float  # beta, GB/s per link

    def transfer_time(self, nbytes: float) -> float:
        """Point-to-point message time."""
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def allreduce_time(self, nbytes: float, nranks: int) -> float:
        """Tree allreduce: log2(P) rounds of (latency + message)."""
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return rounds * self.transfer_time(nbytes)

    def allgather_time(self, nbytes_per_rank: float, nranks: int) -> float:
        """Ring allgather: (P-1) steps each moving one rank's block."""
        if nranks <= 1:
            return 0.0
        return (nranks - 1) * self.transfer_time(nbytes_per_rank)


#: Cluster interconnect in the class of the paper's testbed (HDR InfiniBand).
IB_CLUSTER = NetworkModel("ib-cluster", latency_s=1.5e-6, bandwidth_gbs=12.0)

#: Intra-node shared-memory transport.
SHARED_MEMORY = NetworkModel("shared-memory", latency_s=3e-7, bandwidth_gbs=40.0)

#: Free communication (for isolating compute behaviour in tests).
ZERO_COST = NetworkModel("zero-cost", latency_s=0.0, bandwidth_gbs=1e12)

__all__ = ["NetworkModel", "IB_CLUSTER", "SHARED_MEMORY", "ZERO_COST"]
