"""Small streaming-statistics helpers shared by timers and metrics.

Both :class:`~repro.util.timing.TimerStats` and the histogram metric in
:mod:`repro.obs.metrics` need quantiles over an unbounded observation
stream with bounded memory.  :class:`Reservoir` keeps a uniformly-spread
subset via stride-doubling decimation; :func:`percentile` interpolates a
quantile out of whatever was kept.
"""

from __future__ import annotations

import math

#: Samples kept per series for quantile estimation.
RESERVOIR_SIZE = 1024


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        return 0.0
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    return data[lo] + (data[hi] - data[lo]) * (pos - lo)


class Reservoir:
    """Bounded sample store with stride-doubling decimation.

    Keeps at most ``size`` samples uniformly spread over everything ever
    offered: when full, every other kept sample is dropped and the keep
    stride doubles, so late samples do not crowd out early ones.
    """

    __slots__ = ("samples", "_stride", "_skip", "_size")

    def __init__(self, size: int = RESERVOIR_SIZE):
        self.samples: list[float] = []
        self._stride = 1
        self._skip = 0
        self._size = size

    def add(self, value: float) -> None:
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self.samples.append(value)
        if len(self.samples) >= self._size:
            self.samples = self.samples[::2]
            self._stride *= 2

    def percentile(self, q: float) -> float:
        return percentile(self.samples, q)


__all__ = ["Reservoir", "RESERVOIR_SIZE", "percentile"]
