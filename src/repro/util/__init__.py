"""Small shared utilities: errors, logging, timers, and numeric helpers.

Everything in :mod:`repro` that is not domain specific lives here so the
domain packages can stay focused.  The module is intentionally dependency
light (stdlib + numpy only).
"""

from repro.util.errors import (
    ReproError,
    DSLError,
    CodegenError,
    MeshError,
    SolverError,
    ConfigError,
)
from repro.util.timing import Timer, TimerRegistry, WallClock, VirtualClock
from repro.util.logging import get_logger, set_verbosity
from repro.util.misc import (
    ordered_unique,
    pairwise,
    human_bytes,
    human_time,
    check_finite,
)

__all__ = [
    "ReproError",
    "DSLError",
    "CodegenError",
    "MeshError",
    "SolverError",
    "ConfigError",
    "Timer",
    "TimerRegistry",
    "WallClock",
    "VirtualClock",
    "get_logger",
    "set_verbosity",
    "ordered_unique",
    "pairwise",
    "human_bytes",
    "human_time",
    "check_finite",
]
