"""Assorted helpers shared across the package."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

import numpy as np

from repro.util.errors import SolverError

T = TypeVar("T")


def ordered_unique(items: Iterable[T]) -> list[T]:
    """Unique items preserving first-seen order (hashable items)."""
    seen: set[T] = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def pairwise(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Consecutive pairs ``(items[i], items[i+1])``."""
    for i in range(len(items) - 1):
        yield items[i], items[i + 1]


def human_bytes(n: float) -> str:
    """``human_bytes(3.2e9) == '3.20 GB'`` (decimal units, as vendors do)."""
    for unit in ("B", "kB", "MB", "GB", "TB"):
        if abs(n) < 1000.0 or unit == "TB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1000.0
    raise AssertionError("unreachable")


def human_time(t: float) -> str:
    """Compact time formatting across ns..hours."""
    if t < 1e-6:
        return f"{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.2f} ms"
    if t < 120.0:
        return f"{t:.2f} s"
    if t < 7200.0:
        return f"{t / 60.0:.1f} min"
    return f"{t / 3600.0:.2f} h"


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Raise :class:`SolverError` if ``array`` contains NaN/Inf.

    The explicit solvers call this between time steps so a blow-up is
    reported with the variable name and first offending index instead of
    silently propagating NaNs.
    """
    bad = ~np.isfinite(array)
    if bad.any():
        idx = np.unravel_index(int(np.argmax(bad)), array.shape)
        raise SolverError(
            f"non-finite value in '{name}' at index {tuple(int(i) for i in idx)}: "
            f"{array[idx]!r}"
        )
    return array
