"""Wall-clock and virtual clocks plus named timers.

The simulated GPU (:mod:`repro.gpu`) and the simulated communicator
(:mod:`repro.runtime`) both advance a :class:`VirtualClock`; real host
compute segments are measured with :class:`Timer` against a
:class:`WallClock` and can be *charged* onto a virtual timeline, which is how
hybrid host/device overlap is modelled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.util.errors import ClockError
from repro.util.stats import Reservoir, percentile


class WallClock:
    """Monotonic wall clock (thin wrapper so it can be swapped in tests)."""

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock:
    """A clock that only moves when told to.

    Used for simulated timelines (per-rank, per-device, per-stream).  The
    unit is seconds.
    """

    def __init__(self, start: float = 0.0):
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds (``dt`` must be >= 0)."""
        if dt < 0:
            raise ClockError(f"cannot advance a clock backwards (dt={dt})")
        self._t += dt
        return self._t

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` if ``t`` is later."""
        if t > self._t:
            self._t = t
        return self._t

    def reset(self, t: float = 0.0) -> None:
        self._t = float(t)


@dataclass
class TimerStats:
    """Accumulated statistics for one named timer.

    Besides the running total/min/max, every recorded duration feeds a
    bounded :class:`~repro.util.stats.Reservoir`, so the per-phase p50/p95
    percentiles in the run report and the metrics exposition stay exact-ish
    without unbounded memory.
    """

    name: str
    total: float = 0.0
    count: int = 0
    min: float = float("inf")
    max: float = 0.0
    samples: Reservoir = field(default_factory=Reservoir, repr=False, compare=False)

    def record(self, dt: float) -> None:
        self.total += dt
        self.count += 1
        self.min = min(self.min, dt)
        self.max = max(self.max, dt)
        self.samples.add(dt)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def p50(self) -> float:
        return percentile(self.samples.samples, 50.0)

    @property
    def p95(self) -> float:
        return percentile(self.samples.samples, 95.0)

    def as_dict(self) -> dict[str, float | int]:
        """JSON-safe view: a never-recorded timer's ``min`` is ``inf`` —
        normalise it to ``0.0`` so report exports stay valid JSON."""
        return {
            "total": self.total,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
        }


class Timer:
    """Context-manager timer that records into a :class:`TimerRegistry`."""

    def __init__(self, registry: "TimerRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = self._registry.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._registry.clock.now() - self._start
        self._registry.record(self._name, self.elapsed)


@dataclass
class TimerRegistry:
    """Collection of named timers sharing one clock.

    ``registry.time("assembly")`` is used throughout the generated solver
    code to attribute wall time to the phases reported in the paper's
    execution-time breakdowns (Figs. 5 and 8).
    """

    clock: WallClock = field(default_factory=WallClock)
    stats: dict[str, TimerStats] = field(default_factory=dict)

    def time(self, name: str) -> Timer:
        return Timer(self, name)

    def record(self, name: str, dt: float) -> None:
        if name not in self.stats:
            self.stats[name] = TimerStats(name)
        self.stats[name].record(dt)

    def total(self, name: str) -> float:
        return self.stats[name].total if name in self.stats else 0.0

    def fractions(self) -> dict[str, float]:
        """Each timer's share of the summed total (the breakdown figures)."""
        grand = sum(s.total for s in self.stats.values())
        if grand <= 0:
            return {name: 0.0 for name in self.stats}
        return {name: s.total / grand for name, s in self.stats.items()}

    def reset(self) -> None:
        self.stats.clear()

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """All timers as JSON-safe dicts (the run report's ``timers`` section)."""
        return {name: s.as_dict() for name, s in sorted(self.stats.items())}

    def report(self) -> str:
        lines = [f"{'timer':<28}{'total [s]':>12}{'count':>8}{'mean [s]':>12}"]
        for name in sorted(self.stats):
            s = self.stats[name]
            lines.append(f"{name:<28}{s.total:>12.6f}{s.count:>8d}{s.mean:>12.6f}")
        return "\n".join(lines)
