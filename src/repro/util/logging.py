"""Library logging: one namespaced logger per module, quiet by default."""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("[%(name)s] %(levelname)s: %(message)s"))
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("codegen")`` -> logger named ``repro.codegen``.
    """
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int | str) -> None:
    """Set the package-wide log level (accepts logging levels or names)."""
    _configure_root()
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logging.getLogger(_ROOT_NAME).setLevel(level)
