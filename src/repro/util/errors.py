"""Exception hierarchy for the :mod:`repro` package.

A single root (:class:`ReproError`) lets callers catch everything coming out
of the library while the subclasses keep error sites precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all exceptions raised by :mod:`repro`."""


class DSLError(ReproError):
    """User-facing problem in DSL input (bad expression, unknown entity...)."""


class ParseError(DSLError):
    """The conservation-form input string could not be parsed."""

    def __init__(self, message: str, source: str = "", position: int = -1):
        self.source = source
        self.position = position
        if source and position >= 0:
            caret = " " * position + "^"
            message = f"{message}\n  {source}\n  {caret}"
        super().__init__(message)


class CodegenError(ReproError):
    """A code-generation target could not produce or compile code."""


class MeshError(ReproError):
    """Invalid mesh input or failed mesh operation."""


class SolverError(ReproError):
    """Numerical failure during time stepping (NaN, divergence...)."""


class ConfigError(ReproError):
    """Inconsistent or incomplete problem configuration."""


class FaultSpecError(ConfigError):
    """A ``--faults`` specification string could not be parsed."""


class DeviceOOMError(CodegenError):
    """The simulated device ran out of memory (real or injected)."""


class KernelFaultError(CodegenError):
    """A simulated kernel launch faulted (injected device fault)."""


class DeviceResidencyError(CodegenError):
    """A device buffer was read while its device copy was stale."""


class CommFaultError(ReproError):
    """A point-to-point message could not be recovered within the retry
    budget (the fault outlived the resilience policy)."""
