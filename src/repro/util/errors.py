"""Exception hierarchy for the :mod:`repro` package.

A single root (:class:`ReproError`) lets callers catch everything coming out
of the library while the subclasses keep error sites precise.  Every
exception carries a stable ``RPR###`` diagnostic code (class default,
overridable per raise site via ``code=``) so CLI output, lint reports and
tests can refer to error *classes of cause* instead of message strings.
The full catalogue lives in :mod:`repro.verify.codes` and is documented in
``docs/architecture.md``.

Some subclasses additionally inherit from :class:`ValueError`: those replace
historical bare ``raise ValueError`` sites, and the dual parentage keeps
``except ValueError`` callers working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all exceptions raised by :mod:`repro`."""

    #: Stable diagnostic code (see repro.verify.codes.CATALOGUE).
    default_code = "RPR000"

    def __init__(self, *args, code: str | None = None):
        self.code = code or self.default_code
        super().__init__(*args)


class DSLError(ReproError):
    """User-facing problem in DSL input (bad expression, unknown entity...)."""

    default_code = "RPR101"


class ParseError(DSLError):
    """The conservation-form input string could not be parsed."""

    default_code = "RPR100"

    def __init__(self, message: str, source: str = "", position: int = -1,
                 code: str | None = None):
        self.source = source
        self.position = position
        block = caret_block(source, position)
        if block:
            message = f"{message}\n{block}"
        super().__init__(message, code=code)


def caret_block(source: str, position: int) -> str:
    """Render ``source`` around ``position`` with a ``^`` marker.

    Handles multi-line sources: only the offending line is shown, prefixed
    with its 1-based line number when the source spans several lines, and
    the caret column is measured from that line's start (not the absolute
    character offset).  Returns ``""`` when there is nothing to point at.
    """
    if not source or position < 0:
        return ""
    position = min(position, len(source))
    before = source[:position]
    line_no = before.count("\n")
    col = position - (before.rfind("\n") + 1)
    lines = source.split("\n")
    line = lines[line_no] if line_no < len(lines) else ""
    prefix = f"line {line_no + 1}: " if len(lines) > 1 else ""
    pad = " " * (len(prefix) + col)
    return f"  {prefix}{line}\n  {pad}^"


class CodegenError(ReproError):
    """A code-generation target could not produce or compile code."""

    default_code = "RPR140"


class MeshError(ReproError):
    """Invalid mesh input or failed mesh operation."""

    default_code = "RPR500"


class SolverError(ReproError):
    """Numerical failure during time stepping (NaN, divergence...)."""

    default_code = "RPR301"


class ConfigError(ReproError):
    """Inconsistent or incomplete problem configuration."""

    default_code = "RPR001"


class FaultSpecError(ConfigError):
    """A ``--faults`` specification string could not be parsed."""

    default_code = "RPR002"


class DeviceOOMError(CodegenError):
    """The simulated device ran out of memory (real or injected)."""

    default_code = "RPR310"


class KernelFaultError(CodegenError):
    """A simulated kernel launch faulted (injected device fault)."""

    default_code = "RPR311"


class DeviceResidencyError(CodegenError):
    """A device buffer was read while its device copy was stale."""

    default_code = "RPR305"


class CommFaultError(ReproError):
    """A point-to-point message could not be recovered within the retry
    budget (the fault outlived the resilience policy)."""

    default_code = "RPR312"


class RankKilledError(ReproError):
    """A rank process died mid-run (injected ``rank_kill`` fault)."""

    default_code = "RPR313"

    def __init__(self, *args, rank: int | None = None, code: str | None = None):
        self.rank = rank
        super().__init__(*args, code=code)


class RankPeerFailedError(ReproError):
    """A rank aborted because a peer rank failed (poison-pill cancel).

    Raised on the *surviving* ranks when the executor floods the comm
    channels after one rank dies — collateral, never the root cause."""

    default_code = "RPR314"

    def __init__(self, *args, rank: int | None = None, code: str | None = None):
        self.rank = rank  # the rank that originally failed
        super().__init__(*args, code=code)


class HeartbeatError(ReproError):
    """A rank missed its liveness deadline (stalled or silently dead)."""

    default_code = "RPR315"

    def __init__(self, *args, rank: int | None = None, code: str | None = None):
        self.rank = rank
        super().__init__(*args, code=code)


class CheckpointCorruptError(ReproError):
    """A checkpoint file is corrupt or truncated (failed mid-write)."""

    default_code = "RPR316"


class MigrationError(ReproError):
    """Checkpoint-based state migration could not complete."""

    default_code = "RPR317"


# ---------------------------------------------------------------------------
# typed replacements for historical bare ValueError/RuntimeError sites.
# Each also subclasses ValueError so pre-existing `except ValueError`
# callers (and tests) keep working.
# ---------------------------------------------------------------------------

class ExprError(DSLError, ValueError):
    """A symbolic expression node was constructed with invalid arguments."""

    default_code = "RPR108"


class ClockError(ReproError, ValueError):
    """A virtual clock was asked to move backwards in time."""

    default_code = "RPR401"


class MetricsError(ReproError, ValueError):
    """A metrics instrument was used against its contract (e.g. a counter
    decreased)."""

    default_code = "RPR402"


class BenchFormatError(ReproError, ValueError):
    """A ``repro.bench/1`` envelope was malformed or unreadable."""

    default_code = "RPR403"


class AnalysisInputError(ReproError, ValueError):
    """The trace/report analyzer was given no usable input."""

    default_code = "RPR404"


class ScalingModelError(ConfigError, ValueError):
    """A performance-model scaling query was inconsistent (unknown strategy,
    impossible process count...)."""

    default_code = "RPR420"


class ServeError(ReproError):
    """Solver-service failure (misuse, unavailable, shut down mid-request)."""

    default_code = "RPR903"


class AdmissionError(ServeError):
    """Request rejected at admission: the bounded queue is full
    (backpressure).  Clients should retry with backoff or lower load."""

    default_code = "RPR900"

    def __init__(self, *args, tenant: str = "", code: str | None = None):
        self.tenant = tenant
        super().__init__(*args, code=code)


class QuotaExceededError(AdmissionError):
    """Request rejected at admission: the tenant is over its quota
    (in-flight or running cap).  Distinct from queue backpressure — other
    tenants' requests are still being admitted."""

    default_code = "RPR901"


class JobFailedError(ServeError):
    """A served job failed on every attempt; carries the underlying cause."""

    default_code = "RPR902"


__all__ = [
    "ReproError",
    "DSLError",
    "ParseError",
    "CodegenError",
    "MeshError",
    "SolverError",
    "ConfigError",
    "FaultSpecError",
    "DeviceOOMError",
    "KernelFaultError",
    "DeviceResidencyError",
    "CommFaultError",
    "RankKilledError",
    "RankPeerFailedError",
    "HeartbeatError",
    "CheckpointCorruptError",
    "MigrationError",
    "ExprError",
    "ClockError",
    "MetricsError",
    "BenchFormatError",
    "AnalysisInputError",
    "ScalingModelError",
    "ServeError",
    "AdmissionError",
    "QuotaExceededError",
    "JobFailedError",
    "caret_block",
]
