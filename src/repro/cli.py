"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package inventory, the paper configuration's counts, model constants.
``figures [--out DIR]``
    Regenerate the scaling/profile artefacts of the paper's evaluation
    (Figs. 4, 5, 7, 8, 9 and the profiling table) from the cost models and
    write one text file per artefact.  The field figures (2, 10) need real
    transient runs; regenerate those with ``pytest benchmarks/ -s``.
``bte [--nx N] [--steps N] [--gpu] [--ranks N] [--trace F] [--report F]``
    Run a reduced hot-spot BTE transient and print the temperature summary
    (a fast version of ``examples/bte_hotspot.py``).  ``--trace`` writes a
    Chrome-trace/Perfetto timeline of the run, ``--report`` the aggregated
    :class:`~repro.obs.RunReport` JSON.  ``--faults SPEC`` injects seeded
    faults (message drop/delay/dup, rank stalls, device OOM/kernel faults)
    that the resilient runtime recovers from; ``--checkpoint-every N`` /
    ``--restore FILE`` write and resume ``repro.checkpoint/1`` snapshots.
    ``--fusion on|off|auto`` collapses each generated kernel's expression
    tree into a single fused vector program (results stay bit-identical).
``analyze FILE [FILE] [--json F] [--dot F]``
    Analyze a trace and/or run-report JSON from ``bte --trace/--report``:
    critical-path phase breakdown, kernel/boundary and compute/comm
    overlap-efficiency scores, and the placement-explainability table.
    Files are told apart by their schema, so order does not matter.
``profile [--gpu] [--ranks N] [--out F] [--record] [--calibrate-out F]``
    Run the hot-spot transient under the per-launch kernel profiler and
    print per-kernel/per-phase self time, roofline attribution and the
    perfmodel-drift column of the ``repro.profile/1`` document.  When
    drift exceeds tolerance, ``--calibrate-out`` persists the rescaled
    machine rates; ``--record`` appends the run to the registry.
``compare A B [--top N] [--json F]``
    Diff two profiled runs (profile JSON, run report, or registry entry):
    per-(rank, kind, kernel) self-time delta, the regression culprit
    ranked first.
``history [--key PREFIX] [--gc] [--keep N] [--max-age-days D]``
    Per-problem-signature timeline of registry-recorded runs, with
    anomaly flags (regression/drift/health); ``--gc`` prunes old entries.
``bench [--out F] [--compare BASELINE] [--threshold X]``
    Run the small deterministic benchmark suite, write a ``repro.bench/1``
    envelope, and optionally gate against a baseline envelope (exit 1 on
    any relative slowdown above the threshold).
``tune [--trials N] [--seconds S] [--strategy greedy|grid] [--db F]``
    Autotune the hot-spot problem: search the tunable space (assembly
    loop order, partitioning, placement overrides, GPU kernel chunking)
    on short proxy runs judged by deterministic virtual time, verify each
    candidate's placement, and record the winner in a ``repro.tune/1``
    database that ``bte --tuned`` consults automatically.
``lint SCRIPT [SCRIPT...] [--json F] [--no-deep] [--codes]``
    Statically verify DSL scripts without running them: undefined symbols,
    index/shape consistency, boundary coverage, placement/transfer hazards
    and SPMD schedule deadlocks, each reported with a stable ``RPR###``
    code (exit 1 on any error-severity finding).  ``--codes`` prints the
    full diagnostic catalogue.
``events FILE [--tail N] [--level L] [--name SUBSTR] [--rank R] [--json]``
    Tail, filter and pretty-print a ``repro.events/1`` JSONL stream written
    by ``bte --events FILE``: one line per event with its timestamp, level,
    rank/step provenance and span-correlation IDs.
``serve [--demo] [--workers N] [--port P] [--for-seconds S]``
    Run the multi-tenant solver service: requests keyed by the
    ``repro.cache/1`` signature coalesce onto one job, compiled artifacts
    are shared across tenants, and a batched priority scheduler places
    jobs onto simulated GPU workers under per-tenant quotas with bounded
    queues (typed ``RPR900``/``RPR901`` rejections).  ``--port`` exposes
    ``/metrics``, ``/status`` (the ``repro.serve/1`` document) and
    ``/healthz``; ``--demo`` drives N concurrent tenants with
    mixed-priority duplicate problems and prints the dedup/warm-hit
    rates; plain ``serve --for-seconds S`` just runs the service.

``bte``, ``bench``, ``tune`` and ``serve`` accept ``--cache-dir DIR`` (persist the
compilation cache across processes; also ``$REPRO_CACHE_DIR``) and
``--no-cache`` (disable it); ``bte --tuned`` applies the stored best
configuration for the problem before generating.

``bte --sanitize`` additionally runs the transient under the runtime
sanitizer (NaN/Inf guards, halo checksums, drift/CFL heuristics); findings
land in the report's ``diagnostics`` section.  Library errors print as
one-line ``error RPR###: ...`` diagnostics; pass ``-v`` for the traceback.

The installed ``bte`` entry point is an alias: ``bte analyze ...`` is
``repro analyze ...`` and ``bte --gpu ...`` is ``repro bte --gpu ...``.

``bte --events FILE`` streams the structured event log to JSONL;
``--blackbox-dir DIR`` makes the always-on flight recorder write its
``repro.blackbox/1`` post-mortem bundle there when a run fails.

``-v/--verbose`` (repeatable) raises the package log level (INFO, DEBUG);
``--log-level`` sets the structured event log's threshold (``debug``
records per-message comm events); ``-q/--quiet`` silences progress notes
(data output and errors still print).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.util.errors import ReproError

#: Set by ``-q/--quiet``: progress notes go to the event log only.
_QUIET = False


def _say(msg: str) -> None:
    """Progress note: mirrored into the structured event log, then stdout."""
    from repro.obs.log import log_event

    log_event("cli.note", "info", message=msg)
    if not _QUIET:
        print(msg)


def _warn(msg: str) -> None:
    """Warning/error line: event log + stderr (never silenced by ``-q``)."""
    from repro.obs.log import log_event

    log_event("cli.warning", "warning", message=msg)
    print(msg, file=sys.stderr)


def cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.bte.dispersion import silicon_bands
    from repro.perfmodel.costs import BTEWorkload

    bands = silicon_bands(40)
    w = BTEWorkload.paper_configuration()
    print(f"repro {repro.__version__} — IPDPS 2024 phonon-BTE DSL reproduction")
    print()
    print("paper configuration (Sec. III-A):")
    print(f"  mesh cells          : {w.ncells:,} (120 x 120)")
    print(f"  directions          : {w.ndirs}")
    print(f"  polarised bands     : {bands.nbands} "
          f"({bands.n_la} LA + {bands.n_ta} TA from {bands.n_freq_bands} "
          "frequency bands)")
    print(f"  intensity DOF       : {w.ndof:,}")
    print()
    print("packages: symbolic, ir, dsl, codegen(+placement), mesh, fvm, gpu,")
    print("          runtime, bte, perfmodel  — see DESIGN.md")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.gpu.kernel import Kernel, model_launch
    from repro.gpu.profiler import Profiler
    from repro.gpu.spec import A6000
    from repro.perfmodel import strong_scaling_table
    from repro.perfmodel.scaling import (
        DEFAULT_KERNEL_BYTES_PER_THREAD,
        DEFAULT_KERNEL_FLOPS_PER_THREAD,
        PHASE_COMMUNICATION,
        PHASE_INTENSITY,
        PHASE_TEMPERATURE,
    )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def emit(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        written.append(path)
        print(f"--- {name} " + "-" * max(0, 60 - len(name)))
        print(text)
        print()

    tab = strong_scaling_table()

    # FIG4 / FIG9: total-time series
    procs = sorted({p for st in tab.values() for p in st.procs})
    header = f"{'procs':>6}" + "".join(f"{k:>12}" for k in tab)
    lines = [header]
    for p in procs:
        row = f"{p:>6}"
        for st in tab.values():
            row += (
                f"{st.total[st.procs.index(p)]:>11.1f}s" if p in st.procs else f"{'-':>12}"
            )
        lines.append(row)
    emit("fig9_all_strategies", "\n".join(lines))

    # FIG5 / FIG8: breakdowns
    for name, key in (("fig5_band_breakdown", "bands"), ("fig8_gpu_breakdown", "GPU")):
        st = tab[key]
        lines = [f"{'p':>4} {'intensity%':>11} {'temperature%':>13} {'comm%':>8}"]
        for p in st.procs:
            fr = st.breakdown_fractions(p)
            lines.append(
                f"{p:>4} {fr[PHASE_INTENSITY] * 100:>10.1f} "
                f"{fr[PHASE_TEMPERATURE] * 100:>12.1f} "
                f"{fr[PHASE_COMMUNICATION] * 100:>7.2f}"
            )
        emit(name, "\n".join(lines))

    # FIG7: CPU vs GPU speedup
    b, g = tab["bands"], tab["GPU"]
    lines = [f"{'p':>4} {'CPU[s]':>10} {'GPU[s]':>10} {'speedup':>9}"]
    for p in g.procs:
        if p in b.procs:
            tc = b.total[b.procs.index(p)]
            tg = g.total[g.procs.index(p)]
            lines.append(f"{p:>4} {tc:>10.1f} {tg:>10.1f} {tc / tg:>8.1f}x")
    emit("fig7_gpu_speedup", "\n".join(lines))

    # TAB1: device profile
    prof = Profiler(A6000)
    kernel = Kernel(
        "I_interior_step", lambda: None,
        flops_per_thread=DEFAULT_KERNEL_FLOPS_PER_THREAD,
        bytes_per_thread=DEFAULT_KERNEL_BYTES_PER_THREAD,
    )
    prof.record_launch(model_launch(A6000, kernel, 15_840_000))
    emit(
        "tab1_gpu_profile",
        prof.report().table() + "\npaper: SM 86% | memory 11% | FLOP 49% of peak",
    )

    _say(f"wrote {len(written)} artefact(s) to {out}/")
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """Show the Sec. II symbolic pipeline for an equation string."""
    from repro.obs import phase_span, trace_run

    if args.trace:
        with trace_run(args.trace):
            rc = _run_pipeline(args, phase_span)
        _say(f"wrote trace to {args.trace}")
        return rc
    return _run_pipeline(args, phase_span)


def _run_pipeline(args: argparse.Namespace, phase_span) -> int:
    from repro.dsl.entities import CELL, VAR_ARRAY, Coefficient, EntityTable, Index, Variable
    from repro.ir.lowering import lower_conservation_form, render_stage_listing
    from repro.symbolic.expr import free_indices, free_symbols, Indexed, Sym, preorder
    from repro.symbolic.operators import default_registry
    from repro.symbolic.parser import parse

    source = args.equation
    unknown_name = args.unknown
    with phase_span("parse", cat="pipeline"):
        parsed = parse(source)

    # infer a plausible entity table from the expression: the unknown as
    # declared, every other bare symbol a scalar coefficient, every indexed
    # base a variable/coefficient over the indices it uses
    ents = EntityTable()
    index_sizes: dict[str, Index] = {}
    for name in sorted(free_indices(parsed)):
        index_sizes[name] = ents.add_index(Index(name, 1, 4))
    indexed_bases: dict[str, tuple[str, ...]] = {}
    for node in preorder(parsed):
        if isinstance(node, Indexed):
            indexed_bases.setdefault(
                node.base, tuple(i for i in node.indices if isinstance(i, str))
            )
    reg = default_registry()
    if unknown_name in indexed_bases:
        unknown = ents.add_variable(Variable(
            unknown_name, VAR_ARRAY, CELL,
            tuple(index_sizes[i] for i in indexed_bases.pop(unknown_name)),
        ))
    else:
        unknown = ents.add_variable(Variable(unknown_name))
    for base, idxs in indexed_bases.items():
        ents.add_variable(Variable(
            base, VAR_ARRAY, CELL, tuple(index_sizes[i] for i in idxs)
        ))
    skip = set(reg.names()) | set(index_sizes) | {unknown_name} | set(indexed_bases)
    skip |= {"dt", "normal", "t", "x", "y", "z"}
    for name in sorted(free_symbols(parsed)):
        if name not in skip:
            ents.add_coefficient(Coefficient(name, 1.0))

    with phase_span("lower", cat="pipeline"):
        expanded, form = lower_conservation_form(source, unknown, ents, reg)
    print(f"input:    conservationForm({unknown_name}, \"{source}\")")
    print()
    print(render_stage_listing(expanded, form, unknown))
    return 0


def cmd_latex(args: argparse.Namespace) -> int:
    """Render an equation string (and optionally its expanded form) as LaTeX."""
    from repro.symbolic.latex import to_latex
    from repro.symbolic.parser import parse

    print(to_latex(parse(args.equation)))
    return 0


def _apply_cache_flags(args: argparse.Namespace) -> None:
    """Honour ``--cache-dir`` / ``--no-cache`` on the process-wide cache."""
    from repro.tune import configure_cache

    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)
    elif getattr(args, "cache_dir", None):
        configure_cache(cache_dir=args.cache_dir)


def cmd_bte(args: argparse.Namespace) -> int:
    import time
    from contextlib import nullcontext

    from repro.bte import build_bte_problem, hotspot_scenario
    from repro.obs import metrics_run, trace_run
    from repro.runtime.faults import fault_run, parse_fault_spec
    from repro.runtime.resilience import get_resilience_log
    from repro.util.errors import FaultSpecError
    from repro.verify.sanitizer import get_sanitizer, sanitize_run

    _apply_cache_flags(args)
    scenario = hotspot_scenario(
        nx=args.nx, ny=args.nx, ndirs=args.ndirs,
        n_freq_bands=args.bands, dt=args.dt, nsteps=args.steps,
    )
    scenario.sigma = max(scenario.sigma, 2.5 * scenario.lx / args.nx)
    problem, model = build_bte_problem(scenario)
    if args.gpu:
        problem.enable_gpu()
        # small CLI problems fall below the offload break-even point of the
        # placement optimiser; force them onto the device so the timeline
        # actually shows kernel/transfer tracks
        problem.extra["gpu_force_offload"] = True
    if args.ranks > 1:
        problem.set_partitioning("bands", args.ranks, index="b")
    if args.checkpoint_every:
        problem.extra["checkpoint_every"] = args.checkpoint_every
        problem.extra["checkpoint_dir"] = args.checkpoint_dir
    if args.rebalance:
        problem.extra["rebalance"] = True
        problem.extra["imbalance_threshold"] = args.imbalance_threshold
    if args.heartbeat_s:
        problem.extra["heartbeat_s"] = args.heartbeat_s
    if args.restore:
        problem.extra["restore_from"] = args.restore
    if args.fusion:
        problem.extra["fusion"] = args.fusion
    if args.tuned:
        problem.extra["tuned"] = True
        if args.tune_db:
            problem.extra["tuning_db"] = args.tune_db
    mode = "gpu" if args.gpu else "cpu"
    _say(f"running {scenario.name}: {args.nx}x{args.nx} cells, "
         f"{model.ncomp} components/cell, {args.steps} steps "
         f"[{mode}, {args.ranks} rank(s)] ...")
    if args.faults:
        try:  # parse eagerly: a typo'd spec should fail before the solve
            parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            _warn(f"error: bad --faults spec: {exc}")
            return 2
        _say(f"fault injection on: {args.faults!r} (seed {args.fault_seed})")

    if args.sanitize:
        _say("runtime sanitizer on (NaN/Inf guards, halo checksums, "
             "drift/CFL heuristics)")

    if args.blackbox_dir:
        from repro.obs import get_flight_recorder

        get_flight_recorder().configure(directory=args.blackbox_dir)

    from repro.obs.log import events_run

    report = None
    events_ctx = (
        events_run(args.events, level=getattr(args, "log_level", None) or "info")
        if args.events else nullcontext()
    )
    san_ctx = sanitize_run() if args.sanitize else nullcontext()
    t0 = time.perf_counter()
    with events_ctx, san_ctx, fault_run(args.faults, seed=args.fault_seed):
        if args.trace or args.report or args.metrics:
            with metrics_run(args.metrics), trace_run(args.trace) as tracer:
                solver = problem.solve()
                # built inside the block so the report captures the live
                # metrics registry
                if args.report or args.record:
                    report = solver.run_report(tracer)
        else:
            solver = problem.solve()
    wall_s = time.perf_counter() - t0
    rlog = get_resilience_log()
    if rlog.has_events():
        _say(f"resilience: {rlog.summary()}")
    from repro.runtime.rebalance import get_rebalance_log

    rblog = get_rebalance_log()
    if rblog.has_events():
        _say(f"rebalance: {rblog.summary()}")
    if args.sanitize:
        _say(f"sanitizer: {get_sanitizer().summary()}")

    if args.tuned:
        if problem.extra.get("_tuned_applied"):
            cfg = problem.extra.get("tuned_config")
            _say("tuned configuration applied: "
                 f"{cfg if cfg else 'default (no overrides won)'}")
        else:
            _say("tuned mode: no database entry for this problem "
                 "(run `bte tune` first)")
    info = getattr(solver, "generation_info", None)
    if info and args.verbose:
        _say(f"codegen cache: {info.get('cache')} (key {info.get('key')})")
    finfo = getattr(solver, "fusion_info", None)
    if finfo and finfo.get("mode", "off") != "off":
        progs = finfo.get("programs", {})
        n_instr = sum(s.get("n_instructions", 0) for s in progs.values())
        n_temps = sum(s.get("temporaries_eliminated", 0) for s in progs.values())
        _say(f"fusion: mode={finfo['mode']}, {len(progs)} fused program(s), "
             f"{n_instr} instruction(s), {n_temps} temporar"
             f"{'y' if n_temps == 1 else 'ies'} eliminated")

    T = solver.state.extra["T"]
    # state.time, not steps*dt: a --restore run resumes mid-trajectory
    print(f"T in [{T.min():.4f}, {T.max():.4f}] K after "
          f"{solver.state.time * 1e9:.3f} ns")
    for phase, frac in sorted(solver.breakdown().items()):
        print(f"  {phase:<12} {frac * 100:5.1f}%")
    if args.trace:
        _say(f"wrote trace to {args.trace} (open in https://ui.perfetto.dev)")
    if report is not None and args.report:
        report.write(args.report)
        _say(f"wrote run report to {args.report}")
    if args.profile or args.record:
        from repro.obs.profile import build_profile, write_profile

        profile_doc = (report.profile if report is not None
                       else build_profile(solver))
        if args.profile:
            write_profile(profile_doc, args.profile)
            _say(f"wrote profile to {args.profile} (inspect with "
                 f"`bte compare`)")
        if args.record:
            from repro.obs import configure_registry, get_registry

            if args.runs_dir:
                configure_registry(args.runs_dir)
            registry = get_registry()
            report_doc = (report or solver.run_report()).to_dict()
            key = profile_doc["meta"]["problem_key"]
            path = registry.append(
                key, report=report_doc, profile=profile_doc,
                meta={"wall_s": wall_s, "target": solver.target_name,
                      "nsteps": solver.state.step_index},
            )
            _say(f"recorded run entry {path} (timeline: `bte history "
                 f"--key {key[:12]}`)")
    if args.metrics:
        _say(f"wrote metrics exposition to {args.metrics}")
    if args.events:
        _say(f"wrote event log to {args.events} (pretty-print with "
             f"`python -m repro events {args.events}`)")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.obs.analyze import analyze

    trace_path = report_path = None
    for path in args.files:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            _warn(f"error: cannot read {path}: {exc}")
            return 2
        schema = doc.get("schema", "") if isinstance(doc, dict) else ""
        if isinstance(schema, str) and schema.startswith("repro.run_report/"):
            report_path = path
        else:
            trace_path = path
    if trace_path is None and report_path is None:
        _warn("error: no usable trace or report file")
        return 2

    analysis = analyze(trace_path, report_path)
    print(analysis.render_text(), end="")
    if args.json:
        Path(args.json).write_text(
            json.dumps(analysis.to_dict(), indent=1) + "\n"
        )
        _say(f"wrote analysis JSON to {args.json}")
    if args.dot:
        if not analysis.placement:
            _warn("error: --dot needs a report with a placement section "
                  "(run with --gpu --report)")
            return 2
        from repro.ir.dot import placement_to_dot

        name = analysis.meta.get("problem", "placement")
        Path(args.dot).write_text(placement_to_dot(analysis.placement, name) + "\n")
        _say(f"wrote placement task-graph DOT to {args.dot} "
             "(render with: dot -Tsvg)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.bte import build_bte_problem, hotspot_scenario
    from repro.obs.profile import (
        build_profile,
        profile_run,
        profile_table,
        write_profile,
    )

    _apply_cache_flags(args)
    scenario = hotspot_scenario(
        nx=args.nx, ny=args.nx, ndirs=args.ndirs,
        n_freq_bands=args.bands, dt=args.dt, nsteps=args.steps,
    )
    scenario.sigma = max(scenario.sigma, 2.5 * scenario.lx / args.nx)
    problem, model = build_bte_problem(scenario)
    if args.gpu:
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
    if args.ranks > 1:
        problem.set_partitioning("bands", args.ranks, index="b")
    if args.chunks:
        # deliberate slow-down knob (same maths, more launches): the
        # injected-regression drill for `bte compare`
        problem.extra["gpu_kernel_chunks"] = args.chunks
    if args.fusion:
        problem.extra["fusion"] = args.fusion
    mode = "gpu" if args.gpu else "cpu"
    _say(f"profiling {scenario.name}: {args.nx}x{args.nx} cells, "
         f"{model.ncomp} components/cell, {args.steps} steps "
         f"[{mode}, {args.ranks} rank(s)] ...")
    t0 = time.perf_counter()
    with profile_run():
        solver = problem.solve()
        wall_s = time.perf_counter() - t0
        # built inside the block so the per-launch records are captured
        doc = build_profile(solver, tolerance=args.tolerance)
    print(profile_table(doc, top=args.top))
    if args.out:
        write_profile(doc, args.out)
        _say(f"wrote profile to {args.out}")

    suggestion = doc.get("drift", {}).get("calibration")
    if suggestion is not None:
        _say(f"cost-model drift exceeds tolerance: recalibration factor "
             f"{suggestion['factor']:.3f} suggested")
        if args.calibrate_out:
            from repro.perfmodel.calibrate import (
                machine_from_calibration,
                save_rates,
            )
            from repro.perfmodel.machines import CASCADE_LAKE_FINCH

            machine = problem.extra.get("machine_rates", CASCADE_LAKE_FINCH)
            save_rates(
                machine_from_calibration(suggestion, machine),
                args.calibrate_out,
                measured_per_dof=suggestion.get("measured_per_dof"),
            )
            _say(f"wrote recalibrated rates to {args.calibrate_out} "
                 "(apply via problem.extra['machine_rates'])")
    elif args.calibrate_out:
        _say(f"drift within tolerance; nothing written to "
             f"{args.calibrate_out}")

    if args.record:
        from repro.obs import configure_registry, get_registry

        if args.runs_dir:
            configure_registry(args.runs_dir)
        registry = get_registry()
        key = doc["meta"]["problem_key"]
        path = registry.append(
            key, report=solver.run_report().to_dict(), profile=doc,
            meta={"wall_s": wall_s, "target": solver.target_name,
                  "nsteps": solver.state.step_index},
        )
        _say(f"recorded run entry {path} (timeline: `bte history "
             f"--key {key[:12]}`)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs.profile import (
        compare_profiles,
        compare_table,
        extract_profile,
    )

    docs = []
    for path in (args.a, args.b):
        try:
            raw = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            _warn(f"error: cannot read {path}: {exc}")
            return 2
        docs.append(extract_profile(raw))
    cmp = compare_profiles(docs[0], docs[1])
    if not cmp["meta"]["same_problem"]:
        _warn("warning: the two runs have different problem keys — "
              "deltas compare different workloads")
    print(compare_table(cmp, top=args.top))
    if args.json:
        Path(args.json).write_text(json.dumps(cmp, indent=1) + "\n")
        _say(f"wrote comparison JSON to {args.json}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    from repro.obs import configure_registry, get_registry
    from repro.obs.anomaly import history_flags

    if args.runs_dir:
        configure_registry(args.runs_dir)
    registry = get_registry()
    if args.gc:
        removed = registry.gc(keep_last=args.keep,
                              max_age_days=args.max_age_days)
        _say(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
             f"from {registry.root}")
    keys = registry.keys()
    if args.key:
        keys = [k for k in keys if k.startswith(args.key)]
        if not keys:
            _warn(f"error: no runs recorded under key prefix "
                  f"{args.key!r} in {registry.root}")
            return 2
    if not keys:
        _say(f"no runs recorded in {registry.root} (record some with "
             "`bte profile --record` or `bte --record`)")
        return 0
    for key in keys:
        entries = registry.load_runs(key)
        flags = history_flags(entries)
        label = next(
            (e.get("profile", {}).get("meta", {}).get("problem")
             for e in entries
             if e.get("profile", {}).get("meta", {}).get("problem")),
            "?",
        )
        print(f"{key}  ({label}, {len(entries)} run(s))")
        for entry, entry_flags in zip(entries, flags):
            m = entry.get("meta", {})
            wall = m.get("wall_s")
            wall_str = "-" if wall is None else f"{wall:.3f} s"
            dmax = entry.get("profile", {}).get("drift", {}).get("max_abs")
            dstr = "-" if dmax is None else f"{dmax:.2f}"
            line = (f"  run-{entry.get('seq', 0):06d}  "
                    f"{entry.get('recorded_at', '?'):<19}  "
                    f"target={m.get('target', '?'):<16} "
                    f"wall={wall_str:<11} drift={dstr}")
            if entry_flags:
                line += "  [" + ",".join(entry_flags) + "]"
            print(line)
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.bte import build_bte_problem, hotspot_scenario
    from repro.tune import default_db_path, tune

    _apply_cache_flags(args)

    def factory():
        scenario = hotspot_scenario(
            nx=args.nx, ny=args.nx, ndirs=args.ndirs,
            n_freq_bands=args.bands, dt=args.dt, nsteps=args.steps,
        )
        scenario.sigma = max(scenario.sigma, 2.5 * scenario.lx / args.nx)
        problem, _ = build_bte_problem(scenario)
        if args.gpu:
            problem.enable_gpu()
        if args.ranks > 1:
            problem.set_partitioning("bands", args.ranks, index="b")
        return problem

    db_path = args.db or default_db_path()
    mode = "gpu" if args.gpu else "cpu"
    _say(f"tuning {args.nx}x{args.nx} hot-spot [{mode}, {args.ranks} "
         f"rank(s)]: {args.strategy} search, budget {args.trials} trial(s)"
         + (f" / {args.seconds:g} s" if args.seconds else "") + " ...")
    result = tune(
        factory,
        budget_trials=args.trials,
        budget_seconds=args.seconds,
        proxy_steps=args.proxy_steps,
        strategy=args.strategy,
        db_path=db_path,
    )
    print(result.summary())
    _say(f"recorded winner in {result.db_path} — apply it with `bte --tuned`")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.obs.regress import compare, load_bench, run_benchmarks, write_bench

    _apply_cache_flags(args)
    _say(f"running benchmark suite ({args.nx}x{args.nx} cells, "
         f"{args.steps} steps per target) ...")
    timings = run_benchmarks(nx=args.nx, nsteps=args.steps)
    for name in sorted(timings):
        print(f"  {name:<28} {timings[name]:.6f} s")

    date = time.strftime("%Y-%m-%d")
    out = args.out or f"BENCH_{date}.json"
    write_bench(out, name=f"bte-suite@{date}", timings=timings,
                date=date, nx=args.nx, steps=args.steps)
    _say(f"wrote benchmark envelope to {out}")

    if args.compare:
        try:
            baseline = load_bench(args.compare)
        except (OSError, ValueError) as exc:
            _warn(f"error: {exc}")
            return 2
        report = compare(
            baseline, {"name": f"bte-suite@{date}", "timings": timings},
            threshold=args.threshold, wall_threshold=args.wall_threshold,
        )
        print()
        print(report.render_text(), end="")
        return 1 if report.has_regressions else 0
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.verify import lint_paths, render_catalogue

    if args.codes:
        print(render_catalogue())
        return 0
    if not args.scripts:
        _warn("error: no scripts to lint (pass paths, or --codes for the "
              "diagnostic catalogue)")
        return 2
    missing = [p for p in args.scripts if not Path(p).is_file()]
    if missing:
        for p in missing:
            _warn(f"error: no such script: {p}")
        return 2
    results = lint_paths(args.scripts, deep=not args.no_deep)
    for res in results:
        print(res.render_text())
    if args.json:
        doc = {
            "schema": "repro.lint/1",
            "scripts": [
                {"path": r.path, "ok": r.ok,
                 "problems_checked": r.problems_checked,
                 "note": r.note, **r.report.to_dict()}
                for r in results
            ],
        }
        Path(args.json).write_text(json.dumps(doc, indent=1) + "\n")
        _say(f"wrote lint report to {args.json}")
    bad = sum(not r.ok for r in results)
    if bad:
        _warn(f"{bad} of {len(results)} script(s) failed lint")
        return 1
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs.log import LEVELS, read_events

    try:
        events = read_events(args.file)
    except (OSError, ValueError) as exc:
        _warn(f"error: {exc}")
        return 2
    total = len(events)
    if args.level:
        floor = LEVELS[args.level]
        events = [e for e in events
                  if LEVELS.get(e.get("level", "info"), 20) >= floor]
    if args.name:
        events = [e for e in events if args.name in str(e.get("name", ""))]
    if args.rank is not None:
        events = [e for e in events if e.get("rank") == args.rank]
    if args.tail:
        events = events[-args.tail:]

    if args.json:
        for e in events:
            print(json.dumps(e))
    else:
        for e in events:
            ts = time.strftime("%H:%M:%S", time.localtime(e.get("ts", 0)))
            line = f"{ts} {e.get('level', 'info'):<7} {e.get('name', '?'):<24}"
            where = " ".join(
                f"{k}={e[k]}" for k in ("rank", "step") if e.get(k) is not None
            )
            if where:
                line += f" [{where}]"
            if e.get("span_id"):
                line += f" span={e['span_id']}"
                if e.get("parent_id"):
                    line += f"<-{e['parent_id']}"
            fields = e.get("fields") or {}
            if fields:
                line += "  " + " ".join(f"{k}={v}" for k, v in fields.items())
            print(line)
    if not _QUIET and len(events) != total:
        print(f"({len(events)} of {total} event(s) after filters)",
              file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time
    from contextlib import nullcontext

    from repro.serve import ServiceConfig, serve_session

    _apply_cache_flags(args)
    config = ServiceConfig(
        workers=args.workers,
        queue_max=args.queue_max,
        batch_max=args.batch_max,
        max_inflight=args.max_inflight,
        max_running=args.max_running,
        preemption=not args.no_preemption,
        checkpoint_every=args.checkpoint_every,
        port=args.port,
    )
    if args.events:
        from repro.obs.log import events_run

        events_ctx = events_run(
            args.events, level=getattr(args, "log_level", None) or "info")
    else:
        events_ctx = nullcontext()
    with events_ctx:
        with serve_session(config) as service:
            if service.http_port is not None:
                _say(f"serving http://{config.host}:{service.http_port} "
                     "(/metrics /status /healthz)")
            if args.demo:
                _run_serve_demo(service, tenants=args.tenants,
                                requests=args.requests, nx=args.nx,
                                steps=args.steps)
            elif args.for_seconds > 0:
                _say(f"service up for {args.for_seconds:.0f}s "
                     f"({config.workers} worker(s)); Ctrl-C to stop early")
                try:
                    time.sleep(args.for_seconds)
                except KeyboardInterrupt:
                    _say("interrupted; shutting down")
            doc = service.status_doc()
            counters = doc["counters"]
            _say(f"served {counters['requests']} request(s): "
                 f"{counters['completed']} completed, "
                 f"{counters['failed']} failed, "
                 f"{counters['rejected']} rejected")
            if args.status_json:
                import json

                Path(args.status_json).write_text(json.dumps(doc, indent=1))
                _say(f"status document written to {args.status_json}")
    return 0


def _run_serve_demo(service, *, tenants: int, requests: int,
                    nx: int, steps: int) -> None:
    """N concurrent tenants submitting mixed-priority duplicate problems."""
    from repro.bte import build_bte_problem, hotspot_scenario

    def make_problem(nx_i: int, nsteps_i: int):
        scenario = hotspot_scenario(nx=nx_i, ny=nx_i, ndirs=4,
                                    n_freq_bands=4, dt=1e-12, nsteps=nsteps_i)
        problem, _ = build_bte_problem(scenario)
        return problem

    # three request shapes over ONE mesh size: two share a compiled
    # artifact (same signature, different nsteps binding), so the demo
    # shows both job-level dedup and cross-tenant artifact sharing
    shapes = [(nx, steps), (nx, steps), (nx, steps + 2)]
    priorities = ["normal", "high", "batch"]
    total = tenants * requests
    _say(f"demo: {total} request(s) from {tenants} tenant(s), "
         f"{len(set(shapes))} distinct problem(s), mixed priorities ...")
    client = service.client
    client.hold()  # line the burst up so coalescing is deterministic
    tickets = []
    for t in range(tenants):
        for r in range(requests):
            shape = shapes[r % len(shapes)]
            tickets.append(client.submit(
                make_problem(*shape), tenant=f"tenant{t}",
                priority=priorities[(t + r) % len(priorities)]))
    client.release()
    for ticket in tickets:
        ticket.result(300)
    doc = service.status_doc()
    counters, cache = doc["counters"], doc["cache"]
    served_without_solve = counters["deduped"] + counters["results_reused"]
    dedup_rate = served_without_solve / max(1, counters["requests"])
    lookups = cache["memory_hits"] + cache["disk_hits"] + cache["misses"]
    warm_rate = (cache["memory_hits"] + cache["disk_hits"]) / max(1, lookups)
    _say(f"jobs solved: {counters['completed']} for {counters['requests']} "
         f"requests (in-flight dedup: {counters['deduped']}, "
         f"result reuse: {counters['results_reused']})")
    _say(f"dedup rate: {100 * dedup_rate:.1f}%  "
         f"artifact builds: {cache['builds']}  "
         f"warm-hit rate: {100 * warm_rate:.1f}%")
    roots = {name: state["hashtree"]["root"]
             for name, state in doc["tenants"].items()}
    _say("tenant hashtree roots: "
         + " ".join(f"{name}={root}" for name, root in sorted(roots.items())))


def main(argv: list[str] | None = None) -> int:
    # -v works both before and after the subcommand; the subparser copy
    # SUPPRESSes its default so it cannot clobber a value the top-level
    # parser already counted
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=argparse.SUPPRESS,
        help="raise the package log level (-v INFO, -vv DEBUG)",
    )
    common.add_argument(
        "-q", "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="suppress progress notes (data output and errors still print)",
    )
    common.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=argparse.SUPPRESS, metavar="LEVEL",
        help="structured event-log threshold (default info; 'debug' records "
             "per-message comm events)",
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise the package log level (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", default=False,
        help="suppress progress notes (data output and errors still print)",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None, metavar="LEVEL",
        help="structured event-log threshold (default info; 'debug' records "
             "per-message comm events)",
    )
    sub = parser.add_subparsers(dest="command")

    # compilation-cache flags shared by the commands that generate solvers
    cache = argparse.ArgumentParser(add_help=False)
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist the compilation cache under DIR "
                            "(also $REPRO_CACHE_DIR)")
    cache.add_argument("--no-cache", action="store_true",
                       help="disable the compilation cache for this run")

    sub.add_parser("info", help="package and configuration summary",
                   parents=[common])

    p_fig = sub.add_parser("figures", help="regenerate the scaling artefacts",
                           parents=[common])
    p_fig.add_argument("--out", default="figures_out", help="output directory")

    p_pipe = sub.add_parser(
        "pipeline", help="show the Sec. II symbolic pipeline for an equation",
        parents=[common],
    )
    p_pipe.add_argument("equation", help='e.g. "-k*u - surface(upwind(b, u))"')
    p_pipe.add_argument("--unknown", default="u", help="unknown variable name")
    p_pipe.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome-trace JSON of the pipeline stages")

    p_tex = sub.add_parser("latex", help="render an equation string as LaTeX",
                           parents=[common])
    p_tex.add_argument("equation")

    p_bte = sub.add_parser("bte", help="run a reduced hot-spot BTE transient",
                           parents=[common, cache])
    p_bte.add_argument("--nx", type=int, default=24)
    p_bte.add_argument("--ndirs", type=int, default=8)
    p_bte.add_argument("--bands", type=int, default=8)
    p_bte.add_argument("--dt", type=float, default=1e-12)
    p_bte.add_argument("--steps", type=int, default=50)
    p_bte.add_argument("--gpu", action="store_true",
                       help="run the hybrid CPU+GPU target")
    p_bte.add_argument("--ranks", type=int, default=1, metavar="N",
                       help="band-partition over N ranks (with --gpu: one "
                            "simulated device per rank, paper Fig. 7)")
    p_bte.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome-trace/Perfetto JSON timeline")
    p_bte.add_argument("--report", default=None, metavar="FILE",
                       help="write the aggregated RunReport JSON")
    p_bte.add_argument("--metrics", default=None, metavar="FILE",
                       help="write the metrics registry (.txt/.prom for "
                            "Prometheus text format, else JSON)")
    p_bte.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject faults, e.g. 'stall:rank=2,at=7;"
                            "oom:device=gpu0' (kinds: drop delay dup stall "
                            "rank_kill rank_slow oom kernel; see "
                            "docs/architecture.md)")
    p_bte.add_argument("--fault-seed", type=int, default=0, metavar="N",
                       help="seed for probabilistic fault rules (default 0)")
    p_bte.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="write a repro.checkpoint/1 snapshot every N steps")
    p_bte.add_argument("--checkpoint-dir", default="checkpoints", metavar="DIR",
                       help="directory for --checkpoint-every snapshots")
    p_bte.add_argument("--rebalance", action="store_true",
                       help="elastic runtime: recover killed ranks from "
                            "checkpoints and migrate work off slow ranks "
                            "(distributed targets; results stay "
                            "bit-identical)")
    p_bte.add_argument("--heartbeat-s", type=float, default=None, metavar="S",
                       help="declare a rank dead after S seconds without a "
                            "liveness beat (default: off)")
    p_bte.add_argument("--imbalance-threshold", type=float, default=1.5,
                       metavar="R",
                       help="max/mean per-rank step-time ratio that "
                            "triggers a proactive migration under "
                            "--rebalance (default 1.5)")
    p_bte.add_argument("--restore", default=None, metavar="FILE",
                       help="restore solver state from a checkpoint before "
                            "stepping")
    p_bte.add_argument("--fusion", choices=("on", "off", "auto"), default=None,
                       help="expression fusion: collapse each kernel's "
                            "expression tree into one fused vector program "
                            "(bit-identical results; default off)")
    p_bte.add_argument("--sanitize", action="store_true",
                       help="run under the runtime sanitizer (NaN/Inf "
                            "guards, halo checksums, drift/CFL heuristics; "
                            "results stay bit-identical)")
    p_bte.add_argument("--tuned", action="store_true",
                       help="apply the stored best configuration from the "
                            "tuning database before generating")
    p_bte.add_argument("--tune-db", default=None, metavar="FILE",
                       help="tuning database to consult (default: "
                            "tuned.json inside the cache dir)")
    p_bte.add_argument("--events", default=None, metavar="FILE",
                       help="stream the structured event log to FILE "
                            "(repro.events/1 JSON Lines; inspect with "
                            "`repro events FILE`)")
    p_bte.add_argument("--blackbox-dir", default=None, metavar="DIR",
                       help="write the flight recorder's repro.blackbox/1 "
                            "post-mortem bundle under DIR when the run "
                            "fails (also $REPRO_BLACKBOX_DIR)")
    p_bte.add_argument("--profile", default=None, metavar="FILE",
                       help="write the per-kernel repro.profile/1 document "
                            "(diff two with `bte compare`)")
    p_bte.add_argument("--record", action="store_true",
                       help="append this run (report + profile) to the run "
                            "registry (`bte history` reads it back)")
    p_bte.add_argument("--runs-dir", default=None, metavar="DIR",
                       help="run-registry root for --record (default "
                            ".repro-runs; also $REPRO_RUNS_DIR)")

    p_an = sub.add_parser(
        "analyze", help="analyze a trace and/or run-report JSON",
        parents=[common],
    )
    p_an.add_argument("files", nargs="+", metavar="FILE",
                      help="trace JSON and/or run-report JSON (any order)")
    p_an.add_argument("--json", default=None, metavar="FILE",
                      help="also write the analysis as JSON")
    p_an.add_argument("--dot", default=None, metavar="FILE",
                      help="write the placement task graph as Graphviz DOT")

    p_prof = sub.add_parser(
        "profile",
        help="run the hot-spot transient under the per-launch kernel "
             "profiler; print the roofline/drift table",
        parents=[common, cache],
    )
    p_prof.add_argument("--nx", type=int, default=24)
    p_prof.add_argument("--ndirs", type=int, default=8)
    p_prof.add_argument("--bands", type=int, default=8)
    p_prof.add_argument("--dt", type=float, default=1e-12)
    p_prof.add_argument("--steps", type=int, default=50)
    p_prof.add_argument("--gpu", action="store_true",
                        help="profile the hybrid CPU+GPU target")
    p_prof.add_argument("--ranks", type=int, default=1, metavar="N",
                        help="band-partition over N ranks")
    p_prof.add_argument("--chunks", type=int, default=0, metavar="N",
                        help="split device kernels into N chunked launches "
                             "(slow-down injection for `bte compare` drills)")
    p_prof.add_argument("--fusion", choices=("on", "off", "auto"),
                        default=None,
                        help="expression fusion mode (bit-identical; "
                             "default off)")
    p_prof.add_argument("--top", type=int, default=0, metavar="N",
                        help="show only the N most expensive rows")
    p_prof.add_argument("--tolerance", type=float, default=None, metavar="X",
                        help="perfmodel drift tolerance on "
                             "|measured/predicted - 1| (default 0.50)")
    p_prof.add_argument("--out", default=None, metavar="FILE",
                        help="write the repro.profile/1 JSON")
    p_prof.add_argument("--calibrate-out", default=None, metavar="FILE",
                        help="when drift exceeds tolerance, write the "
                             "rescaled machine rates as repro.calibration/1")
    p_prof.add_argument("--record", action="store_true",
                        help="append this run to the run registry")
    p_prof.add_argument("--runs-dir", default=None, metavar="DIR",
                        help="run-registry root (default .repro-runs; also "
                             "$REPRO_RUNS_DIR)")

    p_cmp = sub.add_parser(
        "compare",
        help="diff two profiled runs; rank the regression culprit first",
        parents=[common],
    )
    p_cmp.add_argument("a", metavar="A",
                       help="baseline: profile JSON, run report, or "
                            "registry entry")
    p_cmp.add_argument("b", metavar="B", help="candidate run (same formats)")
    p_cmp.add_argument("--top", type=int, default=0, metavar="N",
                       help="show only the N largest deltas")
    p_cmp.add_argument("--json", default=None, metavar="FILE",
                       help="also write the comparison as JSON")

    p_hist = sub.add_parser(
        "history",
        help="per-problem timeline of recorded runs, with anomaly flags",
        parents=[common],
    )
    p_hist.add_argument("--runs-dir", default=None, metavar="DIR",
                        help="run-registry root (default .repro-runs; also "
                             "$REPRO_RUNS_DIR)")
    p_hist.add_argument("--key", default=None, metavar="PREFIX",
                        help="show only problem keys starting with PREFIX")
    p_hist.add_argument("--gc", action="store_true",
                        help="prune old entries before listing")
    p_hist.add_argument("--keep", type=int, default=20, metavar="N",
                        help="with --gc: newest entries kept per key "
                             "(default 20)")
    p_hist.add_argument("--max-age-days", type=float, default=None,
                        metavar="D",
                        help="with --gc: additionally drop entries older "
                             "than D days")

    p_bench = sub.add_parser(
        "bench", help="run the benchmark suite; optionally gate on a baseline",
        parents=[common, cache],
    )
    p_bench.add_argument("--nx", type=int, default=16)
    p_bench.add_argument("--steps", type=int, default=5)
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="envelope path (default BENCH_<date>.json)")
    p_bench.add_argument("--compare", default=None, metavar="BASELINE",
                         help="baseline envelope to gate against "
                              "(exit 1 on regression)")
    p_bench.add_argument("--threshold", type=float, default=None,
                         help="relative slowdown tolerated for virtual "
                              "timings (default 0.25)")
    p_bench.add_argument("--wall-threshold", type=float, default=None,
                         help="relative slowdown tolerated for wall-clock "
                              "timings (default 1.0)")

    p_tune = sub.add_parser(
        "tune", help="autotune the hot-spot problem; record the winner",
        parents=[common, cache],
    )
    p_tune.add_argument("--nx", type=int, default=16)
    p_tune.add_argument("--ndirs", type=int, default=8)
    p_tune.add_argument("--bands", type=int, default=8)
    p_tune.add_argument("--dt", type=float, default=1e-12)
    p_tune.add_argument("--steps", type=int, default=5,
                        help="steps of the problem being tuned (trials run "
                             "a shorter proxy; see --proxy-steps)")
    p_tune.add_argument("--gpu", action="store_true",
                        help="tune with the GPU target available")
    p_tune.add_argument("--ranks", type=int, default=1, metavar="N",
                        help="tune the N-rank band-partitioned problem")
    p_tune.add_argument("--trials", type=int, default=8, metavar="N",
                        help="trial budget (default 8)")
    p_tune.add_argument("--seconds", type=float, default=None, metavar="S",
                        help="wall-time budget on top of --trials")
    p_tune.add_argument("--proxy-steps", type=int, default=2, metavar="N",
                        help="steps per trial run (default 2)")
    p_tune.add_argument("--strategy", choices=("greedy", "grid"),
                        default="greedy")
    p_tune.add_argument("--db", default=None, metavar="FILE",
                        help="tuning database path (default: tuned.json "
                             "inside the cache dir, else ./tuned.json)")

    p_lint = sub.add_parser(
        "lint", help="statically verify DSL scripts (RPR### diagnostics)",
        parents=[common],
    )
    p_lint.add_argument("scripts", nargs="*", metavar="SCRIPT",
                        help="DSL script file(s) to verify")
    p_lint.add_argument("--json", default=None, metavar="FILE",
                        help="also write the findings as repro.lint/1 JSON")
    p_lint.add_argument("--no-deep", action="store_true",
                        help="skip solver generation (static DSL/IR checks "
                             "only, no placement/schedule analysis)")
    p_lint.add_argument("--codes", action="store_true",
                        help="print the RPR### diagnostic catalogue and exit")

    p_srv = sub.add_parser(
        "serve", help="run the multi-tenant solver service",
        parents=[common, cache],
    )
    p_srv.add_argument("--demo", action="store_true",
                       help="drive N concurrent tenants with mixed-priority "
                            "duplicate problems and print dedup/warm rates")
    p_srv.add_argument("--workers", type=int, default=2, metavar="N",
                       help="simulated GPU worker slots (default 2)")
    p_srv.add_argument("--queue-max", type=int, default=64, metavar="N",
                       help="bounded queue size; RPR900 backpressure past it")
    p_srv.add_argument("--batch-max", type=int, default=4, metavar="N",
                       help="max same-priority jobs batched onto one worker")
    p_srv.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="default per-tenant in-flight request quota")
    p_srv.add_argument("--max-running", type=int, default=2, metavar="N",
                       help="default per-tenant running-job quota")
    p_srv.add_argument("--no-preemption", action="store_true",
                       help="disable checkpoint-preemption of running jobs")
    p_srv.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="periodic checkpoint cadence for served jobs")
    p_srv.add_argument("--port", type=int, default=None, metavar="P",
                       help="HTTP endpoint port (0 = ephemeral; default off)")
    p_srv.add_argument("--for-seconds", type=float, default=0.0, metavar="S",
                       help="keep the service up this long (without --demo)")
    p_srv.add_argument("--tenants", type=int, default=4, metavar="N",
                       help="demo: number of concurrent tenants")
    p_srv.add_argument("--requests", type=int, default=4, metavar="N",
                       help="demo: requests submitted per tenant")
    p_srv.add_argument("--nx", type=int, default=8, metavar="N",
                       help="demo: mesh resolution per side")
    p_srv.add_argument("--steps", type=int, default=3, metavar="N",
                       help="demo: time steps per problem")
    p_srv.add_argument("--events", default=None, metavar="FILE",
                       help="stream the structured event log to FILE (JSONL)")
    p_srv.add_argument("--status-json", default=None, metavar="FILE",
                       help="write the final repro.serve/1 status document")

    p_ev = sub.add_parser(
        "events", help="tail/filter/pretty-print a repro.events/1 JSONL log",
        parents=[common],
    )
    p_ev.add_argument("file", metavar="FILE",
                      help="event log written by `bte --events FILE`")
    p_ev.add_argument("--tail", type=int, default=None, metavar="N",
                      help="show only the last N matching events")
    p_ev.add_argument("--level", choices=("debug", "info", "warning", "error"),
                      default=None, help="minimum level to show")
    p_ev.add_argument("--name", default=None, metavar="SUBSTR",
                      help="show only events whose name contains SUBSTR")
    p_ev.add_argument("--rank", type=int, default=None, metavar="R",
                      help="show only events from rank R")
    p_ev.add_argument("--json", action="store_true",
                      help="print raw JSON lines instead of pretty text")

    args = parser.parse_args(argv)
    global _QUIET
    _QUIET = bool(getattr(args, "quiet", False))
    if args.verbose:
        from repro.util.logging import set_verbosity

        set_verbosity("INFO" if args.verbose == 1 else "DEBUG")
    if getattr(args, "log_level", None):
        from repro.obs.log import get_event_log

        get_event_log().set_level(args.log_level)
    try:
        return _dispatch(args, parser)
    except ReproError as exc:
        # post-mortem first: the flight recorder's ring still holds the
        # run's last events.  Skip the dump when a deeper handler (rank
        # failure, sanitizer trip) already captured this same error.
        from repro.obs import get_flight_recorder
        from repro.obs.log import log_event

        log_event("cli.error", "error", code=getattr(exc, "code", None),
                  message=str(exc))
        recorder = get_flight_recorder()
        last = recorder.last_bundle or {}
        if last.get("error", {}).get("message") == str(exc):
            path = recorder.dumps_written[-1] if recorder.dumps_written else None
        else:
            path = recorder.dump("cli_error", exc)
        if args.verbose:
            raise
        print(_render_error(exc), file=sys.stderr)
        if path is not None:
            print(f"flight-recorder bundle: {path}", file=sys.stderr)
        print("(re-run with -v for the full traceback)", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (| head, a closed pager): not an error, but the
        # fd must be replaced or the interpreter complains again at exit
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        # an unexpected crash: leave the forensics behind, then let the
        # traceback propagate — this is a bug, not a user error
        from repro.obs import get_flight_recorder
        from repro.obs.log import log_event

        log_event("cli.crash", "error", type=type(exc).__name__,
                  message=str(exc))
        path = get_flight_recorder().dump("crash", exc)
        if path is not None:
            print(f"flight-recorder bundle: {path}", file=sys.stderr)
        raise


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.command == "info":
        return cmd_info(args)
    if args.command == "figures":
        return cmd_figures(args)
    if args.command == "pipeline":
        return cmd_pipeline(args)
    if args.command == "latex":
        return cmd_latex(args)
    if args.command == "bte":
        return cmd_bte(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "history":
        return cmd_history(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "events":
        return cmd_events(args)
    if args.command == "serve":
        return cmd_serve(args)
    parser.print_help()
    return 2


def _render_error(exc: "ReproError") -> str:
    """One-line diagnostic (+ caret block when the error carries one)."""
    lines = str(exc).splitlines() or [""]
    return "\n".join([f"error {exc.code}: {lines[0]}", *lines[1:]])


#: Subcommands the ``bte`` alias passes straight through to ``main``.
_COMMANDS = {"info", "figures", "pipeline", "latex", "bte", "analyze",
             "profile", "compare", "history", "bench", "tune", "lint",
             "events", "serve"}


def bte_main(argv: list[str] | None = None) -> int:
    """Entry point of the installed ``bte`` script.

    ``bte analyze t.json r.json`` is ``repro analyze ...``; anything that
    is not a known subcommand (``bte --gpu --trace t.json``) runs the BTE
    transient itself, so the short form of the paper's workflow works:

    .. code-block:: shell

        bte --gpu --trace t.json --report r.json
        bte analyze t.json r.json
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    head = next((a for a in argv if not a.startswith("-")), None)
    if head in _COMMANDS or (argv and argv[0] in ("-h", "--help")):
        return main(argv)
    return main(["bte", *argv])


if __name__ == "__main__":
    sys.exit(main())
