"""FIG7 — CPU-only vs CPU+GPU execution time (paper Fig. 7).

Paper's claims, each asserted:

* "Compared to the CPU code with an equal number of partitions, the GPU
  version is about 18 times faster";
* "Strong scaling ... is good up to at least 10 devices, but larger
  numbers did not show further speedup";
* (Sec. III-D) 20 CPU cores were "slightly slower than the same CPU using
  one core and one GPU".

Regeneration: band-partitioned sweeps, CPU from the calibrated cost model,
GPU from the A6000 roofline + PCIe + overlapped-boundary model.
"""

import numpy as np
import pytest

from repro.perfmodel import BTEWorkload
from repro.perfmodel.scaling import band_parallel_times, gpu_hybrid_times

from .conftest import format_series_table

PROCS = [1, 2, 4, 8, 10, 20, 40, 55]


@pytest.fixture(scope="module")
def series():
    w = BTEWorkload.paper_configuration()
    cpu = band_parallel_times(w, PROCS)
    gpu = gpu_hybrid_times(w, PROCS)
    return cpu, gpu


def test_fig7_series(series, record_figure):
    cpu, gpu = series
    rows = []
    for i, p in enumerate(PROCS):
        rows.append([p, cpu.total[i], gpu.total[i], cpu.total[i] / gpu.total[i]])
    header = ["procs/GPUs", "CPU only [s]", "CPU+GPU [s]", "speedup"]
    table = format_series_table(header, rows)
    record_figure("FIG7: CPU-only vs GPU-accelerated execution time", table,
                  rows=rows, header=header)

    # ~18x at equal small partition counts
    speedups = [cpu.total[i] / gpu.total[i] for i in range(2)]
    for s in speedups:
        assert 14 < s < 24

    # good scaling to 10 devices, flat afterwards
    i10, i55 = PROCS.index(10), PROCS.index(55)
    assert gpu.total[0] / gpu.total[i10] > 4.0  # >4x from 10 devices
    assert gpu.total[i10] / gpu.total[i55] < 2.0  # little gain past 10

    # both monotone non-increasing
    assert all(np.diff(gpu.total) < 1e-9)


def test_fig7_cpu20_vs_gpu1(series):
    w = BTEWorkload.paper_configuration()
    t_cpu20 = band_parallel_times(w, [20]).total[0]
    t_gpu1 = gpu_hybrid_times(w, [1]).total[0]
    assert t_gpu1 < t_cpu20  # "slightly slower" than 1 core + 1 GPU


def test_fig7_parallel_efficiency_statement(series, record_figure):
    """'Both curves display consistently good parallel efficiency over the
    range shown' — up to ~10 devices for the GPU curve."""
    cpu, gpu = series
    eff_rows = []
    for i, p in enumerate(PROCS[: PROCS.index(10) + 1]):
        eff_cpu = cpu.total[0] / (cpu.total[i] * p)
        eff_gpu = gpu.total[0] / (gpu.total[i] * p)
        eff_rows.append([p, eff_cpu, eff_gpu])
    record_figure(
        "FIG7-efficiency: parallel efficiency up to 10 devices",
        format_series_table(["p", "CPU eff", "GPU eff"], eff_rows),
    )
    # CPU band strategy keeps >60 % efficiency through 10 ranks
    assert all(r[1] > 0.6 for r in eff_rows)


def test_fig7_executed_multi_gpu_crosscheck(record_figure):
    """An actually-executed multi-device run (real rank programs, one
    simulated A6000 per rank) must land near the analytic curve built from
    the same device/cost models."""
    from repro.bte.problem import build_bte_problem, hotspot_scenario

    scenario = hotspot_scenario(nx=12, ny=12, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=4)
    problem, model = build_bte_problem(scenario)
    problem.enable_gpu()
    problem.set_partitioning("bands", 4, index="b")
    solver = problem.solve()
    executed = solver.state.spmd_result.makespan

    w = BTEWorkload(
        ncells=144, ndirs=8, nbands=model.bands.nbands, nsteps=4,
        n_boundary_faces=48,
    )
    modelled = gpu_hybrid_times(w, [4]).total[0]
    record_figure(
        "FIG7-crosscheck: executed multi-GPU run vs analytic model (4 devices)",
        f"executed makespan : {executed:.6f} s\n"
        f"analytic model    : {modelled:.6f} s\n"
        f"ratio             : {executed / modelled:.3f}",
    )
    # same device model, same band split; small-problem occupancy effects
    # and rendezvous noise keep them within a modest factor
    assert 0.3 < executed / modelled < 3.0


def test_fig7_benchmark(benchmark):
    w = BTEWorkload.paper_configuration()
    benchmark(lambda: gpu_hybrid_times(w, PROCS))
