"""FIG10 — elongated material with a corner heat source (paper Fig. 10).

"Temperature of a smaller-scale, elongated material with a heat source in
one corner.  Similar to the other example, this has symmetry conditions on
the left and right, and an isothermal boundary on the bottom" — at a
100-150 K colour scale.

Shape checks: the corner is the hottest point, isotherms bow outward from
it, the cold bottom wall stays pinned, and the far end stays at base
temperature.
"""

import numpy as np
import pytest

from repro.bte import build_bte_problem, corner_source_scenario

from .conftest import format_series_table

NX, NY = 48, 16
NSTEPS = 250


@pytest.fixture(scope="module")
def solved():
    scenario = corner_source_scenario(nx=NX, ny=NY, ndirs=12, n_freq_bands=8,
                                      dt=5e-12, nsteps=NSTEPS)
    scenario.sigma = 30e-6
    problem, model = build_bte_problem(scenario)
    solver = problem.generate()
    solver.run()
    return scenario, solver


def test_fig10_field(solved, record_figure):
    scenario, solver = solved
    T = solver.state.extra["T"].reshape(NY, NX)

    rows = []
    for frac in (0.05, 0.25, 0.5, 0.75, 1.0):
        i = min(int(frac * NX), NX - 1)
        rows.append([f"x={frac:.2f}Lx", float(T[-1, i]), float(T[NY // 2, i]),
                     float(T[0, i])])
    record_figure(
        "FIG10: corner-source temperature field (reduced elongated run)",
        format_series_table(["column", "top [K]", "mid [K]", "bottom [K]"], rows)
        + f"\n\nT range: [{T.min():.2f}, {T.max():.2f}] K "
        f"(paper colour scale: 100..150 K)",
    )

    # hottest point is the source corner (top-left)
    jmax, imax = np.unravel_index(np.argmax(T), T.shape)
    assert jmax == NY - 1 and imax <= 1
    # temperature decays monotonically along the top wall away from the corner
    top = T[-1]
    coarse = top[:: NX // 8]
    assert all(a >= b - 1e-9 for a, b in zip(coarse, coarse[1:]))
    # the far end is still essentially at base temperature
    assert T[:, -NX // 8 :].max() < scenario.T0 + 0.2 * (T.max() - scenario.T0)
    # temperature range sits inside the figure's colour scale
    assert T.min() >= scenario.T0 - 1e-6
    assert T.max() <= scenario.T_hot + 1e-6


def test_fig10_ballistic_at_low_temperature(solved):
    """At 100 K the mean free paths are longer than at 300 K, so the same
    geometry is more ballistic — relaxation times must reflect that."""
    from repro.bte.scattering import relaxation_times

    scenario, solver = solved
    model = solver.state.extra["bte_model"]
    tau_cold = relaxation_times(model.bands, 100.0)
    tau_warm = relaxation_times(model.bands, 300.0)
    assert np.all(tau_cold > tau_warm)


def test_fig10_step_benchmark(solved, benchmark):
    _, solver = solved
    benchmark(solver.step)
