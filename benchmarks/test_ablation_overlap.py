"""ABLATION — asynchronous kernel/boundary overlap (paper Fig. 6).

The hybrid step launches the interior kernel asynchronously and runs the
CPU boundary callbacks while it executes.  This ablation compares the
modelled step time with and without that overlap across device counts and
boundary-work weights, quantifying what Fig. 6's design is worth.
"""

import pytest

from repro.gpu.kernel import Kernel, model_launch
from repro.gpu.spec import A6000
from repro.perfmodel.costs import BTEWorkload, CostModel, bands_per_rank
from repro.perfmodel.machines import CASCADE_LAKE_FINCH
from repro.perfmodel.scaling import (
    DEFAULT_KERNEL_BYTES_PER_THREAD,
    DEFAULT_KERNEL_FLOPS_PER_THREAD,
)

from .conftest import format_series_table


def step_times(g: int, boundary_scale: float = 1.0):
    """(kernel, boundary, overlapped, serialised) per-step seconds at g
    devices, band-partitioned."""
    w = BTEWorkload.paper_configuration()
    cost = CostModel(CASCADE_LAKE_FINCH)
    nb = bands_per_rank(w.nbands, g)
    kernel = Kernel("interior", lambda: None,
                    flops_per_thread=DEFAULT_KERNEL_FLOPS_PER_THREAD,
                    bytes_per_thread=DEFAULT_KERNEL_BYTES_PER_THREAD)
    k = model_launch(A6000, kernel, w.ncells * w.ndirs * nb).duration
    b = boundary_scale * cost.boundary_step(w.n_boundary_faces, w.ndirs * nb)
    return k, b, max(k, b), k + b


def test_ablation_overlap_savings(record_figure):
    rows = []
    for g in (1, 2, 4, 8, 16, 55):
        k, b, ov, ser = step_times(g)
        saving = (ser - ov) / ser * 100
        rows.append([g, k * 1e3, b * 1e3, ov * 1e3, ser * 1e3, saving])
        assert ov <= ser
    record_figure(
        "ABLATION-overlap: async kernel||boundary vs serialised (per step, ms)",
        format_series_table(
            ["GPUs", "kernel", "boundary", "overlapped", "serialised", "saving %"],
            rows,
        ),
    )
    # at the paper configuration the boundary work hides completely under
    # the kernel at small device counts
    k, b, ov, _ = step_times(1)
    assert ov == pytest.approx(k)


def test_ablation_overlap_matters_most_when_balanced():
    """The saving peaks where kernel and boundary cost are comparable."""
    k0, b0, _, _ = step_times(4)
    balanced = k0 / b0  # the scale that equalises the two
    savings = []
    for scale in (0.02 * balanced, balanced, 50.0 * balanced):
        k, b, ov, ser = step_times(4, boundary_scale=scale)
        savings.append((ser - ov) / ser)
    assert savings[1] > savings[0]
    assert savings[1] > savings[2]
    # perfectly balanced saves exactly half
    assert savings[1] == pytest.approx(0.5)


def test_ablation_executed_overlap(record_figure):
    """The generated hybrid solver's timeline actually realises the
    overlap (not just the model): intensity phase == max, not sum."""
    from repro.bte.problem import build_bte_problem, hotspot_scenario

    scenario = hotspot_scenario(nx=24, ny=24, ndirs=12, n_freq_bands=10,
                                dt=1e-12, nsteps=8)
    problem, _ = build_bte_problem(scenario)
    problem.enable_gpu()
    solver = problem.generate()
    assert solver.target_name == "gpu"
    solver.run()
    kernel_total = sum(r.duration for r in solver.device.default_stream.records)
    boundary_total = solver.namespace["COST_BOUNDARY"] * scenario.nsteps
    intensity = solver.state.gpu_phases["solve for intensity"]
    record_figure(
        "ABLATION-overlap-executed: generated hybrid timeline",
        f"kernel busy    : {kernel_total * 1e3:8.3f} ms\n"
        f"boundary (CPU) : {boundary_total * 1e3:8.3f} ms\n"
        f"intensity phase: {intensity * 1e3:8.3f} ms "
        f"(= max per step, not sum)",
    )
    assert intensity < 0.95 * (kernel_total + boundary_total)


def test_ablation_perfect_comm_hiding_is_insignificant(record_figure):
    """Paper Sec. III-D: "Further efforts to minimize communication could
    have some benefit, but would not be significant overall."  Quantify:
    even hiding *all* PCIe traffic behind compute shaves only ~1 % off the
    step."""
    from repro.perfmodel.scaling import gpu_hybrid_times

    w = BTEWorkload.paper_configuration()
    rows = []
    for g in (1, 2, 4, 8):
        st = gpu_hybrid_times(w, [g])
        total = st.total[0]
        comm = st.phases["communication"][0]
        saving = comm / total * 100
        rows.append([g, total, comm, saving])
        assert saving < 2.0  # "not significant overall"
    record_figure(
        "ABLATION-comm-hiding: upper bound of hiding all PCIe traffic",
        format_series_table(
            ["GPUs", "total [s]", "comm [s]", "max saving %"], rows
        ),
    )


def test_ablation_overlap_benchmark(benchmark):
    benchmark(lambda: [step_times(g) for g in (1, 2, 4, 8, 16, 55)])
