"""FIG2 — temperature field around the hot spot (paper Fig. 2).

The paper shows the temperature of the material after 20 us (20 000 steps)
at 120x120 / 20 dirs / 55 bands: a warm bulb spreading from the Gaussian
hot spot on the top wall, peak ~340 K on a 300 K background.

Regeneration: a reduced configuration — a 100 um box on a 32x32 grid keeps
the paper's 10 um hot-spot width resolvable while the transient develops in
a few hundred explicit steps (on the paper's 525 um domain the bulb needs
the full 20 000 steps).  The benchmark times one solver step.  Shape
checks: the peak sits under the spot, temperature decays monotonically away
from it, and the bulb is left/right symmetric (the symmetry walls at work).
"""

import numpy as np
import pytest

from repro.bte import build_bte_problem, hotspot_scenario

from .conftest import format_series_table

NX = NY = 32
NSTEPS = 800


@pytest.fixture(scope="module")
def solved():
    # dt is bounded by the stiffest relaxation time (~5e-12 s for the top
    # LA bands at 300 K), the same constraint that forces the paper's
    # 1e-12 s steps
    scenario = hotspot_scenario(nx=NX, ny=NY, ndirs=12, n_freq_bands=10,
                                dt=5e-12, nsteps=NSTEPS)
    # shrink the domain (not the spot): same 10 um Gaussian, finer cells,
    # so the bulb spans many cells within a tractable number of steps
    scenario.lx = scenario.ly = 100e-6
    problem, model = build_bte_problem(scenario)
    solver = problem.generate()
    solver.run()
    return scenario, solver


def test_fig2_field_shape(solved, record_figure):
    scenario, solver = solved
    T = solver.state.extra["T"].reshape(NY, NX)

    # --- the regenerated "figure": temperature profile rows -------------------
    x_um = (np.arange(NX) + 0.5) * scenario.lx / NX * 1e6
    rows = []
    for frac in (1.0, 0.9, 0.75, 0.5):
        j = min(int(frac * NY) - 1, NY - 1)
        rows.append([f"y={frac:.2f}Ly",
                     float(T[j].max()), float(T[j].mean()), float(T[j].min())])
    table = format_series_table(["row", "T_max [K]", "T_mean [K]", "T_min [K]"], rows)
    record_figure("FIG2: hot-spot temperature field (reduced 100um/32x32 run, "
                  f"{NSTEPS} steps)", table)

    # --- shape assertions -------------------------------------------------------
    # peak at the top wall under the spot centre
    jmax, imax = np.unravel_index(np.argmax(T), T.shape)
    assert jmax == NY - 1
    assert abs(imax - NX / 2) <= 2
    assert T.max() > scenario.T0 + 1.0
    # vertical decay away from the wall through the spot centre
    centre_col = T[:, NX // 2]
    assert np.all(np.diff(centre_col) >= -1e-9)  # increases toward the top wall
    # left/right symmetry (specular walls + centred source)
    assert np.allclose(T, T[:, ::-1], rtol=1e-10)
    # cold wall pinned
    assert T[0].max() < scenario.T0 + 0.5 * (T.max() - scenario.T0)


def test_fig2_step_benchmark(solved, benchmark):
    _, solver = solved
    benchmark(solver.step)
