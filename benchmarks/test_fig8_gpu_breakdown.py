"""FIG8 — execution-time breakdown of the GPU-accelerated version (Fig. 8).

Paper: compared with the CPU breakdown (Fig. 5), the GPU version shows "a
substantially larger percentage of time spent on the temperature update"
(the intensity solve got ~40x faster, the CPU post-step did not), while
"the communication time between the GPU and host does not make up a very
significant portion of the time despite the need for communicating
variables at each time step".
"""

import pytest

from repro.bte import build_bte_problem, hotspot_scenario
from repro.perfmodel import BTEWorkload
from repro.perfmodel.scaling import (
    PHASE_COMMUNICATION,
    PHASE_INTENSITY,
    PHASE_TEMPERATURE,
    band_parallel_times,
    gpu_hybrid_times,
)

from .conftest import format_series_table

DEVICES = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def breakdowns():
    w = BTEWorkload.paper_configuration()
    return gpu_hybrid_times(w, DEVICES), band_parallel_times(w, DEVICES)


def test_fig8_breakdown(breakdowns, record_figure):
    gpu, cpu = breakdowns
    rows = []
    for g in DEVICES:
        fr = gpu.breakdown_fractions(g)
        rows.append([
            g,
            100 * fr[PHASE_INTENSITY],
            100 * fr[PHASE_TEMPERATURE],
            100 * fr[PHASE_COMMUNICATION],
        ])
    table = format_series_table(
        ["GPUs", "intensity(GPU) %", "temperature(CPU) %", "comm(CPU<->GPU) %"],
        rows,
    )
    record_figure("FIG8: GPU-accelerated execution-time breakdown", table)

    for g in DEVICES:
        fr_gpu = gpu.breakdown_fractions(g)
        fr_cpu = cpu.breakdown_fractions(g)
        # substantially larger temperature share than the CPU version
        assert fr_gpu[PHASE_TEMPERATURE] > 5 * fr_cpu[PHASE_TEMPERATURE]
        # communication remains insignificant
        assert fr_gpu[PHASE_COMMUNICATION] < 0.05


def test_fig8_executed_hybrid_run_breakdown(record_figure):
    """The generated hybrid solver's own virtual timeline shows the same
    structure."""
    scenario = hotspot_scenario(nx=24, ny=24, ndirs=12, n_freq_bands=10,
                                dt=1e-12, nsteps=10)
    problem, _ = build_bte_problem(scenario)
    problem.enable_gpu()
    solver = problem.generate()
    assert solver.target_name == "gpu"
    solver.run()
    phases = solver.state.gpu_phases
    total = sum(phases.values())
    record_figure(
        "FIG8-executed: generated hybrid solver timeline (24x24 run)",
        "\n".join(f"{k:<22} {v / total * 100:6.2f}%" for k, v in sorted(phases.items())),
    )
    assert phases["temperature update"] / total > 0.3
    assert phases["communication"] / total < 0.1


def test_fig8_benchmark(benchmark):
    w = BTEWorkload.paper_configuration()
    benchmark(lambda: gpu_hybrid_times(w, DEVICES))
