"""Shared helpers for the figure-regeneration benchmarks.

Every ``test_figN_*``/``test_tabN_*`` module regenerates the data behind one
table or figure of the paper's evaluation (see DESIGN.md's experiment
index).  Each prints the regenerated rows/series (run with ``-s`` to see
them inline; they are also written to ``benchmarks/output/``) and uses the
``benchmark`` fixture to time the representative computation.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

try:
    from repro.obs.regress import SCHEMA as BENCH_SCHEMA
except ImportError:  # collection without PYTHONPATH=src / an install
    BENCH_SCHEMA = "repro.bench/1"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def _slug(name: str) -> str:
    return name.split(":")[0].strip().replace(" ", "_").lower()


@pytest.fixture
def record_figure(output_dir):
    """Print a figure's regenerated data and persist it under output/.

    Always writes the human-readable ``<slug>.txt`` banner; when ``rows``
    (with an optional ``header``) or ``timings`` are supplied, a
    machine-readable ``<slug>.json`` is written next to it so the
    regenerated series can be diffed or plotted without re-parsing text.
    """

    def _record(
        name: str,
        text: str,
        rows: list[list] | None = None,
        header: list[str] | None = None,
        timings: dict[str, float] | None = None,
    ) -> None:
        banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
        print(banner)
        slug = _slug(name)
        (output_dir / f"{slug}.txt").write_text(banner)
        if rows is not None or timings is not None:
            payload: dict = {"schema": BENCH_SCHEMA, "name": name}
            if rows is not None:
                payload["header"] = header
                payload["rows"] = rows
            if timings is not None:
                payload["timings"] = timings
            (output_dir / f"{slug}.json").write_text(
                json.dumps(payload, indent=2, default=float) + "\n"
            )

    return _record


def format_series_table(header: list[str], rows: list[list]) -> str:
    widths = [max(len(str(h)), 12) for h in header]
    out = ["".join(f"{h:>{w}}" for h, w in zip(header, widths))]
    for row in rows:
        cells = []
        for v, w in zip(row, widths):
            if isinstance(v, float):
                cells.append(f"{v:>{w}.3f}")
            else:
                cells.append(f"{str(v):>{w}}")
        out.append("".join(cells))
    return "\n".join(out)
