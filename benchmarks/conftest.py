"""Shared helpers for the figure-regeneration benchmarks.

Every ``test_figN_*``/``test_tabN_*`` module regenerates the data behind one
table or figure of the paper's evaluation (see DESIGN.md's experiment
index).  Each prints the regenerated rows/series (run with ``-s`` to see
them inline; they are also written to ``benchmarks/output/``) and uses the
``benchmark`` fixture to time the representative computation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_figure(output_dir):
    """Print a figure's regenerated data and persist it under output/."""

    def _record(name: str, text: str) -> None:
        banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
        print(banner)
        (output_dir / f"{name.split(':')[0].strip().replace(' ', '_').lower()}.txt").write_text(
            banner
        )

    return _record


def format_series_table(header: list[str], rows: list[list]) -> str:
    widths = [max(len(str(h)), 12) for h in header]
    out = ["".join(f"{h:>{w}}" for h, w in zip(header, widths))]
    for row in rows:
        cells = []
        for v, w in zip(row, widths):
            if isinstance(v, float):
                cells.append(f"{v:>{w}.3f}")
            else:
                cells.append(f"{str(v):>{w}}")
        out.append("".join(cells))
    return "\n".join(out)
