"""ABLATION — mesh partitioner quality (the Metis stand-in) and the
band-vs-cell communication volumes of Figure 3.

Compares the KL-refined graph partitioner against plain recursive
coordinate bisection (edge cut and halo volume), and measures the actual
communication-volume gap between the cell and band strategies that Fig. 3
illustrates.
"""

import numpy as np
import pytest

from repro.mesh.grid import structured_grid
from repro.mesh.partition import build_partition_layout, partition_cells

from .conftest import format_series_table


@pytest.fixture(scope="module")
def mesh():
    return structured_grid((40, 40))


def test_ablation_partitioner_quality(mesh, record_figure):
    rows = []
    for nparts in (2, 4, 8, 16):
        layouts = {}
        for method in ("graph", "rcb"):
            parts = partition_cells(mesh, nparts, method=method)
            layouts[method] = build_partition_layout(mesh, parts)
        rows.append([
            nparts,
            layouts["graph"].cut_face_count,
            layouts["rcb"].cut_face_count,
            layouts["graph"].comm_volume_doubles(),
            layouts["rcb"].comm_volume_doubles(),
        ])
    record_figure(
        "ABLATION-partitioner: KL-refined graph vs RCB (40x40 grid)",
        format_series_table(
            ["parts", "cut(graph)", "cut(rcb)", "halo(graph)", "halo(rcb)"], rows
        ),
    )
    # both stay within a small factor of each other on uniform grids, and
    # neither blows past the worst case
    for row in rows:
        assert max(row[1], row[2]) < mesh.nfaces / 3
        assert min(row[1], row[2]) > 0


def test_ablation_band_vs_cell_comm_volume(mesh, record_figure):
    """Fig. 3's claim, with numbers: per step, the cell strategy exchanges
    every I[d,b] along the partition interfaces, the band strategy only
    reduces per-band cell energies."""
    ndirs, nbands = 20, 55
    rows = []
    for nparts in (2, 4, 8):
        layout = build_partition_layout(mesh, partition_cells(mesh, nparts))
        cell_doubles = layout.comm_volume_doubles(dofs_per_cell=ndirs * nbands)
        # band strategy: allreduce of (nbands, ncells) energies
        band_doubles = nbands * mesh.ncells
        rows.append([nparts, cell_doubles, band_doubles,
                     cell_doubles / band_doubles])
    record_figure(
        "ABLATION-strategy-comm: per-step values moved, cell vs band "
        "(40x40, 20 dirs, 55 bands)",
        format_series_table(
            ["parts", "cell halo", "band reduce", "ratio"], rows
        ),
    )
    # at these sizes the halo traffic is comparable to or larger than the
    # reduction, and it *grows* with the part count while the reduction
    # payload stays fixed — the trend behind the paper's Fig. 3 argument
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 1.0


def test_ablation_partitioner_benchmark(mesh, benchmark):
    benchmark(lambda: partition_cells(mesh, 8, method="graph"))
