"""FIG4 — strong scaling of band-parallel vs cell-parallel (paper Fig. 4).

Paper's observations, each asserted below:

* both strategies track ideal scaling closely at small/medium counts;
* the band strategy is capped by the 55 available bands;
* the cell strategy "is able to scale to a greater number of processes
  despite a slightly higher communication cost" — out to 320.

Regeneration: paper-scale series from the analytic evaluators (calibrated
cost model + alpha-beta network), cross-validated against executed SPMD
runs at small rank counts.  The benchmark times the full sweep evaluation.
"""

import numpy as np
import pytest

from repro.bte import build_bte_problem, hotspot_scenario
from repro.perfmodel import BTEWorkload
from repro.perfmodel.scaling import band_parallel_times, cell_parallel_times

from .conftest import format_series_table

BAND_PROCS = [1, 2, 5, 10, 20, 40, 55]
CELL_PROCS = [1, 2, 5, 10, 20, 40, 80, 160, 320]


@pytest.fixture(scope="module")
def series():
    w = BTEWorkload.paper_configuration()
    return (
        band_parallel_times(w, BAND_PROCS),
        cell_parallel_times(w, CELL_PROCS),
    )


def test_fig4_series(series, record_figure):
    band, cell = series
    ideal = band.total[0]
    rows = []
    for p in CELL_PROCS:
        row = [p]
        row.append(band.total[band.procs.index(p)] if p in band.procs else float("nan"))
        row.append(cell.total[cell.procs.index(p)])
        row.append(ideal / p)
        rows.append(row)
    header = ["procs", "bands [s]", "cells [s]", "ideal [s]"]
    table = format_series_table(header, rows)
    record_figure("FIG4: band-parallel vs cell-parallel strong scaling "
                  "(120x120, 20 dirs, 55 bands, 100 steps)", table,
                  rows=rows, header=header)

    # --- paper-shape assertions ---------------------------------------------
    # near-ideal efficiency for cells out to 320
    assert cell.parallel_efficiency()[-1] > 0.8
    # band strategy cannot exceed 55 ranks
    with pytest.raises(ValueError):
        band_parallel_times(BTEWorkload.paper_configuration(), [64])
    # both monotone decreasing
    assert all(np.diff(band.total) < 0)
    assert all(np.diff(cell.total) < 0)
    # cells at 320 beat the best band time by a large factor
    assert cell.total[-1] < band.total[-1] / 4


def test_fig4_model_agrees_with_executed_runs(record_figure):
    """Cross-check: the analytic series and an actually-executed SPMD run
    use the same cost model, so the virtual makespans must agree."""
    scenario = hotspot_scenario(nx=10, ny=10, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=4)
    problem, model = build_bte_problem(scenario)
    problem.set_partitioning("bands", 4, index="b")
    solver = problem.solve()
    executed = solver.state.spmd_result.makespan

    w = BTEWorkload(
        ncells=100, ndirs=8, nbands=model.bands.nbands, nsteps=4,
        n_boundary_faces=40,
    )
    modelled = band_parallel_times(w, [4]).total[0]
    # same cost model, same band split -> close agreement (the executed run
    # also pays simulated-collective rendezvous noise)
    assert executed == pytest.approx(modelled, rel=0.2)
    record_figure(
        "FIG4-crosscheck: executed vs modelled virtual time (4 band ranks)",
        f"executed SPMD makespan : {executed:.6f} s\n"
        f"analytic model         : {modelled:.6f} s",
    )


def test_fig4_sweep_benchmark(benchmark):
    w = BTEWorkload.paper_configuration()

    def sweep():
        band_parallel_times(w, BAND_PROCS)
        cell_parallel_times(w, CELL_PROCS)

    benchmark(sweep)
