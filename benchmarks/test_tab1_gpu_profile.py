"""TAB1 — the paper's inline GPU profiling table (Sec. III-D).

Paper (Nsight profile of the one-GPU intensity kernel, double precision,
A6000 roofline):

    SM utilization    | 86%
    memory throughput | 11%
    FLOP performance  | 49% of peak

Regeneration: (a) the paper-scale kernel modelled on the simulated A6000
with the calibrated per-thread work; (b) the *actual generated kernel* of a
reduced run profiled through the same counters.  The paper also notes FP32
"did not provide adequate precision" — asserted here as the generated
kernels computing in float64.
"""

import numpy as np
import pytest

from repro.bte import build_bte_problem, hotspot_scenario
from repro.gpu.kernel import Kernel, model_launch
from repro.gpu.profiler import Profiler
from repro.gpu.spec import A6000
from repro.perfmodel.scaling import (
    DEFAULT_KERNEL_BYTES_PER_THREAD,
    DEFAULT_KERNEL_FLOPS_PER_THREAD,
)

PAPER = {"sm": 0.86, "mem": 0.11, "flop": 0.49}


@pytest.fixture(scope="module")
def paper_scale_report():
    prof = Profiler(A6000)
    kernel = Kernel(
        "I_interior_step",
        lambda: None,
        flops_per_thread=DEFAULT_KERNEL_FLOPS_PER_THREAD,
        bytes_per_thread=DEFAULT_KERNEL_BYTES_PER_THREAD,
    )
    ndof = 120 * 120 * 20 * 55  # the paper's 1.58e7 DOF
    for _ in range(5):
        prof.record_launch(model_launch(A6000, kernel, ndof))
    return prof.report()


def test_tab1_paper_scale_metrics(paper_scale_report, record_figure):
    rep = paper_scale_report
    record_figure(
        "TAB1: one-GPU kernel profile (paper-scale, simulated A6000)",
        rep.table()
        + "\n\npaper reported: SM 86% | memory 11% | FLOP 49% of peak",
    )
    assert rep.sm_utilization == pytest.approx(PAPER["sm"], abs=0.15)
    assert rep.memory_throughput_fraction == pytest.approx(PAPER["mem"], abs=0.05)
    assert rep.flop_fraction_of_peak == pytest.approx(PAPER["flop"], abs=0.10)


def test_tab1_kernel_is_compute_bound(paper_scale_report):
    """49% of DP peak vs 11% of DRAM: the kernel is compute bound on the
    FP64-starved GA102 — the model must agree."""
    rep = paper_scale_report
    assert rep.flop_fraction_of_peak > 3 * rep.memory_throughput_fraction


def test_tab1_generated_kernel_profile(record_figure):
    """Profile the real generated kernel on a reduced run."""
    scenario = hotspot_scenario(nx=24, ny=24, ndirs=12, n_freq_bands=10,
                                dt=1e-12, nsteps=6)
    problem, _ = build_bte_problem(scenario)
    problem.enable_gpu()
    solver = problem.generate()
    assert solver.target_name == "gpu"
    solver.run()
    rep = solver.device.profiler.report(solver.kernel.name)
    record_figure(
        "TAB1-reduced: generated-kernel profile (24x24 run)", rep.table()
    )
    assert rep.n_launches == scenario.nsteps
    # still compute bound, throughput fraction small
    assert rep.flop_fraction_of_peak > rep.memory_throughput_fraction


def test_tab1_double_precision_enforced():
    """Sec. III-D: 32-bit floats were insufficient; the device substrate
    stores and computes in float64."""
    scenario = hotspot_scenario(nx=16, ny=16, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=2)
    problem, _ = build_bte_problem(scenario)
    problem.enable_gpu()
    solver = problem.generate()
    for buf in solver.device.buffers.values():
        assert buf.array.dtype == np.float64


def test_tab1_benchmark(benchmark):
    kernel = Kernel(
        "I_interior_step", lambda: None,
        flops_per_thread=DEFAULT_KERNEL_FLOPS_PER_THREAD,
        bytes_per_thread=DEFAULT_KERNEL_BYTES_PER_THREAD,
    )
    benchmark(lambda: model_launch(A6000, kernel, 15_840_000))
