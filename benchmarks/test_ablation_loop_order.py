"""ABLATION — assemblyLoops ordering (paper Sec. III-C).

"The ability to arrange these loops may also be advantageous in other
applications where efficiency or details of the calculation favor a
particular ordering."  This ablation runs the same BTE configuration under
the three natural orderings, checks the solutions are identical, and
benchmarks the generated solvers (fused/cell-outermost does the whole
component axis in one vectorised sweep; band- or direction-outermost pay
per-block dispatch overhead in exchange for smaller working sets — the
trade the paper's distributed band strategy exploits).
"""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.tune.cache import cache_scope

ORDERS = {
    "cells-outer (fused)": ["cells"],
    "band-outer": ["b", "cells", "d"],
    "dir-outer": ["d", "cells", "b"],
}


@pytest.fixture(scope="module")
def scenario():
    return hotspot_scenario(nx=16, ny=16, ndirs=8, n_freq_bands=8,
                            dt=1e-12, nsteps=3)


@pytest.fixture(scope="module", autouse=True)
def sweep_cache():
    """One compilation cache for the whole sweep: each ordering is built
    once, then every later generate() of the same configuration rebinds
    the cached artifact (fresh state, zero lowering/codegen/compile)."""
    with cache_scope() as cache:
        yield cache


def make_solver(scenario, order):
    problem, _ = build_bte_problem(scenario)
    problem.set_assembly_loops(list(order))
    return problem.generate()


def test_ablation_orders_agree(scenario, record_figure):
    solutions = {}
    block_counts = {}
    for name, order in ORDERS.items():
        solver = make_solver(scenario, order)
        solver.run()
        solutions[name] = solver.solution()
        blocks = solver.state.comp_blocks
        block_counts[name] = 1 if blocks == [slice(None)] else len(blocks)
    ref = solutions["cells-outer (fused)"]
    for name, sol in solutions.items():
        assert np.allclose(sol, ref, rtol=1e-13), name
    record_figure(
        "ABLATION-loop-order: component blocks per ordering",
        "\n".join(f"{name:<22} {n} block(s)" for name, n in block_counts.items()),
    )
    assert block_counts["cells-outer (fused)"] == 1
    assert block_counts["band-outer"] == scenario_bands(scenario)
    assert block_counts["dir-outer"] == scenario.ndirs


def scenario_bands(scenario):
    from repro.bte.dispersion import silicon_bands

    return silicon_bands(scenario.n_freq_bands).nbands


@pytest.mark.parametrize("name", list(ORDERS))
def test_ablation_loop_order_benchmark(scenario, benchmark, name):
    solver = make_solver(scenario, ORDERS[name])
    benchmark(solver.step)


def test_sweep_reused_cached_artifacts(sweep_cache):
    """The whole sweep builds each ordering exactly once (runs last: pytest
    executes this file top-to-bottom, so every generate() above counted)."""
    assert sweep_cache.stats.builds == len(ORDERS)
    # the benchmark parametrisations regenerated each ordering from cache
    assert sweep_cache.stats.memory_hits >= len(ORDERS)
    assert sweep_cache.stats.misses == len(ORDERS)
