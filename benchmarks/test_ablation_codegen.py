"""ABLATION — what code generation buys over direct interpretation.

The paper's whole premise is that generating specialised code beats
interpreting the abstract description.  This repository has both paths
(`cpu` target vs the `interp` oracle), bit-identical in results, so the
speedup of generation is directly measurable.
"""

import time

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario

from .conftest import format_series_table


def solvers(scenario):
    p1, _ = build_bte_problem(scenario)
    gen = p1.generate(target="cpu")
    p2, _ = build_bte_problem(scenario)
    interp = p2.generate(target="interp")
    return gen, interp


def step_time(solver, nsteps=3) -> float:
    solver.run(1)  # warm caches/buffers
    t0 = time.perf_counter()
    solver.run(nsteps)
    return (time.perf_counter() - t0) / nsteps


def test_ablation_codegen_speedup(record_figure):
    rows = []
    for nx, ndirs, nb in ((8, 8, 4), (12, 8, 6), (16, 12, 8)):
        scenario = hotspot_scenario(nx=nx, ny=nx, ndirs=ndirs, n_freq_bands=nb,
                                    dt=1e-12, nsteps=10)
        gen, interp = solvers(scenario)
        t_gen = step_time(gen)
        t_interp = step_time(interp)
        ncomp = gen.state.ncomp
        rows.append([f"{nx}x{nx}x{ncomp}", t_gen * 1e3, t_interp * 1e3,
                     t_interp / t_gen])
        assert t_interp > t_gen  # generation must pay at every size
    record_figure(
        "ABLATION-codegen: generated vs interpreted step time (ms)",
        format_series_table(
            ["cells x comps", "generated", "interpreted", "speedup"], rows
        ),
    )
    # an order-of-magnitude-class advantage across the sweep (the
    # interpreter walks the expression tree once per component; generated
    # code is a handful of fused vectorised statements)
    assert all(r[3] > 5 for r in rows)


def test_ablation_codegen_results_identical():
    scenario = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4,
                                dt=1e-12, nsteps=5)
    gen, interp = solvers(scenario)
    gen.run()
    interp.run()
    scale = np.abs(gen.solution()).max()
    assert np.abs(gen.solution() - interp.solution()).max() < 1e-12 * scale


def test_ablation_codegen_benchmark(benchmark):
    scenario = hotspot_scenario(nx=12, ny=12, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=2)
    gen, _ = solvers(scenario)
    benchmark(gen.step)
