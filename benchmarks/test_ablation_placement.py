"""ABLATION — the min-cut placement vs naive policies.

The paper's automation claim is that the DSL partitions CPU/GPU work by
minimising data movement.  This ablation quantifies what the optimiser buys
over the two naive policies ("everything on the GPU except pinned
callbacks" / "everything on the CPU") across problem sizes: the optimiser
must never be worse than either, and must switch sides at the size where
transfers stop paying.
"""

import math

import pytest

from repro.codegen.placement import Task, TaskGraph, optimize_placement
from repro.gpu.kernel import Kernel, model_launch
from repro.gpu.spec import A6000
from repro.perfmodel.costs import BTEWorkload, CostModel
from repro.perfmodel.machines import CASCADE_LAKE_FINCH
from repro.perfmodel.scaling import (
    DEFAULT_KERNEL_BYTES_PER_THREAD,
    DEFAULT_KERNEL_FLOPS_PER_THREAD,
)

from .conftest import format_series_table


def step_graph(ncells: int, ndirs: int = 20, nbands: int = 55) -> TaskGraph:
    """The BTE step's task graph at a given discretisation."""
    w = BTEWorkload(ncells=ncells, ndirs=ndirs, nbands=nbands,
                    n_boundary_faces=4 * int(math.sqrt(ncells)))
    cost = CostModel(CASCADE_LAKE_FINCH)
    kernel = Kernel("interior", lambda: None,
                    flops_per_thread=DEFAULT_KERNEL_FLOPS_PER_THREAD,
                    bytes_per_thread=DEFAULT_KERNEL_BYTES_PER_THREAD)
    g = TaskGraph()
    g.add_task(Task("interior",
                    cost_cpu=cost.intensity_step(w.ncells, w.ncomp),
                    cost_gpu=model_launch(A6000, kernel, w.ndof).duration))
    g.add_task(Task("boundary", cost_cpu=cost.boundary_step(w.n_boundary_faces, w.ncomp),
                    pinned="cpu"))
    g.add_task(Task("post_step", cost_cpu=cost.temperature_step(w.ncells, w.nbands),
                    pinned="cpu"))
    u_bytes = w.ndof * 8.0
    g.add_edge("interior", "post_step", u_bytes)
    g.add_edge("post_step", "interior", 2 * w.ncells * w.nbands * 8.0)
    return g


def policy_cost(graph: TaskGraph, interior_device: str, link=A6000) -> float:
    """Modelled step cost if the interior is forced onto one device."""
    total = 0.0
    for t in graph.tasks.values():
        dev = interior_device if t.name == "interior" else "cpu"
        total += t.cost_cpu if dev == "cpu" else t.cost_gpu
    if interior_device == "gpu":
        for e in graph.edges:
            total += link.pcie_latency_s + e.nbytes / link.pcie_bw_bytes()
    return total


#: (ncells, ndirs, nbands) from trivially small to the paper configuration
SIZES = [
    (16, 4, 2),
    (64, 4, 4),
    (256, 8, 6),
    (1024, 8, 13),
    (4096, 12, 26),
    (14400, 20, 55),
    (57600, 20, 55),
]


def test_ablation_optimizer_dominates_naive_policies(record_figure):
    rows = []
    for ncells, ndirs, nbands in SIZES:
        g = step_graph(ncells, ndirs, nbands)
        plan = optimize_placement(g, A6000)
        all_cpu = policy_cost(g, "cpu")
        all_gpu = policy_cost(g, "gpu")
        rows.append([
            f"{ncells}x{ndirs * nbands}",
            plan.device["interior"],
            plan.objective_seconds * 1e3,
            all_cpu * 1e3,
            all_gpu * 1e3,
        ])
        # the optimiser never loses to either naive policy
        assert plan.objective_seconds <= all_cpu + 1e-12
        assert plan.objective_seconds <= all_gpu + 1e-12
    record_figure(
        "ABLATION-placement: min-cut vs all-CPU vs naive-offload "
        "(modelled step cost, ms)",
        format_series_table(
            ["cells x comps", "choice", "min-cut", "all-CPU", "offload"], rows
        ),
    )
    # and it actually switches sides across the size sweep
    choices = {r[1] for r in rows}
    assert choices == {"cpu", "gpu"}


def test_ablation_crossover_is_monotone():
    """Once offloading pays at some size, it pays at every larger size."""
    decisions = []
    for ncells, ndirs, nbands in SIZES:
        plan = optimize_placement(step_graph(ncells, ndirs, nbands), A6000)
        decisions.append(plan.device["interior"] == "gpu")
    first_gpu = decisions.index(True)
    assert all(decisions[first_gpu:])


def test_ablation_placement_benchmark(benchmark):
    g = step_graph(14400, 20, 55)
    benchmark(lambda: optimize_placement(g, A6000))
