"""ABLATION — spatial and angular resolution of the BTE discretisation.

The paper's quoted resolutions ("~1e6 cells ... 400 directions ... for a
spatial and angular grid-independent solution") imply convergence under
refinement.  The ballistic slab provides exact targets:

* **angular**: the half-space flux moment ``sum_{s.x>0} w_d s_x`` of the
  in-plane ordinate set converges to 4 (the 2-D in-plane convention; a 3-D
  set would give pi), and the zero-scattering steady flux is exactly
  ``vg * (e_hot - e_cold) / (4 pi) * moment`` — the simulation must land on
  its own quadrature's value;
* **spatial**: the interior temperature gradient at weak scattering is the
  *physical* ``q / k_bulk`` (diffusion riding on the ballistic background);
  mesh refinement must converge the measured plateau tilt to it.
"""

import numpy as np
import pytest

from repro.bte.angular import uniform_directions_2d
from repro.bte.conductivity import bulk_conductivity
from repro.bte.dispersion import silicon_bands
from repro.bte.equilibrium import total_energy_density
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario, build_bte_problem

from .conftest import format_series_table

T1, T2, L = 105.0, 95.0, 50e-9


def half_space_flux_moment(ndirs: int) -> float:
    ds = uniform_directions_2d(ndirs)
    sx = ds.sx
    return float((ds.weights[sx > 0] * sx[sx > 0]).sum())


def run_slab(ndirs: int, nx: int):
    """Steady ballistic slab: returns (mean flux, plateau tilt, model)."""
    model = BTEModel(bands=silicon_bands(1),
                     directions=uniform_directions_2d(ndirs))
    scenario = BTEScenario(
        name="resolution", nx=nx, ny=2, lx=L, ly=L / 8,
        ndirs=ndirs, n_freq_bands=1,
        dt=0.35 * (L / nx) / float(model.bands.vg[0]), nsteps=900,
        T0=T2, T_hot=T1, sigma=1e3,
        cold_regions=(2,), hot_regions=(1,), symmetry_regions=(3, 4),
    )
    problem, _ = build_bte_problem(scenario, model=model)
    solver = problem.solve()
    q = float(np.mean(model.heat_flux(solver.state.u)[0]))
    T = solver.state.extra["T"].reshape(2, nx)[0]
    # interior tilt per unit length, excluding the wall-adjacent cells
    h = L / nx
    tilt = float((T[1] - T[-2]) / (L - 3 * h))
    return q, tilt, model


def test_ablation_angular_quadrature_converges(record_figure):
    """The flux moment approaches its continuum value monotonically."""
    rows, errors = [], []
    for ndirs in (4, 8, 16, 32, 64):
        m = half_space_flux_moment(ndirs)
        err = abs(m - 4.0) / 4.0
        rows.append([ndirs, m, 100 * err])
        errors.append(err)
    record_figure(
        "ABLATION-resolution-angular: half-space flux moment vs ordinates "
        "(continuum value 4)",
        format_series_table(["ndirs", "moment", "error %"], rows),
    )
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 1e-3


def test_ablation_simulated_flux_matches_quadrature(record_figure):
    """The simulated ballistic flux lands on its own quadrature's exact
    zero-scattering value (weak scattering + finite settling explain the
    few-percent residue)."""
    ndirs = 16
    q, _, model = run_slab(ndirs, nx=16)
    de = total_energy_density(model.bands, T1) - total_energy_density(model.bands, T2)
    q_quadrature = float(model.bands.vg[0]) * de / (4 * np.pi) * half_space_flux_moment(ndirs)
    record_figure(
        "ABLATION-resolution-flux: simulated vs quadrature-exact ballistic flux",
        f"simulated : {q:.4e} W/m^2\n"
        f"quadrature: {q_quadrature:.4e} W/m^2\n"
        f"ratio     : {q / q_quadrature:.4f}",
    )
    assert q == pytest.approx(q_quadrature, rel=0.05)


def test_ablation_spatial_refinement(record_figure):
    """The measured interior gradient converges to the physical q/k_bulk."""
    rows = []
    tilts = []
    q_ref = None
    for nx in (8, 16, 32):
        q, tilt, model = run_slab(ndirs=16, nx=nx)
        q_ref = q
        rows.append([nx, tilt * 1e-6, (q / bulk_conductivity(model, 100.0)) * 1e-6])
        tilts.append(tilt)
    record_figure(
        "ABLATION-resolution-spatial: interior dT/dx vs cell count "
        "(physical target q/k_bulk) [K/um]",
        format_series_table(["nx", "measured", "target"], rows),
    )
    # Cauchy-style convergence: successive refinements get closer together
    assert abs(tilts[2] - tilts[1]) < abs(tilts[1] - tilts[0])
    # and the converged tilt matches the physical gradient within 50 %
    model = BTEModel(bands=silicon_bands(1), directions=uniform_directions_2d(16))
    physical = q_ref / bulk_conductivity(model, 100.0)
    assert tilts[2] == pytest.approx(physical, rel=0.5)


def test_ablation_resolution_benchmark(benchmark):
    benchmark(lambda: run_slab(8, 8))
