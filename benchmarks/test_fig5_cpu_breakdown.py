"""FIG5 — execution-time breakdown of the band-parallel strategy (Fig. 5).

Paper: "the calculation of I dominates.  For one to ten processes it
accounts for about 97%, and even at 55 it takes about 73%" — with the
remainder shifting into the temperature update (whose Newton inversion runs
redundantly on every rank under band partitioning) and a small
communication share.
"""

import pytest

from repro.bte import build_bte_problem, hotspot_scenario
from repro.perfmodel import BTEWorkload
from repro.perfmodel.scaling import (
    PHASE_COMMUNICATION,
    PHASE_INTENSITY,
    PHASE_TEMPERATURE,
    band_parallel_times,
)

from .conftest import format_series_table

PROCS = [1, 2, 5, 10, 20, 40, 55]


@pytest.fixture(scope="module")
def breakdown():
    return band_parallel_times(BTEWorkload.paper_configuration(), PROCS)


def test_fig5_breakdown(breakdown, record_figure):
    rows = []
    for p in PROCS:
        fr = breakdown.breakdown_fractions(p)
        rows.append([
            p,
            100 * fr[PHASE_INTENSITY],
            100 * fr[PHASE_TEMPERATURE],
            100 * fr[PHASE_COMMUNICATION],
        ])
    table = format_series_table(
        ["procs", "intensity %", "temperature %", "comm %"], rows
    )
    record_figure("FIG5: band-parallel execution-time breakdown", table)

    # --- the two quoted data points ------------------------------------------
    assert breakdown.breakdown_fractions(1)[PHASE_INTENSITY] == pytest.approx(0.97, abs=0.02)
    assert breakdown.breakdown_fractions(55)[PHASE_INTENSITY] == pytest.approx(0.73, abs=0.05)
    # monotone shift toward the temperature update
    temps = [breakdown.breakdown_fractions(p)[PHASE_TEMPERATURE] for p in PROCS]
    assert all(a <= b + 1e-12 for a, b in zip(temps, temps[1:]))


def test_fig5_executed_run_breakdown_shape(record_figure):
    """The same qualitative shift appears in executed SPMD runs."""
    results = []
    for p in (1, 6):
        scenario = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=5,
                                    dt=1e-12, nsteps=4)
        problem, _ = build_bte_problem(scenario)
        if p > 1:
            problem.set_partitioning("bands", p, index="b")
            solver = problem.solve()
            fr = solver.state.spmd_result.phase_fractions()
            results.append((p, fr.get("solve for intensity", 0.0)))
        else:
            solver = problem.solve()
            t = solver.state.timers
            total = sum(s.total for s in t.stats.values())
            results.append((p, t.total("solve") / total))
    record_figure(
        "FIG5-executed: intensity share at 1 vs 6 ranks (reduced run)",
        "\n".join(f"p={p}: intensity {x * 100:.1f}%" for p, x in results),
    )
    # share drops when the redundant Newton stops scaling
    assert results[1][1] < results[0][1] + 0.02


def test_fig5_benchmark(benchmark):
    w = BTEWorkload.paper_configuration()
    benchmark(lambda: band_parallel_times(w, PROCS))
