"""FIG9 — all strategies + the reference Fortran code (paper Fig. 9).

Paper's observations, each asserted:

* "The sequential execution of our code takes roughly twice as long as the
  Fortran code";
* "The relatively poor scaling of the Fortran code is due to a slightly
  different parallelization of one part of the calculation, which becomes
  increasingly significant at higher process counts";
* "The best possible times were roughly equal between the 10 GPU run and
  320 CPU run" (we land within a small factor — see EXPERIMENTS.md);
* solution correctness: "Our solutions matched theirs" — checked against
  the hand-written reference solver.
"""

import numpy as np
import pytest

from repro.bte import ReferenceBTESolver, build_bte_problem, hotspot_scenario
from repro.perfmodel import strong_scaling_table

from .conftest import format_series_table


@pytest.fixture(scope="module")
def table():
    return strong_scaling_table()


def test_fig9_series(table, record_figure):
    procs = sorted({p for st in table.values() for p in st.procs})
    rows = []
    for p in procs:
        row = [p]
        for st in table.values():
            row.append(
                st.total[st.procs.index(p)] if p in st.procs else float("nan")
            )
        rows.append(row)
    out = format_series_table(["procs"] + [f"{k} [s]" for k in table], rows)
    record_figure("FIG9: all strategies + reference Fortran", out)

    bands, cells, gpu, fortran = (
        table["bands"], table["cells"], table["GPU"], table["Fortran"],
    )
    # Fortran ~2x faster serially
    assert bands.total[0] / fortran.total[0] == pytest.approx(2.0, rel=0.1)
    # Fortran's advantage erodes with p (poor scaling of its serial part)
    ratios = [
        bands.total[bands.procs.index(p)] / fortran.total[fortran.procs.index(p)]
        for p in (1, 10, 55)
    ]
    assert ratios[0] > ratios[1] > ratios[2]
    assert ratios[2] < 1.1  # roughly caught up by 55

    # 10-GPU vs 320-CPU "roughly equal" (same order of magnitude)
    t_gpu10 = gpu.total[gpu.procs.index(10)]
    t_cpu320 = cells.total[cells.procs.index(320)]
    assert 0.1 < t_cpu320 / t_gpu10 < 10.0


def test_fig9_solution_verification(record_figure):
    """'Our solutions matched theirs' — DSL-generated vs hand-written."""
    scenario = hotspot_scenario(nx=10, ny=10, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=15)
    problem, model = build_bte_problem(scenario)
    solver = problem.solve()
    ref = ReferenceBTESolver(scenario, model)
    ref.run()
    scale = np.abs(ref.intensity_dsl_layout()).max()
    err = np.abs(solver.solution() - ref.intensity_dsl_layout()).max() / scale
    record_figure(
        "FIG9-verification: generated vs hand-written reference solver",
        f"max relative intensity deviation over 15 steps: {err:.3e}\n"
        f"max temperature deviation: "
        f"{np.abs(solver.state.extra['T'] - ref.T).max():.3e} K",
    )
    assert err < 1e-12


def test_fig9_reference_solver_speed(benchmark):
    """Benchmark the 'Fortran' comparator's step at reduced size (the basis
    of its serial-speed advantage is the hand-tuned band loop)."""
    scenario = hotspot_scenario(nx=16, ny=16, ndirs=8, n_freq_bands=8,
                                dt=1e-12, nsteps=1)
    problem, model = build_bte_problem(scenario)
    ref = ReferenceBTESolver(scenario, model)
    benchmark(ref.step)
