"""Partitioners and halo layout construction."""

import numpy as np
import pytest

from repro.mesh.grid import structured_grid
from repro.mesh.partition import (
    build_partition_layout,
    partition_cells,
    partition_graph,
    partition_rcb,
)
from repro.util.errors import MeshError


@pytest.fixture
def mesh():
    return structured_grid((10, 8))


def check_partition_invariants(mesh, parts, nparts):
    assert parts.shape == (mesh.ncells,)
    assert parts.min() >= 0
    assert parts.max() == nparts - 1
    sizes = np.bincount(parts, minlength=nparts)
    assert sizes.min() >= 1
    # balance within a generous bound
    assert sizes.max() <= int(np.ceil(mesh.ncells / nparts * 1.5)) + 1


class TestRCB:
    @pytest.mark.parametrize("nparts", [1, 2, 3, 4, 7, 8])
    def test_invariants(self, mesh, nparts):
        parts = partition_rcb(mesh.cell_centroids, nparts)
        check_partition_invariants(mesh, parts, nparts)

    def test_perfect_balance_on_uniform_grid(self, mesh):
        parts = partition_rcb(mesh.cell_centroids, 4)
        assert np.bincount(parts).tolist() == [20, 20, 20, 20]

    def test_geometric_locality(self, mesh):
        # a 2-way RCB of a 10x8 grid cuts along x: parts separate in x
        parts = partition_rcb(mesh.cell_centroids, 2)
        x0 = mesh.cell_centroids[parts == 0, 0]
        x1 = mesh.cell_centroids[parts == 1, 0]
        assert x0.max() <= x1.min() or x1.max() <= x0.min()

    def test_errors(self, mesh):
        with pytest.raises(MeshError):
            partition_rcb(mesh.cell_centroids, 0)
        with pytest.raises(MeshError):
            partition_rcb(mesh.cell_centroids, mesh.ncells + 1)


class TestGraph:
    @pytest.mark.parametrize("nparts", [1, 2, 3, 5, 8])
    def test_invariants(self, mesh, nparts):
        parts = partition_graph(mesh, nparts)
        check_partition_invariants(mesh, parts, nparts)

    def test_cut_reasonable(self, mesh):
        # a 4-way cut of a 10x8 grid should stay well below the worst case
        parts = partition_graph(mesh, 4)
        layout = build_partition_layout(mesh, parts)
        assert layout.cut_face_count < mesh.nfaces / 3

    def test_refinement_reduces_or_keeps_cut(self, mesh):
        raw = partition_graph(mesh, 4, refine_passes=0)
        refined = partition_graph(mesh, 4, refine_passes=4)
        cut_raw = build_partition_layout(mesh, raw).cut_face_count
        cut_ref = build_partition_layout(mesh, refined).cut_face_count
        assert cut_ref <= cut_raw

    def test_dispatch(self, mesh):
        assert partition_cells(mesh, 3, method="rcb").max() == 2
        assert partition_cells(mesh, 3, method="graph").max() == 2
        with pytest.raises(MeshError):
            partition_cells(mesh, 3, method="metis")


class TestLayout:
    @pytest.mark.parametrize("method", ["rcb", "graph"])
    @pytest.mark.parametrize("nparts", [2, 3, 5])
    def test_owned_cells_partition_the_mesh(self, mesh, method, nparts):
        parts = partition_cells(mesh, nparts, method=method)
        layout = build_partition_layout(mesh, parts)
        all_owned = np.concatenate(layout.owned)
        assert sorted(all_owned.tolist()) == list(range(mesh.ncells))

    def test_ghosts_are_face_neighbors(self, mesh):
        parts = partition_cells(mesh, 4)
        layout = build_partition_layout(mesh, parts)
        adj = mesh.cell_neighbors()
        for p in range(4):
            owned = set(layout.owned[p].tolist())
            for g in layout.ghosts[p]:
                assert int(g) not in owned
                assert any(nb in owned for nb in adj[int(g)])

    def test_send_recv_symmetry(self, mesh):
        parts = partition_cells(mesh, 3)
        layout = build_partition_layout(mesh, parts)
        for p in range(3):
            for q, cells in layout.send_cells[p].items():
                assert np.array_equal(cells, layout.recv_cells[q][p])

    def test_sent_cells_are_owned(self, mesh):
        parts = partition_cells(mesh, 3)
        layout = build_partition_layout(mesh, parts)
        for p in range(3):
            owned = set(layout.owned[p].tolist())
            for cells in layout.send_cells[p].values():
                assert set(cells.tolist()) <= owned

    def test_localize_roundtrip(self, mesh):
        parts = partition_cells(mesh, 2)
        layout = build_partition_layout(mesh, parts)
        local = layout.localize(0, layout.owned[0][:5])
        assert local.tolist() == [0, 1, 2, 3, 4]

    def test_comm_volume(self, mesh):
        parts = partition_cells(mesh, 2)
        layout = build_partition_layout(mesh, parts)
        vol = layout.comm_volume_doubles(dofs_per_cell=10)
        assert vol == 10 * sum(
            len(c) for s in layout.send_cells for c in s.values()
        )

    def test_band_partition_figure3_claim(self, mesh):
        """Fig. 3: one partition -> no interface communication at all."""
        layout = build_partition_layout(mesh, np.zeros(mesh.ncells, dtype=int))
        assert layout.cut_face_count == 0
        assert layout.comm_volume_doubles() == 0

    def test_errors(self, mesh):
        with pytest.raises(MeshError):
            build_partition_layout(mesh, np.zeros(3, dtype=int))
        bad = np.zeros(mesh.ncells, dtype=int)
        bad[0] = -1
        with pytest.raises(MeshError):
            build_partition_layout(mesh, bad)
        # a part with no cells
        sparse = np.zeros(mesh.ncells, dtype=int)
        sparse[0] = 2  # part 1 empty
        with pytest.raises(MeshError):
            build_partition_layout(mesh, sparse)


class TestWeightedCounts:
    """Work-share arithmetic behind the proactive rebalancer."""

    def _wc(self, *a, **kw):
        from repro.mesh.partition import weighted_counts
        return weighted_counts(*a, **kw)

    @pytest.mark.parametrize("n", [5, 17, 64])
    @pytest.mark.parametrize("nparts", [1, 2, 3, 4, 5])
    def test_default_matches_array_split(self, n, nparts):
        """Unweighted splits must be bit-compatible with np.array_split —
        the pre-elastic partitioners used it directly."""
        expected = [len(c) for c in np.array_split(np.arange(n), nparts)]
        assert self._wc(n, nparts) == expected

    def test_counts_sum_and_follow_weights(self):
        counts = self._wc(64, 4, weights=[1.0, 3.0, 3.0, 9.0])
        assert sum(counts) == 64
        assert counts[0] == min(counts) and counts[3] == max(counts)

    def test_every_part_gets_at_least_one(self):
        counts = self._wc(4, 3, weights=[1e-9, 1.0, 1e-9])
        assert sum(counts) == 4
        assert min(counts) >= 1

    def test_equal_weights_reduce_to_default(self):
        assert self._wc(17, 3, weights=[2.0, 2.0, 2.0]) == self._wc(17, 3)

    def test_invalid_weights_rejected(self):
        from repro.util.errors import MeshError
        with pytest.raises(MeshError):
            self._wc(10, 2, weights=[1.0])  # wrong length
        with pytest.raises(MeshError):
            self._wc(10, 2, weights=[-1.0, 1.0])
        with pytest.raises(MeshError):
            self._wc(10, 2, weights=[np.nan, 1.0])


class TestWeightedPartitioners:
    def test_rcb_respects_weights(self):
        mesh = structured_grid((10, 8))
        from repro.mesh.partition import partition_rcb
        parts = partition_rcb(mesh.cell_centroids, 2, weights=[1.0, 3.0])
        sizes = np.bincount(parts, minlength=2)
        assert sizes.sum() == mesh.ncells
        assert sizes[1] > sizes[0]

    def test_graph_respects_weights_and_stays_contiguous(self):
        mesh = structured_grid((10, 8))
        parts = partition_cells(mesh, 4, weights=[1.0, 1.0, 1.0, 5.0])
        sizes = np.bincount(parts, minlength=4)
        assert sizes.sum() == mesh.ncells
        assert sizes[3] == sizes.max()
        # still a valid layout (every part non-empty, halos constructible)
        build_partition_layout(mesh, parts)

    def test_unweighted_calls_are_bit_identical_to_before(self):
        """weights=None must not perturb the existing partitions."""
        mesh = structured_grid((9, 7))
        a = partition_cells(mesh, 3)
        b = partition_cells(mesh, 3, weights=None)
        assert np.array_equal(a, b)
