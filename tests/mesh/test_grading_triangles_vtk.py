"""Graded grids, triangulated meshes, VTK export."""

import io

import numpy as np
import pytest

from repro.mesh.grid import structured_grid, triangulated_grid
from repro.mesh.vtk_io import write_vtk
from repro.util.errors import MeshError


class TestGradedGrids:
    def test_quadratic_grading_clusters_cells(self):
        mesh = structured_grid((10,), [(0.0, 1.0)], grading=[lambda s: s**2])
        widths = mesh.cell_volumes
        assert widths[0] < widths[-1]
        assert np.all(np.diff(widths) > 0)  # monotone stretch
        assert widths.sum() == pytest.approx(1.0)

    def test_2d_mixed_grading(self):
        mesh = structured_grid(
            (8, 8), [(0.0, 2.0), (0.0, 1.0)],
            grading=[None, lambda s: s**1.5],
        )
        mesh.validate()
        assert mesh.cell_volumes.sum() == pytest.approx(2.0)

    def test_grading_validation(self):
        with pytest.raises(MeshError, match="0->0 and 1->1"):
            structured_grid((4,), grading=[lambda s: s + 0.1])
        with pytest.raises(MeshError, match="strictly increasing"):
            structured_grid((4,), grading=[lambda s: np.where(s < 0.5, 0.0, s)])
        with pytest.raises(MeshError, match="grading has"):
            structured_grid((4, 4), grading=[None])

    def test_diffusion_on_graded_grid_stays_second_order_accurate(self):
        """The two-point flux uses true centroid distances, so a smoothly
        graded grid keeps the steady linear profile exact."""
        from repro.dsl.problem import Problem
        from repro.fvm.boundary import BCKind

        p = Problem("graded-heat")
        p.set_domain(1)
        p.set_steps(2e-5, 70000)  # ~15 diffusive time constants: fully steady
        p.set_mesh(structured_grid((12,), grading=[lambda s: s**2]))
        p.add_variable("u")
        p.add_coefficient("D", 1.0)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
        p.add_boundary("u", 2, BCKind.DIRICHLET, 1.0)
        p.set_initial("u", 0.5)
        p.set_conservation_form("u", "surface(diffuse(D, u))")
        solver = p.solve()
        x = solver.state.mesh.cell_centroids[:, 0]
        assert np.abs(solver.solution()[0] - x).max() < 1e-4


class TestTriangulatedGrid:
    def test_counts_and_validity(self):
        mesh = triangulated_grid((6, 4))
        assert mesh.ncells == 2 * 6 * 4
        mesh.validate()
        assert mesh.cell_volumes.sum() == pytest.approx(1.0)

    def test_boundary_regions_match_quad_convention(self):
        quad = structured_grid((5, 3))
        tri = triangulated_grid((5, 3))
        assert tri.boundary_regions() == quad.boundary_regions()
        for r in quad.boundary_regions():
            assert len(tri.boundary_faces(r)) == len(quad.boundary_faces(r))

    def test_rejects_non_2d(self):
        with pytest.raises(MeshError):
            triangulated_grid((4,))

    def test_advection_runs_on_triangles(self):
        from repro.dsl.problem import Problem
        from repro.fvm.boundary import BCKind

        p = Problem("tri-advect")
        p.set_domain(2)
        p.set_steps(0.2 / 16, 200)
        p.set_mesh(triangulated_grid((16, 8)))
        p.add_variable("u")
        p.add_coefficient("bx", 1.0)
        p.add_coefficient("by", 0.0)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 1.0)
        for r in (2, 3, 4):
            p.add_boundary("u", r, BCKind.NEUMANN0)
        p.set_initial("u", 0.0)
        p.set_conservation_form("u", "-surface(upwind([bx;by], u))")
        solver = p.solve()
        sol = solver.solution()
        assert sol.min() >= -1e-12 and sol.max() <= 1 + 1e-12
        assert sol.mean() > 0.9  # filled by the crossing time

    def test_bte_hotspot_runs_on_triangles(self):
        """The appendix deck works on an unstructured mesh unchanged."""
        from repro.bte.problem import build_bte_problem, hotspot_scenario

        scenario = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4,
                                    dt=1e-12, nsteps=5)
        scenario.sigma = 150e-6
        problem, _ = build_bte_problem(scenario)
        problem.mesh = None
        problem.set_mesh(triangulated_grid(
            (8, 8), [(0.0, scenario.lx), (0.0, scenario.ly)]
        ))
        solver = problem.solve()
        T = solver.state.extra["T"]
        assert T.shape == (128,)
        assert T.max() >= 300.0


class TestVTKExport:
    def test_quad_mesh_with_fields(self):
        mesh = structured_grid((4, 3))
        buf = io.StringIO()
        write_vtk(mesh, buf, {"temperature": np.arange(12.0),
                              "partition id": np.zeros(12)})
        text = buf.getvalue()
        assert "DATASET UNSTRUCTURED_GRID" in text
        assert f"POINTS {mesh.nnodes} double" in text
        assert "CELL_TYPES 12" in text
        types_block = text.split("CELL_TYPES 12\n")[1].splitlines()[:12]
        assert types_block == ["9"] * 12  # VTK_QUAD per cell
        assert "SCALARS temperature double 1" in text
        assert "SCALARS partition_id double 1" in text

    def test_triangle_and_line_and_hex_types(self):
        tri = triangulated_grid((2, 2))
        buf = io.StringIO()
        write_vtk(tri, buf)
        assert "\n5\n" in buf.getvalue()  # VTK_TRIANGLE
        line = structured_grid((3,))
        buf = io.StringIO()
        write_vtk(line, buf)
        assert "\n3\n" in buf.getvalue()  # VTK_LINE
        hexm = structured_grid((2, 2, 2))
        buf = io.StringIO()
        write_vtk(hexm, buf)
        assert "\n12\n" in buf.getvalue()  # VTK_HEXAHEDRON

    def test_field_shape_checked(self):
        mesh = structured_grid((3, 3))
        with pytest.raises(MeshError):
            write_vtk(mesh, io.StringIO(), {"bad": np.zeros(5)})

    def test_writes_to_path(self, tmp_path):
        mesh = structured_grid((2, 2))
        path = tmp_path / "out.vtk"
        write_vtk(mesh, path, {"T": np.full(4, 300.0)})
        assert path.read_text().startswith("# vtk DataFile")
