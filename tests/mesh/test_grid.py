"""Structured grid generator."""

import numpy as np
import pytest

from repro.mesh.grid import interval_mesh, structured_grid
from repro.util.errors import MeshError


class TestShapes:
    def test_2d_counts(self):
        mesh = structured_grid((8, 6))
        assert mesh.ncells == 48
        assert mesh.nnodes == 9 * 7
        # nfaces = vertical + horizontal edges
        assert mesh.nfaces == 9 * 6 + 8 * 7

    def test_1d(self):
        mesh = structured_grid((10,), [(0.0, 2.0)])
        assert mesh.ncells == 10
        assert np.allclose(mesh.cell_volumes, 0.2)

    def test_3d(self):
        mesh = structured_grid((3, 4, 5))
        assert mesh.ncells == 60
        assert mesh.cell_volumes.sum() == pytest.approx(1.0)

    def test_interval_mesh_wrapper(self):
        mesh = interval_mesh(4, 1.0, 3.0)
        assert mesh.ncells == 4
        assert mesh.cell_volumes.sum() == pytest.approx(2.0)


class TestGeometry:
    def test_total_volume_matches_box(self):
        mesh = structured_grid((12, 5), [(0.0, 3.0), (-1.0, 1.0)])
        assert mesh.cell_volumes.sum() == pytest.approx(6.0)

    def test_all_validate(self):
        for shape, bounds in [
            ((5,), [(0, 1)]),
            ((4, 4), [(0, 1), (0, 2)]),
            ((2, 3, 4), [(0, 1), (0, 1), (0, 1)]),
        ]:
            structured_grid(shape, bounds).validate()

    def test_paper_mesh_dimensions(self):
        # the paper's 120x120 grid over 525um x 525um
        mesh = structured_grid((120, 120), [(0.0, 525e-6), (0.0, 525e-6)])
        assert mesh.ncells == 14400
        h = 525e-6 / 120
        assert np.allclose(mesh.cell_volumes, h * h)

    def test_metadata(self):
        mesh = structured_grid((4, 5))
        assert mesh.metadata["structured_shape"] == (4, 5)


class TestRegions:
    def test_default_2d_regions(self):
        mesh = structured_grid((6, 4), [(0.0, 3.0), (0.0, 2.0)])
        assert mesh.boundary_regions() == [1, 2, 3, 4]
        # region 1 = x-min wall: 4 faces (ny)
        assert len(mesh.boundary_faces(1)) == 4
        assert len(mesh.boundary_faces(3)) == 6  # y-min wall: nx faces
        assert np.allclose(mesh.face_centers[mesh.boundary_faces(1), 0], 0.0)
        assert np.allclose(mesh.face_centers[mesh.boundary_faces(4), 1], 2.0)

    def test_default_3d_regions(self):
        mesh = structured_grid((2, 2, 2))
        assert mesh.boundary_regions() == [1, 2, 3, 4, 5, 6]
        for r in range(1, 7):
            assert len(mesh.boundary_faces(r)) == 4

    def test_custom_marker(self):
        mesh = structured_grid(
            (4, 4), boundary_marker=lambda c, n: 7
        )
        assert mesh.boundary_regions() == [7]


class TestErrors:
    @pytest.mark.parametrize(
        "shape,bounds",
        [
            ((0,), None),
            ((4, -1), None),
            ((2, 2), [(0.0, 1.0)]),
            ((2, 2), [(0.0, 1.0), (1.0, 0.0)]),
            ((1, 1, 1, 1), None),
        ],
    )
    def test_rejects(self, shape, bounds):
        with pytest.raises(MeshError):
            structured_grid(shape, bounds)
