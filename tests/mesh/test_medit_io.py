"""MEDIT (.mesh) I/O — the paper's second import format."""

import io

import numpy as np
import pytest

from repro.mesh.grid import structured_grid, triangulated_grid
from repro.mesh.medit_io import read_medit, write_medit
from repro.util.errors import MeshError

MINIMAL = """MeshVersionFormatted 2
Dimension 2
Vertices
4
0 0 0
1 0 0
1 1 0
0 1 0
Edges
4
1 2 10
2 3 11
3 4 12
4 1 13
Triangles
2
1 2 3 0
1 3 4 0
End
"""


class TestRead:
    def test_minimal(self):
        mesh = read_medit(io.StringIO(MINIMAL))
        assert mesh.dim == 2
        assert mesh.ncells == 2
        assert mesh.boundary_regions() == [10, 11, 12, 13]
        mesh.validate()

    def test_refs_map_to_regions(self):
        mesh = read_medit(io.StringIO(MINIMAL))
        bottom = mesh.boundary_faces(10)
        assert np.allclose(mesh.face_centers[bottom[0]], [0.5, 0.0])

    def test_missing_vertices_rejected(self):
        with pytest.raises(MeshError):
            read_medit(io.StringIO("MeshVersionFormatted 2\nDimension 2\nEnd\n"))

    def test_unknown_section_rejected(self):
        bad = MINIMAL.replace("Triangles", "Tetrahedra")
        with pytest.raises(MeshError):
            read_medit(io.StringIO(bad))

    def test_truncated_file(self):
        with pytest.raises(MeshError):
            read_medit(io.StringIO("MeshVersionFormatted 2\nDimension"))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "mesh",
        [
            structured_grid((5, 4), [(0.0, 2.0), (0.0, 1.0)]),
            triangulated_grid((4, 3)),
            structured_grid((6,)),
        ],
        ids=["quads", "triangles", "1d"],
    )
    def test_roundtrip(self, mesh):
        buf = io.StringIO()
        write_medit(mesh, buf)
        buf.seek(0)
        back = read_medit(buf)
        assert back.ncells == mesh.ncells
        assert back.dim == mesh.dim
        assert back.cell_volumes.sum() == pytest.approx(mesh.cell_volumes.sum())
        back.validate()

    def test_2d_regions_survive(self):
        mesh = structured_grid((4, 3))
        buf = io.StringIO()
        write_medit(mesh, buf)
        buf.seek(0)
        back = read_medit(buf)
        assert back.boundary_regions() == mesh.boundary_regions()
        for r in mesh.boundary_regions():
            assert len(back.boundary_faces(r)) == len(mesh.boundary_faces(r))

    def test_3d_rejected_by_writer(self):
        with pytest.raises(MeshError):
            write_medit(structured_grid((2, 2, 2)), io.StringIO())


class TestDSLDispatch:
    def test_mesh_command_dispatches_by_suffix(self, tmp_path):
        import repro.dsl as finch

        mesh = structured_grid((3, 3))
        path = tmp_path / "square.mesh"
        write_medit(mesh, path)
        finch.finalize()
        finch.init_problem("medit-import")
        finch.domain(2)
        loaded = finch.mesh(str(path))
        assert loaded.ncells == 9
        finch.finalize()
