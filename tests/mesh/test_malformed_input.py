"""Malformed mesh input must raise MeshError with its format code — never a
bare IndexError/ValueError escaping the parser internals."""

import io

import numpy as np
import pytest

from repro.mesh.gmsh_io import read_gmsh, write_gmsh
from repro.mesh.grid import structured_grid
from repro.mesh.medit_io import read_medit, write_medit
from repro.mesh.vtk_io import read_vtk, write_vtk
from repro.util.errors import MeshError


def reread(reader, text, name="bad"):
    return reader(io.StringIO(text), name=name)


class TestGmsh:
    def test_truncated_nodes_section(self):
        text = "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n$Nodes\n10\n1 0 0 0\n"
        with pytest.raises(MeshError) as ei:
            reread(read_gmsh, text)
        assert ei.value.code == "RPR501"

    def test_garbage_tokens(self):
        text = ("$MeshFormat\n2.2 0 8\n$EndMeshFormat\n"
                "$Nodes\n1\n1 zero zero zero\n$EndNodes\n")
        with pytest.raises(MeshError) as ei:
            reread(read_gmsh, text)
        assert ei.value.code == "RPR501"

    def test_missing_section(self):
        with pytest.raises(MeshError) as ei:
            reread(read_gmsh, "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n")
        assert ei.value.code == "RPR501"

    def test_dangling_node_reference(self):
        text = ("$MeshFormat\n2.2 0 8\n$EndMeshFormat\n"
                "$Nodes\n3\n1 0 0 0\n2 1 0 0\n3 0 1 0\n$EndNodes\n"
                "$Elements\n1\n1 2 1 0 1 2 99\n$EndElements\n")
        with pytest.raises(MeshError) as ei:
            reread(read_gmsh, text)
        assert ei.value.code == "RPR501"

    def test_empty_file(self):
        with pytest.raises(MeshError) as ei:
            reread(read_gmsh, "")
        assert ei.value.code == "RPR501"

    def test_round_trip_still_works(self):
        mesh = structured_grid((4, 4))
        buf = io.StringIO()
        write_gmsh(mesh, buf)
        back = reread(read_gmsh, buf.getvalue(), name="rt")
        assert back.ncells == mesh.ncells
        assert back.nnodes == mesh.nnodes


class TestMedit:
    def test_truncated_vertices(self):
        text = "MeshVersionFormatted 2\nDimension 2\nVertices\n10\n0 0 0\n"
        with pytest.raises(MeshError) as ei:
            reread(read_medit, text)
        assert ei.value.code == "RPR502"

    def test_garbage_count(self):
        text = "MeshVersionFormatted 2\nDimension 2\nVertices\nmany\n"
        with pytest.raises(MeshError) as ei:
            reread(read_medit, text)
        assert ei.value.code == "RPR502"

    def test_unknown_section(self):
        text = "MeshVersionFormatted 2\nDimension 2\nTetrahedra\n0\nEnd\n"
        with pytest.raises(MeshError) as ei:
            reread(read_medit, text)
        assert ei.value.code == "RPR502"

    def test_empty_file(self):
        with pytest.raises(MeshError) as ei:
            reread(read_medit, "")
        assert ei.value.code == "RPR502"

    def test_round_trip_still_works(self):
        mesh = structured_grid((3, 5))
        buf = io.StringIO()
        write_medit(mesh, buf)
        back = reread(read_medit, buf.getvalue(), name="rt")
        assert back.ncells == mesh.ncells


class TestVtk:
    def test_not_a_vtk_file(self):
        with pytest.raises(MeshError) as ei:
            reread(read_vtk, "hello\nworld\n")
        assert ei.value.code == "RPR503"

    def test_truncated_points(self):
        text = ("# vtk DataFile Version 3.0\nt\nASCII\n"
                "DATASET UNSTRUCTURED_GRID\nPOINTS 9 double\n0 0 0\n")
        with pytest.raises(MeshError) as ei:
            reread(read_vtk, text)
        assert ei.value.code == "RPR503"

    def test_garbage_coordinates(self):
        text = ("# vtk DataFile Version 3.0\nt\nASCII\n"
                "DATASET UNSTRUCTURED_GRID\nPOINTS 1 double\nx y z\n")
        with pytest.raises(MeshError) as ei:
            reread(read_vtk, text)
        assert ei.value.code == "RPR503"

    def test_cell_node_out_of_range(self):
        text = ("# vtk DataFile Version 3.0\nt\nASCII\n"
                "DATASET UNSTRUCTURED_GRID\n"
                "POINTS 3 double\n0 0 0\n1 0 0\n0 1 0\n"
                "CELLS 1 4\n3 0 1 99\n"
                "CELL_TYPES 1\n5\n")
        with pytest.raises(MeshError) as ei:
            reread(read_vtk, text)
        assert ei.value.code == "RPR503"

    def test_unknown_cell_type(self):
        text = ("# vtk DataFile Version 3.0\nt\nASCII\n"
                "DATASET UNSTRUCTURED_GRID\n"
                "POINTS 3 double\n0 0 0\n1 0 0\n0 1 0\n"
                "CELLS 1 4\n3 0 1 2\n"
                "CELL_TYPES 1\n42\n")
        with pytest.raises(MeshError) as ei:
            reread(read_vtk, text)
        assert ei.value.code == "RPR503"

    def test_binary_dialect_rejected(self):
        text = ("# vtk DataFile Version 3.0\nt\nBINARY\n"
                "DATASET UNSTRUCTURED_GRID\n")
        with pytest.raises(MeshError) as ei:
            reread(read_vtk, text)
        assert ei.value.code == "RPR503"

    def test_round_trip_still_works(self):
        mesh = structured_grid((4, 4))
        buf = io.StringIO()
        write_vtk(mesh, buf, cell_data={"T": np.arange(mesh.ncells, dtype=float)})
        back = reread(read_vtk, buf.getvalue(), name="rt")
        assert back.ncells == mesh.ncells
        assert back.dim == 2
