"""Polygon/brick geometry primitives."""

import numpy as np
import pytest

from repro.mesh.geometry import (
    brick_volume,
    cell_closure_residual,
    edge_outward_normal,
    polygon_area,
    polygon_centroid,
)
from repro.util.errors import MeshError

SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestPolygon:
    def test_square_area(self):
        assert polygon_area(SQUARE) == pytest.approx(1.0)

    def test_cw_is_negative(self):
        assert polygon_area(SQUARE[::-1]) == pytest.approx(-1.0)

    def test_triangle_area(self):
        tri = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        assert polygon_area(tri) == pytest.approx(2.0)

    def test_centroid_of_square(self):
        assert np.allclose(polygon_centroid(SQUARE), [0.5, 0.5])

    def test_centroid_of_skewed_quad(self):
        quad = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 1.0], [0.0, 2.0]])
        c = polygon_centroid(quad)
        # must lie inside the polygon
        assert 0 < c[0] < 2 and 0 < c[1] < 2

    def test_degenerate_polygon_raises(self):
        line = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        with pytest.raises(MeshError):
            polygon_centroid(line)


class TestEdges:
    def test_outward_normal_ccw(self):
        # bottom edge of a CCW square: outward is -y
        n, length = edge_outward_normal(np.array([0.0, 0.0]), np.array([1.0, 0.0]))
        assert np.allclose(n, [0.0, -1.0])
        assert length == pytest.approx(1.0)

    def test_right_edge(self):
        n, _ = edge_outward_normal(np.array([1.0, 0.0]), np.array([1.0, 1.0]))
        assert np.allclose(n, [1.0, 0.0])

    def test_zero_length_raises(self):
        with pytest.raises(MeshError):
            edge_outward_normal(np.zeros(2), np.zeros(2))


class TestBrick:
    def test_volume(self):
        assert brick_volume(np.zeros(3), np.array([2.0, 3.0, 4.0])) == pytest.approx(24.0)

    def test_degenerate_raises(self):
        with pytest.raises(MeshError):
            brick_volume(np.zeros(3), np.array([1.0, 0.0, 1.0]))


class TestClosure:
    def test_closed_square_cell(self):
        normals = np.array([[0, -1], [1, 0], [0, 1], [-1, 0]], dtype=float)
        areas = np.ones(4)
        assert cell_closure_residual(normals, areas) == pytest.approx(0.0)

    def test_open_cell_nonzero(self):
        normals = np.array([[0, -1], [1, 0], [0, 1]], dtype=float)
        areas = np.ones(3)
        assert cell_closure_residual(normals, areas) > 0.5
