"""Gmsh 2.2 ASCII I/O."""

import io

import numpy as np
import pytest

from repro.mesh.gmsh_io import read_gmsh, write_gmsh
from repro.mesh.grid import structured_grid
from repro.util.errors import MeshError

MINIMAL_MSH = """$MeshFormat
2.2 0 8
$EndMeshFormat
$Nodes
4
1 0 0 0
2 1 0 0
3 1 1 0
4 0 1 0
$EndNodes
$Elements
6
1 1 2 10 0 1 2
2 1 2 11 0 2 3
3 1 2 12 0 3 4
4 1 2 13 0 4 1
5 2 2 0 0 1 2 3
6 2 2 0 0 1 3 4
$EndElements
"""


class TestRead:
    def test_minimal_triangle_mesh(self):
        mesh = read_gmsh(io.StringIO(MINIMAL_MSH))
        assert mesh.dim == 2
        assert mesh.ncells == 2
        assert mesh.boundary_regions() == [10, 11, 12, 13]
        mesh.validate()

    def test_physical_tags_map_to_regions(self):
        mesh = read_gmsh(io.StringIO(MINIMAL_MSH))
        bottom = mesh.boundary_faces(10)
        assert len(bottom) == 1
        assert np.allclose(mesh.face_centers[bottom[0]], [0.5, 0.0])

    def test_rejects_wrong_version(self):
        bad = MINIMAL_MSH.replace("2.2 0 8", "4.1 0 8")
        with pytest.raises(MeshError):
            read_gmsh(io.StringIO(bad))

    def test_rejects_unknown_element_type(self):
        bad = MINIMAL_MSH.replace("5 2 2 0 0 1 2 3", "5 99 2 0 0 1 2 3")
        with pytest.raises(MeshError):
            read_gmsh(io.StringIO(bad))

    def test_missing_section(self):
        with pytest.raises(MeshError):
            read_gmsh(io.StringIO("$MeshFormat\n2.2 0 8\n$EndMeshFormat\n"))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "shape,bounds",
        [
            ((5, 4), [(0.0, 2.0), (0.0, 1.0)]),
            ((6,), [(0.0, 1.0)]),
            ((2, 2, 2), [(0.0, 1.0)] * 3),
        ],
    )
    def test_grid_roundtrip(self, shape, bounds):
        mesh = structured_grid(shape, bounds)
        buf = io.StringIO()
        write_gmsh(mesh, buf)
        buf.seek(0)
        back = read_gmsh(buf)
        assert back.ncells == mesh.ncells
        assert back.dim == mesh.dim
        assert back.cell_volumes.sum() == pytest.approx(mesh.cell_volumes.sum())
        assert sorted(back.boundary_regions()) == sorted(mesh.boundary_regions())
        back.validate()

    def test_region_face_counts_survive(self):
        mesh = structured_grid((4, 3))
        buf = io.StringIO()
        write_gmsh(mesh, buf)
        buf.seek(0)
        back = read_gmsh(buf)
        for r in mesh.boundary_regions():
            assert len(back.boundary_faces(r)) == len(mesh.boundary_faces(r))

    def test_file_paths(self, tmp_path):
        mesh = structured_grid((3, 3))
        path = tmp_path / "grid.msh"
        write_gmsh(mesh, path)
        back = read_gmsh(path)
        assert back.ncells == 9
        assert back.name == "grid"
