"""Property-based mesh invariants over random structured grids."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.grid import structured_grid
from repro.mesh.partition import build_partition_layout, partition_cells

shapes_2d = st.tuples(
    st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=9)
)
bounds_2d = st.tuples(
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=10.0),
)


@given(shape=shapes_2d, extents=bounds_2d)
@settings(max_examples=40, deadline=None)
def test_grid_volume_sums_to_box(shape, extents):
    mesh = structured_grid(shape, [(0.0, extents[0]), (0.0, extents[1])])
    assert np.isclose(mesh.cell_volumes.sum(), extents[0] * extents[1], rtol=1e-12)


@given(shape=shapes_2d)
@settings(max_examples=40, deadline=None)
def test_grid_closure_and_validation(shape):
    mesh = structured_grid(shape)
    mesh.validate()  # includes per-cell closure (divergence theorem)


@given(shape=shapes_2d)
@settings(max_examples=40, deadline=None)
def test_boundary_face_area_equals_perimeter(shape):
    mesh = structured_grid(shape, [(0.0, 2.0), (0.0, 3.0)])
    per = mesh.face_areas[mesh.boundary_faces()].sum()
    assert np.isclose(per, 2 * (2.0 + 3.0))


@given(shape=shapes_2d)
@settings(max_examples=40, deadline=None)
def test_euler_formula_for_quad_grids(shape):
    nx, ny = shape
    mesh = structured_grid(shape)
    # planar quad grid: F(cells) - E(faces) + V(nodes) == 1
    assert mesh.ncells - mesh.nfaces + mesh.nnodes == 1


@given(
    shape=st.tuples(
        st.integers(min_value=3, max_value=9), st.integers(min_value=3, max_value=9)
    ),
    nparts=st.integers(min_value=1, max_value=5),
    method=st.sampled_from(["rcb", "graph"]),
)
@settings(max_examples=30, deadline=None)
def test_partition_layout_invariants(shape, nparts, method):
    mesh = structured_grid(shape)
    if nparts > mesh.ncells:
        return
    parts = partition_cells(mesh, nparts, method=method)
    layout = build_partition_layout(mesh, parts)
    # owned sets tile the mesh
    all_owned = np.concatenate(layout.owned)
    assert sorted(all_owned.tolist()) == list(range(mesh.ncells))
    # every sent cell is owned by the sender and a ghost of the receiver
    for p in range(layout.nparts):
        for q, cells in layout.send_cells[p].items():
            assert set(cells.tolist()) <= set(layout.owned[p].tolist())
            assert set(cells.tolist()) <= set(layout.ghosts[q].tolist())
