"""Mesh construction: connectivity, geometry, validation, error paths."""

import numpy as np
import pytest

from repro.mesh.mesh import build_mesh
from repro.util.errors import MeshError


def two_quads():
    """Two unit quads sharing an edge."""
    nodes = np.array(
        [[0, 0], [1, 0], [2, 0], [0, 1], [1, 1], [2, 1]], dtype=float
    )
    cells = [[0, 1, 4, 3], [1, 2, 5, 4]]
    return nodes, cells


class TestBuild2D:
    def test_counts(self):
        mesh = build_mesh(*two_quads())
        assert mesh.ncells == 2
        assert mesh.nfaces == 7  # 8 edges, one shared

    def test_shared_face_connectivity(self):
        mesh = build_mesh(*two_quads())
        interior = mesh.interior_faces()
        assert len(interior) == 1
        owner, neigh = mesh.face_cells[interior[0]]
        assert {int(owner), int(neigh)} == {0, 1}

    def test_volumes_and_centroids(self):
        mesh = build_mesh(*two_quads())
        assert np.allclose(mesh.cell_volumes, 1.0)
        assert np.allclose(mesh.cell_centroids[0], [0.5, 0.5])
        assert np.allclose(mesh.cell_centroids[1], [1.5, 0.5])

    def test_cw_cells_are_fixed(self):
        nodes, cells = two_quads()
        cells[0] = cells[0][::-1]  # clockwise input
        mesh = build_mesh(nodes, cells)
        assert np.all(mesh.cell_volumes > 0)
        mesh.validate()

    def test_normals_unit_and_outward(self):
        mesh = build_mesh(*two_quads())
        norms = np.linalg.norm(mesh.face_normals, axis=1)
        assert np.allclose(norms, 1.0)
        owners = mesh.face_cells[:, 0]
        outward = np.einsum(
            "fd,fd->f",
            mesh.face_normals,
            mesh.face_centers - mesh.cell_centroids[owners],
        )
        assert np.all(outward > 0)

    def test_boundary_marker_applied(self):
        def marker(center, normal):
            return 1 if normal[0] < -0.5 else 2

        mesh = build_mesh(*two_quads(), boundary_marker=marker)
        left = mesh.boundary_faces(1)
        assert len(left) == 1
        assert mesh.face_centers[left[0], 0] == pytest.approx(0.0)

    def test_triangles(self):
        nodes = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=float)
        cells = [[0, 1, 2], [1, 3, 2]]
        mesh = build_mesh(nodes, cells)
        assert mesh.ncells == 2
        assert np.allclose(mesh.cell_volumes, 0.5)
        mesh.validate()


class TestBuild1D3D:
    def test_1d_chain(self):
        nodes = np.array([0.0, 0.5, 1.5, 3.0])[:, None]
        cells = [[0, 1], [1, 2], [2, 3]]
        mesh = build_mesh(nodes, cells)
        assert mesh.ncells == 3
        assert np.allclose(mesh.cell_volumes, [0.5, 1.0, 1.5])
        assert len(mesh.interior_faces()) == 2
        mesh.validate()

    def test_3d_brick_pair(self):
        nodes = []
        for z in (0.0, 1.0):
            for y in (0.0, 1.0):
                for x in (0.0, 1.0, 2.0):
                    nodes.append([x, y, z])
        nodes = np.array(nodes)

        def nid(i, j, k):
            return k * 6 + j * 3 + i

        cells = [
            [nid(0, 0, 0), nid(1, 0, 0), nid(1, 1, 0), nid(0, 1, 0),
             nid(0, 0, 1), nid(1, 0, 1), nid(1, 1, 1), nid(0, 1, 1)],
            [nid(1, 0, 0), nid(2, 0, 0), nid(2, 1, 0), nid(1, 1, 0),
             nid(1, 0, 1), nid(2, 0, 1), nid(2, 1, 1), nid(1, 1, 1)],
        ]
        mesh = build_mesh(nodes, cells)
        assert mesh.ncells == 2
        assert np.allclose(mesh.cell_volumes, 1.0)
        assert len(mesh.interior_faces()) == 1
        mesh.validate()


class TestConnectivityQueries:
    def test_cell_neighbors(self):
        mesh = build_mesh(*two_quads())
        adj = mesh.cell_neighbors()
        assert adj[0] == [1]
        assert adj[1] == [0]

    def test_cell_faces_and_signs(self):
        mesh = build_mesh(*two_quads())
        for c in range(mesh.ncells):
            assert len(mesh.cell_faces(c)) == 4

    def test_to_networkx(self):
        g = build_mesh(*two_quads()).to_networkx()
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 1

    def test_boundary_regions_listing(self):
        mesh = build_mesh(*two_quads())
        assert mesh.boundary_regions() == [1]  # default marker


class TestErrors:
    def test_empty_mesh(self):
        with pytest.raises(MeshError):
            build_mesh(np.zeros((2, 2)), [])

    def test_face_shared_three_times(self):
        nodes = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [0, 2]], dtype=float)
        cells = [[0, 1, 2, 3], [0, 1, 4, 2][:3], [0, 1, 5][:3]]
        # craft three cells sharing edge (0,1)
        cells = [[0, 1, 2, 3], [0, 1, 4], [1, 0, 5]]
        with pytest.raises(MeshError):
            build_mesh(nodes, cells)

    def test_bad_dimension(self):
        with pytest.raises(MeshError):
            build_mesh(np.zeros((3, 4)), [[0, 1, 2]], dim=4)

    def test_1d_cell_wrong_node_count(self):
        with pytest.raises(MeshError):
            build_mesh(np.array([[0.0], [1.0], [2.0]]), [[0, 1, 2]])

    def test_marker_returning_nonpositive_region(self):
        with pytest.raises(MeshError):
            build_mesh(*two_quads(), boundary_marker=lambda c, n: 0)
