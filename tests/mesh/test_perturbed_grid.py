"""Perturbed (non-orthogonal) quad meshes: the FV machinery off the tensor
grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import perturbed_grid, structured_grid
from repro.util.errors import MeshError


class TestGeneration:
    def test_valid_mesh(self):
        mesh = perturbed_grid((8, 6), amplitude=0.3, seed=3)
        mesh.validate()
        assert mesh.ncells == 48
        assert mesh.cell_volumes.sum() == pytest.approx(1.0)

    def test_boundary_nodes_fixed(self):
        base = structured_grid((6, 6))
        pert = perturbed_grid((6, 6), amplitude=0.4, seed=1)
        on_bdry = (
            (np.abs(base.nodes[:, 0]) < 1e-12)
            | (np.abs(base.nodes[:, 0] - 1) < 1e-12)
            | (np.abs(base.nodes[:, 1]) < 1e-12)
            | (np.abs(base.nodes[:, 1] - 1) < 1e-12)
        )
        assert np.allclose(pert.nodes[on_bdry], base.nodes[on_bdry])
        assert not np.allclose(pert.nodes[~on_bdry], base.nodes[~on_bdry])

    def test_regions_preserved(self):
        mesh = perturbed_grid((5, 4))
        assert mesh.boundary_regions() == [1, 2, 3, 4]

    def test_amplitude_bounds(self):
        with pytest.raises(MeshError):
            perturbed_grid((4, 4), amplitude=0.6)

    def test_zero_amplitude_matches_structured(self):
        a = perturbed_grid((5, 5), amplitude=0.0)
        b = structured_grid((5, 5))
        assert np.allclose(a.nodes, b.nodes)


@given(seed=st.integers(min_value=0, max_value=10_000),
       amplitude=st.floats(min_value=0.0, max_value=0.35))
@settings(max_examples=25, deadline=None)
def test_geometry_invariants_hold_under_perturbation(seed, amplitude):
    mesh = perturbed_grid((6, 5), amplitude=amplitude, seed=seed)
    mesh.validate()  # closure, outward normals, positive volumes
    geom = FVGeometry(mesh)
    # the discrete Gauss identity survives arbitrary valid perturbations
    rng = np.random.default_rng(seed)
    flux = rng.standard_normal(geom.nfaces)
    total = float(geom.surface_divergence(flux) @ geom.volume)
    boundary = float((geom.area[geom.bfaces] * flux[geom.bfaces]).sum())
    assert np.isclose(total, boundary, rtol=1e-10, atol=1e-10)
    assert np.all(geom.face_dist > 0)


class TestSolversOnPerturbedMeshes:
    def test_advection_stays_conservative_and_bounded(self):
        from repro.dsl.problem import Problem
        from repro.fvm.boundary import BCKind

        p = Problem("pert-advect")
        p.set_domain(2)
        p.set_steps(0.2 / 16, 100)
        p.set_mesh(perturbed_grid((16, 8), amplitude=0.3, seed=7))
        p.add_variable("u")
        p.add_coefficient("bx", 1.0)
        p.add_coefficient("by", 0.0)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 1.0)
        for r in (2, 3, 4):
            p.add_boundary("u", r, BCKind.NEUMANN0)
        p.set_initial("u", 0.0)
        p.set_conservation_form("u", "-surface(upwind([bx;by], u))")
        solver = p.solve()
        sol = solver.solution()
        assert sol.min() >= -1e-12
        assert sol.max() <= 1 + 1e-12
        assert sol.mean() > 0.5

    def test_bte_runs_on_perturbed_mesh(self):
        from repro.bte.problem import build_bte_problem, hotspot_scenario

        sc = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4,
                              dt=1e-12, nsteps=5)
        sc.sigma = 150e-6
        problem, _ = build_bte_problem(sc)
        problem.mesh = None
        problem.set_mesh(perturbed_grid(
            (8, 8), [(0.0, sc.lx), (0.0, sc.ly)], amplitude=0.25, seed=2
        ))
        solver = problem.solve()
        T = solver.state.extra["T"]
        assert np.all(np.isfinite(T))
        assert T.max() >= sc.T0
