"""The scaling evaluators must reproduce the paper's reported shapes.

Every assertion here is traceable to a sentence or figure of the paper;
EXPERIMENTS.md carries the full paper-vs-model table.
"""

import numpy as np
import pytest

from repro.perfmodel.costs import BTEWorkload
from repro.perfmodel.scaling import (
    PHASE_COMMUNICATION,
    PHASE_INTENSITY,
    PHASE_TEMPERATURE,
    band_parallel_times,
    cell_parallel_times,
    fortran_reference_times,
    gpu_hybrid_times,
    strong_scaling_table,
)


@pytest.fixture(scope="module")
def workload():
    return BTEWorkload.paper_configuration()


class TestBandParallel:
    def test_intensity_share_97_percent_serial(self, workload):
        """Fig. 5: 'for one to ten processes it accounts for about 97%'."""
        st = band_parallel_times(workload, [1, 2, 5, 10])
        for p in (1, 2, 5, 10):
            assert st.breakdown_fractions(p)[PHASE_INTENSITY] == pytest.approx(
                0.97, abs=0.05
            )

    def test_intensity_share_73_percent_at_55(self, workload):
        """Fig. 5: 'even at 55 it takes about 73%'."""
        st = band_parallel_times(workload, [55])
        assert st.breakdown_fractions(55)[PHASE_INTENSITY] == pytest.approx(
            0.73, abs=0.05
        )

    def test_temperature_share_grows(self, workload):
        st = band_parallel_times(workload, [1, 10, 55])
        shares = [st.breakdown_fractions(p)[PHASE_TEMPERATURE] for p in (1, 10, 55)]
        assert shares[0] < shares[1] < shares[2]

    def test_capped_at_band_count(self, workload):
        with pytest.raises(ValueError, match="at most 55"):
            band_parallel_times(workload, [56])

    def test_speedup_monotone(self, workload):
        st = band_parallel_times(workload, [1, 2, 5, 10, 20, 55])
        assert all(np.diff(st.total) < 0)


class TestCellParallel:
    def test_scales_to_320(self, workload):
        """Fig. 4: 'able to scale well up to 320 processes'."""
        st = cell_parallel_times(workload, [1, 320])
        eff = st.parallel_efficiency()[-1]
        assert eff > 0.8

    def test_beats_band_beyond_55(self, workload):
        st_cell = cell_parallel_times(workload, [320])
        st_band = band_parallel_times(workload, [55])
        assert st_cell.total[0] < st_band.total[0]

    def test_has_communication_cost_above_1(self, workload):
        st = cell_parallel_times(workload, [1, 8])
        assert st.phases[PHASE_COMMUNICATION][0] == 0.0
        assert st.phases[PHASE_COMMUNICATION][1] > 0.0

    def test_band_slightly_better_at_small_counts(self, workload):
        """Fig. 4: at small p the band strategy's lower communication keeps
        it at least competitive."""
        procs = [5]
        t_band = band_parallel_times(workload, procs).total[0]
        t_cell = cell_parallel_times(workload, procs).total[0]
        assert t_band < t_cell * 1.15


class TestFortranReference:
    def test_serial_twice_as_fast(self, workload):
        """Sec. III-E."""
        t_f = fortran_reference_times(workload, [1]).total[0]
        t_b = band_parallel_times(workload, [1]).total[0]
        assert t_b / t_f == pytest.approx(2.0, rel=0.05)

    def test_poor_scaling_catches_up(self, workload):
        """Fig. 9: the Fortran code's serial temperature update makes its
        advantage vanish at high process counts."""
        procs = [1, 55]
        t_f = fortran_reference_times(workload, procs)
        t_b = band_parallel_times(workload, procs)
        assert t_f.total[0] < t_b.total[0]  # faster serially
        # by 55 ranks the gap has closed (within 10 %)
        assert t_f.total[1] == pytest.approx(t_b.total[1], rel=0.10)

    def test_temperature_share_explodes(self, workload):
        st = fortran_reference_times(workload, [1, 55])
        assert st.breakdown_fractions(55)[PHASE_TEMPERATURE] > 0.4


class TestGPUHybrid:
    def test_18x_speedup_at_equal_partitions(self, workload):
        """Fig. 7: 'the GPU version is about 18 times faster' (equal
        partition counts, small device counts)."""
        for p in (1, 2):
            t_cpu = band_parallel_times(workload, [p]).total[0]
            t_gpu = gpu_hybrid_times(workload, [p]).total[0]
            assert 14 < t_cpu / t_gpu < 24

    def test_scaling_flattens_after_ten_devices(self, workload):
        """Fig. 7: 'good up to at least 10 devices, but larger numbers did
        not show further speedup'."""
        st = gpu_hybrid_times(workload, [1, 10, 55])
        eff10 = st.total[0] / (st.total[1] * 10)
        gain_past_10 = st.total[1] / st.total[2]
        assert eff10 > 0.45  # scales usefully to 10
        assert gain_past_10 < 2.0  # 5.5x more devices buy < 2x

    def test_temperature_update_dominates_breakdown(self, workload):
        """Fig. 8 vs Fig. 5: 'a substantially larger percentage of time
        spent on the temperature update'."""
        gpu = gpu_hybrid_times(workload, [1, 4])
        cpu = band_parallel_times(workload, [1, 4])
        for p in (1, 4):
            assert (
                gpu.breakdown_fractions(p)[PHASE_TEMPERATURE]
                > cpu.breakdown_fractions(p)[PHASE_TEMPERATURE] * 5
            )

    def test_communication_insignificant(self, workload):
        """Fig. 8: 'communication time between the GPU and host does not
        make up a very significant portion of the time'."""
        st = gpu_hybrid_times(workload, [1, 2, 4, 8])
        for p in (1, 2, 4, 8):
            assert st.breakdown_fractions(p)[PHASE_COMMUNICATION] < 0.05

    def test_cpu20_vs_1gpu(self, workload):
        """Sec. III-D: 'the best performance using 20 cores on a single CPU
        was slightly slower than the same CPU using one core and one GPU'."""
        t_cpu20 = band_parallel_times(workload, [20]).total[0]
        t_gpu1 = gpu_hybrid_times(workload, [1]).total[0]
        assert t_gpu1 < t_cpu20


class TestFigure9Table:
    def test_all_strategies_present(self):
        tab = strong_scaling_table()
        assert set(tab) == {"bands", "cells", "GPU", "Fortran"}

    def test_ten_gpus_comparable_to_320_cpus(self):
        """Sec. III-E: 'the best possible times were roughly equal between
        the 10 GPU run and 320 CPU run' — we land within ~4x (see
        EXPERIMENTS.md for the deviation discussion)."""
        tab = strong_scaling_table()
        t_gpu10 = tab["GPU"].total[tab["GPU"].procs.index(10)]
        t_cpu320 = tab["cells"].total[tab["cells"].procs.index(320)]
        assert 0.2 < t_cpu320 / t_gpu10 < 5.0

    def test_serial_magnitude_matches_figure(self):
        """Fig. 9's vertical axis: serial runs sit in the 1e3-s decade."""
        tab = strong_scaling_table()
        assert 1e3 < tab["bands"].total[0] < 4e3
        assert 5e2 < tab["Fortran"].total[0] < 2e3
