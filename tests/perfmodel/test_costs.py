"""Workloads and the cost model."""

import pytest

from repro.perfmodel.costs import (
    BTEWorkload,
    CostModel,
    bands_per_rank,
    halo_cells_per_rank,
)
from repro.perfmodel.machines import (
    CASCADE_LAKE_FINCH,
    CASCADE_LAKE_FORTRAN,
    MachineRates,
)


class TestWorkload:
    def test_paper_configuration_counts(self):
        """Sec. III-A: 120x120 cells, 20 directions, 55 bands -> 1100
        intensity DOF per cell, ~1.6e7 overall."""
        w = BTEWorkload.paper_configuration()
        assert w.ncells == 14400
        assert w.ncomp == 1100
        assert w.ndof == pytest.approx(1.6e7, rel=0.02)

    def test_custom_workload(self):
        w = BTEWorkload(ncells=100, ndirs=4, nbands=3, nsteps=10)
        assert w.ncomp == 12
        assert w.ndof == 1200


class TestCostModel:
    def test_serial_step_decomposition(self):
        cost = CostModel(CASCADE_LAKE_FINCH)
        w = BTEWorkload.paper_configuration()
        total = cost.serial_step(w)
        parts = (
            cost.intensity_step(w.ncells, w.ncomp)
            + cost.temperature_step(w.ncells, w.nbands)
            + cost.boundary_step(w.n_boundary_faces, w.ncomp)
        )
        assert total == pytest.approx(parts)

    def test_paper_serial_shares(self):
        """Fig. 5 at 1 process: the intensity solve is ~97 % of the step."""
        cost = CostModel(CASCADE_LAKE_FINCH)
        w = BTEWorkload.paper_configuration()
        intensity = cost.intensity_step(w.ncells, w.ncomp)
        assert intensity / cost.serial_step(w) == pytest.approx(0.97, abs=0.01)

    def test_fortran_twice_as_fast_serially(self):
        """Sec. III-E: 'sequential execution of our code takes roughly twice
        as long as the Fortran code'."""
        w = BTEWorkload.paper_configuration()
        t_finch = CostModel(CASCADE_LAKE_FINCH).serial_total(w)
        t_fortran = CostModel(CASCADE_LAKE_FORTRAN).serial_total(w)
        assert t_finch / t_fortran == pytest.approx(2.0, rel=0.05)

    def test_scaled_rates(self):
        scaled = CASCADE_LAKE_FINCH.scaled(2.0)
        assert scaled.intensity_per_dof == 2 * CASCADE_LAKE_FINCH.intensity_per_dof
        assert scaled.newton_per_cell == 2 * CASCADE_LAKE_FINCH.newton_per_cell


class TestHelpers:
    def test_bands_per_rank(self):
        assert bands_per_rank(55, 1) == 55
        assert bands_per_rank(55, 55) == 1
        assert bands_per_rank(55, 10) == 6
        assert bands_per_rank(55, 40) == 2

    def test_halo_scaling(self):
        # halo shrinks like sqrt(n_local) in 2-D
        h4 = halo_cells_per_rank(14400, 4)
        h16 = halo_cells_per_rank(14400, 16)
        assert h16 == pytest.approx(h4 / 2, rel=1e-6)
        assert halo_cells_per_rank(14400, 1) == 0.0

    def test_halo_3d_exponent(self):
        h = halo_cells_per_rank(8000, 8, dim=3)
        assert h == pytest.approx(6 * 1000 ** (2 / 3), rel=1e-6)
