"""Live calibration of the cost model, and its persistence round-trip."""

import pytest

from repro.perfmodel.calibrate import (
    CalibrationError,
    calibrate_cpu_rate,
    load_rates,
    save_rates,
)
from repro.perfmodel.costs import BTEWorkload, CostModel
from repro.perfmodel.machines import CASCADE_LAKE_FINCH


class TestSyntheticCalibration:
    def test_returns_scaled_rates(self):
        rates, per_dof = calibrate_cpu_rate(CASCADE_LAKE_FINCH)
        assert per_dof > 0
        assert rates.intensity_per_dof == pytest.approx(per_dof, rel=1e-9)
        # all phases scale by the same factor
        factor = per_dof / CASCADE_LAKE_FINCH.intensity_per_dof
        assert rates.newton_per_cell == pytest.approx(
            CASCADE_LAKE_FINCH.newton_per_cell * factor, rel=1e-9
        )

    def test_solver_based_calibration(self, tiny_scenario):
        from repro.bte.problem import build_bte_problem

        problem, _ = build_bte_problem(tiny_scenario)
        solver = problem.generate()
        rates, per_dof = calibrate_cpu_rate(CASCADE_LAKE_FINCH, solver=solver)
        assert per_dof > 0
        assert "x" in rates.name  # scaled marker


class TestPersistenceRoundTrip:
    """calibrate -> save -> load -> identical cost predictions (the tuner's
    pruning depends on the loaded rates matching the measured ones)."""

    def test_round_trip_identical_predictions(self, tmp_path):
        calibrated, per_dof = calibrate_cpu_rate(CASCADE_LAKE_FINCH)
        path = save_rates(calibrated, tmp_path / "rates.json",
                          measured_per_dof=per_dof)
        loaded = load_rates(path)

        assert loaded.name == calibrated.name
        w = BTEWorkload(ncells=1200, ndirs=24, nbands=40, nsteps=7,
                        n_boundary_faces=140)
        before, after = CostModel(calibrated), CostModel(loaded)
        assert after.serial_step(w) == before.serial_step(w)
        assert after.serial_total(w) == before.serial_total(w)
        assert after.temperature_step(w.ncells, w.nbands) == \
            before.temperature_step(w.ncells, w.nbands)
        assert after.boundary_step(w.n_boundary_faces, w.ncomp) == \
            before.boundary_step(w.n_boundary_faces, w.ncomp)

    def test_document_shape(self, tmp_path):
        import json

        path = save_rates(CASCADE_LAKE_FINCH, tmp_path / "rates.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.calibration/1"
        assert set(doc["rates"]) == {
            "intensity_per_dof", "newton_per_cell",
            "iobeta_per_cell_band", "boundary_per_face_comp",
        }

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro.bench/1", "timings": {}}')
        with pytest.raises(CalibrationError):
            load_rates(path)

    def test_rejects_unreadable_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CalibrationError):
            load_rates(path)
