"""Live calibration of the cost model."""

import pytest

from repro.perfmodel.calibrate import calibrate_cpu_rate
from repro.perfmodel.machines import CASCADE_LAKE_FINCH


class TestSyntheticCalibration:
    def test_returns_scaled_rates(self):
        rates, per_dof = calibrate_cpu_rate(CASCADE_LAKE_FINCH)
        assert per_dof > 0
        assert rates.intensity_per_dof == pytest.approx(per_dof, rel=1e-9)
        # all phases scale by the same factor
        factor = per_dof / CASCADE_LAKE_FINCH.intensity_per_dof
        assert rates.newton_per_cell == pytest.approx(
            CASCADE_LAKE_FINCH.newton_per_cell * factor, rel=1e-9
        )

    def test_solver_based_calibration(self, tiny_scenario):
        from repro.bte.problem import build_bte_problem

        problem, _ = build_bte_problem(tiny_scenario)
        solver = problem.generate()
        rates, per_dof = calibrate_cpu_rate(CASCADE_LAKE_FINCH, solver=solver)
        assert per_dof > 0
        assert "x" in rates.name  # scaled marker
