"""Unit tests for algebraic simplification rules."""

import pytest

from repro.symbolic.expr import (
    Add,
    Cmp,
    Conditional,
    Mul,
    Num,
    Pow,
    Surface,
    Sym,
    TimeDerivative,
)
from repro.symbolic.parser import parse
from repro.symbolic.simplify import (
    collect_terms,
    expand_products,
    is_zero,
    negate,
    simplify,
)

x, y, z = Sym("x"), Sym("y"), Sym("z")


class TestConstantFolding:
    def test_numeric_sum(self):
        assert simplify(parse("1 + 2 + 3")) == Num(6)

    def test_numeric_product(self):
        assert simplify(parse("2 * 3 * 4")) == Num(24)

    def test_numeric_power(self):
        assert simplify(parse("2^10")) == Num(1024)
        assert simplify(parse("4^0.5")) == Num(2)

    def test_division_fold(self):
        assert simplify(parse("6 / 3")) == Num(2)

    def test_zero_to_negative_power_stays_symbolic(self):
        e = Pow(Num(0), Num(-1))
        assert simplify(e) == e


class TestIdentities:
    def test_add_zero(self):
        assert simplify(Add(x, Num(0))) == x

    def test_mul_one(self):
        assert simplify(Mul(x, Num(1))) == x

    def test_mul_zero_kills(self):
        assert simplify(Mul(x, Num(0), y)) == Num(0)

    def test_pow_zero_one(self):
        assert simplify(Pow(x, Num(0))) == Num(1)
        assert simplify(Pow(x, Num(1))) == x

    def test_one_to_any_power(self):
        assert simplify(Pow(Num(1), y)) == Num(1)


class TestCollection:
    def test_like_terms(self):
        assert simplify(parse("2*x + 3*x")) == Mul(Num(5), x)

    def test_cancellation(self):
        assert simplify(parse("x - x")) == Num(0)

    def test_mixed(self):
        assert simplify(parse("2*x + 3*x - x*5 + 1")) == Num(1)

    def test_repeated_factors_to_power(self):
        assert simplify(Mul(x, x)) == Pow(x, Num(2))
        assert simplify(Mul(x, x, x)) == Pow(x, Num(3))

    def test_power_merge(self):
        assert simplify(Mul(Pow(x, Num(2)), x)) == Pow(x, Num(3))

    def test_x_over_x(self):
        assert simplify(parse("x / x")) == Num(1)

    def test_canonical_ordering_deterministic(self):
        a = simplify(parse("c + a + b"))
        b = simplify(parse("b + c + a"))
        assert a == b


class TestMarkersAndConditionals:
    def test_conditional_same_branches_collapses(self):
        c = Conditional(Cmp(">", x, Num(0)), y, y)
        assert simplify(c) == y

    def test_conditional_distinct_branches_kept(self):
        c = Conditional(Cmp(">", x, Num(0)), y, z)
        assert simplify(c) == c

    def test_surface_of_zero_is_zero(self):
        assert simplify(Surface(Mul(Num(0), x))) == Num(0)

    def test_timederivative_ordering_first(self):
        e = simplify(Add(Surface(x), Mul(Num(-1), TimeDerivative(y)), z))
        assert str(e).startswith("-TIMEDERIVATIVE")
        assert str(e).endswith("SURFACE*x")


class TestExpandProducts:
    def test_distributes(self):
        e = expand_products(Mul(x, Add(y, z)))
        assert e == Add(Mul(x, y), Mul(x, z))

    def test_nested_distribution(self):
        e = expand_products(Mul(Add(x, y), Add(y, z)))
        assert isinstance(e, Add)
        assert len(e.args) == 4

    def test_does_not_enter_conditionals(self):
        inner = Mul(Add(x, y), z)
        c = Conditional(Cmp(">", x, Num(0)), inner, z)
        assert expand_products(Mul(Num(2), c)) == Mul(Num(2), c)


class TestCollectTerms:
    def test_splits_sum(self):
        terms = collect_terms(parse("a*b + c - d"))
        assert len(terms) == 3

    def test_zero_gives_empty(self):
        assert collect_terms(parse("x - x")) == []

    def test_single_term(self):
        assert collect_terms(parse("a*b")) == [Mul(Sym("a"), Sym("b"))]


class TestHelpers:
    def test_negate(self):
        assert negate(x) == Mul(Num(-1), x)
        assert negate(Num(3)) == Num(-3)

    def test_is_zero(self):
        assert is_zero(parse("x - x"))
        assert not is_zero(x)
