"""Parser grammar coverage and error reporting."""

import pytest

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Indexed,
    Mul,
    Num,
    Pow,
    Sym,
    Vector,
)
from repro.symbolic.parser import parse, tokenize
from repro.util.errors import ParseError


class TestTokenizer:
    def test_numbers(self):
        kinds = [(t.kind, t.text) for t in tokenize("1 2.5 .5 1e3 2.5E-2")]
        assert kinds[:-1] == [
            ("number", "1"),
            ("number", "2.5"),
            ("number", ".5"),
            ("number", "1e3"),
            ("number", "2.5E-2"),
        ]

    def test_ops_and_idents(self):
        toks = tokenize("a >= b")
        assert [t.kind for t in toks] == ["ident", "op", "ident", "end"]

    def test_bad_char(self):
        with pytest.raises(ParseError):
            tokenize("a ? b")


class TestBasicExpressions:
    def test_number(self):
        assert parse("42") == Num(42)
        assert parse("2.5") == Num(2.5)
        assert parse("1e2") == Num(100.0)

    def test_symbol(self):
        assert parse("x") == Sym("x")

    def test_sum_and_difference(self):
        assert parse("a + b") == Add(Sym("a"), Sym("b"))
        assert parse("a - b") == Add(Sym("a"), Mul(Num(-1), Sym("b")))

    def test_product_and_quotient(self):
        assert parse("a * b") == Mul(Sym("a"), Sym("b"))
        assert parse("a / b") == Mul(Sym("a"), Pow(Sym("b"), Num(-1)))

    def test_precedence_mul_over_add(self):
        assert parse("a + b*c") == Add(Sym("a"), Mul(Sym("b"), Sym("c")))

    def test_parens(self):
        assert parse("(a + b)*c") == Mul(Add(Sym("a"), Sym("b")), Sym("c"))

    def test_unary_minus(self):
        assert parse("-a") == Mul(Num(-1), Sym("a"))
        assert parse("-a*b") == Mul(Mul(Num(-1), Sym("a")), Sym("b"))

    def test_unary_plus(self):
        assert parse("+a") == Sym("a")

    def test_power_right_assoc(self):
        assert parse("a^2") == Pow(Sym("a"), Num(2))
        assert parse("a^b^c") == Pow(Sym("a"), Pow(Sym("b"), Sym("c")))

    def test_power_with_negative_exponent(self):
        assert parse("a^-2") == Pow(Sym("a"), Mul(Num(-1), Num(2)))


class TestIndexingCallsVectors:
    def test_indexed(self):
        assert parse("I[d,b]") == Indexed("I", ("d", "b"))
        assert parse("v[3]") == Indexed("v", (3,))

    def test_indexed_inside_expression(self):
        e = parse("vg[b] * I[d,b]")
        assert e == Mul(Indexed("vg", ("b",)), Indexed("I", ("d", "b")))

    def test_call(self):
        assert parse("f(x, 2)") == Call("f", Sym("x"), Num(2))
        assert parse("g()") == Call("g")

    def test_nested_calls(self):
        e = parse("surface(upwind(b, u))")
        assert e == Call("surface", Call("upwind", Sym("b"), Sym("u")))

    def test_vector(self):
        assert parse("[a;b]") == Vector(Sym("a"), Sym("b"))
        assert parse("[Sx[d];Sy[d]]") == Vector(
            Indexed("Sx", ("d",)), Indexed("Sy", ("d",))
        )

    def test_single_element_bracket_is_scalar(self):
        assert parse("[a]") == Sym("a")

    def test_comparison(self):
        assert parse("a > 0") == Cmp(">", Sym("a"), Num(0))
        assert parse("a+b <= c") == Cmp("<=", Add(Sym("a"), Sym("b")), Sym("c"))

    def test_paper_bte_input(self):
        src = (
            "(Io[b] - I[d,b]) / beta[b] - "
            "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
        )
        e = parse(src)
        # top level is a sum of two terms
        assert isinstance(e, Add)

    def test_callback_invocation(self):
        e = parse("isothermal(I, vg, Sx, Sy, b, d, normal, 300)")
        assert isinstance(e, Call)
        assert e.func == "isothermal"
        assert len(e.args) == 8
        assert e.args[-1] == Num(300)


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "",
            "   ",
            "a +",
            "(a",
            "a)",
            "f(a,",
            "[a;b",
            "1.5[d]",  # only identifiers subscriptable
            "I[1.5]",  # index must be integer
            "a b",  # trailing junk
            "a > b > c",  # no chained comparisons
        ],
    )
    def test_rejects(self, src):
        with pytest.raises(ParseError):
            parse(src)

    def test_error_carries_position_caret(self):
        with pytest.raises(ParseError) as err:
            parse("a + * b")
        assert "^" in str(err.value)
