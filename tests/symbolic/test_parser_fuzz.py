"""Parser robustness: arbitrary input either parses or raises ParseError.

A DSL front end must never leak internal exceptions on malformed user
input; hypothesis feeds the tokenizer/parser random strings (plain ASCII
and strings biased toward the grammar's alphabet) and anything other than
success or a clean :class:`ParseError` is a bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic.expr import Expr
from repro.symbolic.parser import parse, tokenize
from repro.util.errors import ParseError

grammar_chars = st.text(
    alphabet="abcIuSxy01239.+-*/^()[];,<>= _",
    min_size=0,
    max_size=40,
)
any_ascii = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0,
    max_size=40,
)


@given(source=grammar_chars)
@settings(max_examples=300, deadline=None)
def test_parse_never_leaks_internal_errors_grammar_alphabet(source):
    try:
        result = parse(source)
    except ParseError:
        return
    assert isinstance(result, Expr)


@given(source=any_ascii)
@settings(max_examples=300, deadline=None)
def test_parse_never_leaks_internal_errors_any_ascii(source):
    try:
        result = parse(source)
    except ParseError:
        return
    assert isinstance(result, Expr)


@given(source=any_ascii)
@settings(max_examples=200, deadline=None)
def test_tokenize_never_leaks(source):
    try:
        tokens = tokenize(source)
    except ParseError:
        return
    assert tokens[-1].kind == "end"


@given(source=grammar_chars)
@settings(max_examples=200, deadline=None)
def test_successful_parse_is_reparseable(source):
    try:
        expr = parse(source)
    except ParseError:
        return
    # printing a parsed tree must itself be valid input
    again = parse(str(expr))
    assert isinstance(again, Expr)
