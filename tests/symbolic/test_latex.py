"""LaTeX rendering of expressions."""

import pytest

from repro.symbolic.expr import (
    Conditional,
    Cmp,
    FaceNormal,
    Num,
    SideValue,
    Surface,
    Sym,
    TimeDerivative,
)
from repro.symbolic.latex import to_latex
from repro.symbolic.parser import parse
from repro.symbolic.simplify import simplify


class TestLeaves:
    def test_numbers(self):
        assert to_latex(Num(3)) == "3"
        assert to_latex(Num(-2.5)) == "-2.5"

    def test_single_letter_symbol(self):
        assert to_latex(Sym("k")) == "k"

    def test_greek(self):
        assert to_latex(Sym("beta")) == r"\beta"
        assert to_latex(Sym("tau")) == r"\tau"

    def test_multiletter_roman(self):
        assert to_latex(Sym("vg")) == r"\mathrm{vg}"

    def test_flattened_component_name(self):
        assert to_latex(Sym("_u_1")) == "u"

    def test_indexed(self):
        assert to_latex(parse("I[d,b]")) == "I_{d,b}"
        assert to_latex(parse("Io[b]")) == r"\mathrm{Io}_{b}"

    def test_normals_and_sides(self):
        assert to_latex(FaceNormal(2)) == "n_{y}"
        assert to_latex(SideValue(Sym("u"), 1)) == "u^{+}"
        assert to_latex(SideValue(Sym("u"), 2)) == "u^{-}"


class TestComposite:
    def test_fraction(self):
        tex = to_latex(simplify(parse("(Io[b] - I[d,b]) / beta[b]")))
        assert r"\frac{" in tex
        assert r"\beta_{b}" in tex

    def test_sum_signs(self):
        tex = to_latex(simplify(parse("a - b")))
        assert "+ -" not in tex

    def test_power(self):
        assert to_latex(parse("k^2")) == "k^{2}"

    def test_conditional_cases(self):
        c = Conditional(Cmp(">", Sym("v"), Num(0)), Sym("a"), Sym("b"))
        tex = to_latex(c)
        assert r"\begin{cases}" in tex and r"\text{otherwise}" in tex

    def test_surface_integral(self):
        tex = to_latex(Surface(Sym("f")))
        assert r"\oint" in tex

    def test_time_derivative(self):
        tex = to_latex(TimeDerivative(Sym("u")))
        assert r"\frac{\partial}{\partial t}" in tex

    def test_grad_and_dot(self):
        tex = to_latex(parse("dot(grad(u), grad(v))"))
        assert tex == r"\nabla u \cdot \nabla v"

    def test_vector(self):
        tex = to_latex(parse("[Sx[d];Sy[d]]"))
        assert r"\begin{pmatrix}" in tex

    def test_full_bte_equation_renders(self):
        src = ("(Io[b] - I[d,b]) / beta[b] - "
               "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))")
        tex = to_latex(parse(src))
        assert r"\frac" in tex
        assert "upwind" in tex  # unexpanded operator rendered as a function

    def test_expanded_form_renders(self, scalar_entities):
        from repro.ir.lowering import expand

        ents, u = scalar_entities
        expanded = simplify(expand(parse("-k*u - surface(upwind(b, u))"), u, ents))
        tex = to_latex(expanded)
        assert r"\oint" in tex
        assert r"\begin{cases}" in tex
        assert "u^{+}" in tex and "u^{-}" in tex

    def test_balanced_braces(self):
        src = "(Io[b] - I[d,b]) / beta[b] - surface(vg[b]*upwind([Sx[d];Sy[d]], I[d,b]))"
        tex = to_latex(parse(src))
        assert tex.count("{") == tex.count("}")
