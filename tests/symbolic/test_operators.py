"""Operator registry: built-in expansions and custom operators."""

import pytest

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    FaceNormal,
    Indexed,
    Mul,
    Num,
    SideValue,
    Surface,
    Sym,
    Vector,
)
from repro.symbolic.operators import (
    OperatorRegistry,
    SymbolicOperator,
    default_registry,
    dot_with_normal,
    expand_average,
    expand_jump,
    expand_upwind,
)
from repro.util.errors import DSLError


class TestDotWithNormal:
    def test_scalar_velocity(self):
        assert dot_with_normal(Sym("b")) == Mul(Sym("b"), FaceNormal(1))

    def test_vector_velocity(self):
        v = Vector(Sym("bx"), Sym("by"))
        assert dot_with_normal(v) == Add(
            Mul(Sym("bx"), FaceNormal(1)), Mul(Sym("by"), FaceNormal(2))
        )


class TestUpwind:
    def test_structure_matches_paper(self):
        e = expand_upwind(Sym("b"), Sym("u"))
        assert isinstance(e, Conditional)
        vn = Mul(Sym("b"), FaceNormal(1))
        assert e.cond == Cmp(">", vn, Num(0))
        assert e.then == Mul(vn, SideValue(Sym("u"), 1))
        assert e.otherwise == Mul(vn, SideValue(Sym("u"), 2))

    def test_2d_velocity(self):
        e = expand_upwind(Vector(Sym("bx"), Sym("by")), Indexed("I", ("d", "b")))
        s = str(e)
        assert "NORMAL_1" in s and "NORMAL_2" in s
        assert "CELL1_I[d,b]" in s and "CELL2_I[d,b]" in s


class TestOtherReconstructions:
    def test_average(self):
        e = expand_average(Sym("u"))
        assert e == Mul(
            Num(0.5), Add(SideValue(Sym("u"), 1), SideValue(Sym("u"), 2))
        )

    def test_jump(self):
        e = expand_jump(Sym("u"))
        assert e == Add(
            SideValue(Sym("u"), 2), Mul(Num(-1), SideValue(Sym("u"), 1))
        )


class TestRegistry:
    def test_default_names(self):
        reg = default_registry()
        for name in ("surface", "upwind", "average", "jump", "conditional", "dot"):
            assert name in reg

    def test_expand_call(self):
        reg = default_registry()
        out = reg.expand_call(Call("surface", Sym("f")))
        assert out == Surface(Sym("f"))

    def test_arity_check(self):
        reg = default_registry()
        with pytest.raises(DSLError):
            reg.expand_call(Call("upwind", Sym("b")))

    def test_unknown_operator(self):
        reg = default_registry()
        with pytest.raises(DSLError):
            reg.expand_call(Call("nope", Sym("x")))

    def test_duplicate_registration_rejected(self):
        reg = default_registry()
        with pytest.raises(DSLError):
            reg.register(SymbolicOperator("surface", 1, Surface))

    def test_replace_allowed_explicitly(self):
        reg = default_registry()
        reg.register(SymbolicOperator("surface", 1, Surface), replace=True)

    def test_custom_operator(self):
        # the paper: "a more sophisticated flux reconstruction could be
        # created and used in the input expression similar to upwind"
        reg = default_registry()

        def lax_friedrichs(v, u):
            central = Mul(
                dot_with_normal(v),
                Mul(Num(0.5), Add(SideValue(u, 1), SideValue(u, 2))),
            )
            dissipation = Mul(
                Num(-0.5), Add(SideValue(u, 2), Mul(Num(-1), SideValue(u, 1)))
            )
            return Add(central, dissipation)

        reg.define("lax_friedrichs", lax_friedrichs, arity=2)
        out = reg.expand_call(Call("lax_friedrichs", Sym("b"), Sym("u")))
        assert "CELL1_u" in str(out) and "CELL2_u" in str(out)

    def test_dot_dimension_mismatch(self):
        reg = default_registry()
        with pytest.raises(DSLError):
            reg.expand_call(
                Call("dot", Vector(Sym("a"), Sym("b")), Vector(Sym("c"), Sym("d"), Sym("e")))
            )

    def test_conditional_requires_cmp(self):
        reg = default_registry()
        with pytest.raises(DSLError):
            reg.expand_call(Call("conditional", Sym("x"), Num(1), Num(2)))

    def test_copy_is_independent(self):
        reg = default_registry()
        clone = reg.copy()
        clone.define("extra", lambda x: x, arity=1)
        assert "extra" in clone
        assert "extra" not in reg
