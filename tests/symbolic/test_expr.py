"""Unit tests for the expression-tree nodes."""

import pytest

from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    FaceNormal,
    Indexed,
    Mul,
    Num,
    Pow,
    SideValue,
    Surface,
    Sym,
    TimeDerivative,
    Vector,
    as_expr,
    free_indices,
    free_symbols,
    preorder,
    substitute,
)


class TestLeaves:
    def test_num_int_and_float(self):
        assert Num(3).value == 3
        assert Num(2.5).value == 2.5

    def test_num_integral_float_normalises(self):
        assert Num(4.0).value == 4
        assert isinstance(Num(4.0).value, int)

    def test_num_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            Num(True)
        with pytest.raises(TypeError):
            Num("3")

    def test_sym_requires_name(self):
        with pytest.raises(ValueError):
            Sym("")

    def test_indexed_str(self):
        assert str(Indexed("I", ("d", "b"))) == "I[d,b]"
        assert str(Indexed("v", (2,))) == "v[2]"

    def test_indexed_requires_indices(self):
        with pytest.raises(ValueError):
            Indexed("I", ())

    def test_indexed_rejects_bad_index_type(self):
        with pytest.raises(TypeError):
            Indexed("I", (1.5,))

    def test_face_normal_range(self):
        assert str(FaceNormal(1)) == "NORMAL_1"
        with pytest.raises(ValueError):
            FaceNormal(0)
        with pytest.raises(ValueError):
            FaceNormal(4)

    def test_side_value_str_strips_leading_underscore(self):
        # paper prints CELL1_u_1, not CELL1__u_1
        assert str(SideValue(Sym("_u_1"), 1)) == "CELL1_u_1"
        assert str(SideValue(Indexed("I", ("d",)), 2)) == "CELL2_I[d]"

    def test_side_value_side_check(self):
        with pytest.raises(ValueError):
            SideValue(Sym("u"), 3)


class TestStructuralEquality:
    def test_equal_trees_equal_and_hash(self):
        a = Add(Sym("x"), Num(1))
        b = Add(Sym("x"), Num(1))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_classes_unequal(self):
        assert Sym("x") != Indexed("x", ("i",))
        assert Num(0) != Sym("0")

    def test_usable_as_dict_keys(self):
        d = {Mul(Num(2), Sym("x")): "a"}
        assert d[Mul(Num(2), Sym("x"))] == "a"


class TestImmutability:
    @pytest.mark.parametrize(
        "node",
        [
            Num(1),
            Sym("x"),
            Indexed("I", ("d",)),
            Add(Sym("x"), Num(1)),
            Mul(Sym("x"), Num(2)),
            Pow(Sym("x"), Num(2)),
            Call("f", Sym("x")),
            Cmp(">", Sym("x"), Num(0)),
            Vector(Sym("a"), Sym("b")),
            Surface(Sym("x")),
            TimeDerivative(Sym("x")),
            SideValue(Sym("x"), 1),
            FaceNormal(2),
        ],
    )
    def test_setattr_raises(self, node):
        with pytest.raises(AttributeError):
            node.value = 5


class TestOperatorSugar:
    def test_add_sub(self):
        x, y = Sym("x"), Sym("y")
        assert x + y == Add(x, y)
        assert x - y == Add(x, Mul(Num(-1), y))
        assert 1 + x == Add(Num(1), x)

    def test_mul_div(self):
        x, y = Sym("x"), Sym("y")
        assert x * y == Mul(x, y)
        assert x / y == Mul(x, Pow(y, Num(-1)))
        assert 2 * x == Mul(Num(2), x)

    def test_pow_neg(self):
        x = Sym("x")
        assert x**2 == Pow(x, Num(2))
        assert -x == Mul(Num(-1), x)
        assert +x is x

    def test_comparisons_build_cmp(self):
        x = Sym("x")
        c = x > 0
        assert isinstance(c, Cmp) and c.op == ">"
        assert (x <= 1).op == "<="

    def test_cmp_has_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(Sym("x") > 0)


class TestNaryFlattening:
    def test_add_flattens(self):
        e = Add(Add(Sym("a"), Sym("b")), Sym("c"))
        assert len(e.args) == 3

    def test_mul_flattens(self):
        e = Mul(Mul(Sym("a"), Sym("b")), Mul(Sym("c"), Sym("d")))
        assert len(e.args) == 4

    def test_add_does_not_flatten_mul(self):
        e = Add(Mul(Sym("a"), Sym("b")), Sym("c"))
        assert len(e.args) == 2


class TestConditional:
    def test_requires_cmp(self):
        with pytest.raises(TypeError):
            Conditional(Sym("x"), Num(1), Num(2))

    def test_str(self):
        c = Conditional(Cmp(">", Sym("v"), Num(0)), Sym("a"), Sym("b"))
        assert str(c) == "conditional(v > 0, a, b)"

    def test_rebuild_keeps_cmp_requirement(self):
        c = Conditional(Cmp(">", Sym("v"), Num(0)), Sym("a"), Sym("b"))
        with pytest.raises(TypeError):
            c.rebuild(Sym("x"), Sym("a"), Sym("b"))


class TestPrinting:
    def test_mul_negative_one_prints_minus(self):
        assert str(Mul(Num(-1), Sym("x"))) == "-x"

    def test_add_with_negative_terms(self):
        e = Add(Sym("x"), Mul(Num(-1), Sym("y")))
        assert str(e) == "x-y"

    def test_parens_around_sums_in_products(self):
        e = Mul(Add(Sym("a"), Sym("b")), Sym("c"))
        assert str(e) == "(a+b)*c"

    def test_pow_parens(self):
        assert str(Pow(Add(Sym("a"), Sym("b")), Num(2))) == "(a+b)^2"
        assert str(Pow(Sym("x"), Num(-1))) == "x^(-1)"

    def test_surface_and_timederivative_markers(self):
        assert str(Surface(Sym("f"))) == "SURFACE*f"
        assert str(TimeDerivative(Sym("u"))) == "TIMEDERIVATIVE*u"

    def test_vector(self):
        assert str(Vector(Sym("a"), Sym("b"))) == "[a;b]"


class TestTraversal:
    def test_preorder_visits_all(self):
        e = Add(Mul(Sym("a"), Num(2)), Pow(Sym("b"), Num(2)))
        names = [type(n).__name__ for n in preorder(e)]
        assert names[0] == "Add"
        assert names.count("Sym") == 2

    def test_free_symbols(self):
        e = Add(Sym("x"), Mul(Sym("y"), Indexed("I", ("d",))))
        assert free_symbols(e) == {"x", "y"}

    def test_free_indices(self):
        e = Mul(Indexed("I", ("d", "b")), Indexed("vg", ("b",)), Indexed("x", (3,)))
        assert free_indices(e) == {"d", "b"}

    def test_substitute_dict(self):
        e = Add(Sym("x"), Mul(Sym("x"), Sym("y")))
        out = substitute(e, {Sym("x"): Num(2)})
        assert out == Add(Num(2), Mul(Num(2), Sym("y")))

    def test_substitute_callable_bottom_up(self):
        # rule matches the rewritten child form
        e = Mul(Sym("x"), Sym("x"))

        def rule(node):
            if node == Sym("x"):
                return Sym("y")
            if node == Mul(Sym("y"), Sym("y")):
                return Sym("z")
            return None

        assert substitute(e, rule) == Sym("z")

    def test_as_expr(self):
        assert as_expr(3) == Num(3)
        assert as_expr(Sym("x")) == Sym("x")
        with pytest.raises(TypeError):
            as_expr("x")
        with pytest.raises(TypeError):
            as_expr(True)
