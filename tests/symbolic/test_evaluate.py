"""Numeric evaluation: scalars, arrays, conditionals, functions."""

import numpy as np
import pytest

from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import (
    Call,
    Cmp,
    Conditional,
    Indexed,
    Mul,
    Num,
    Surface,
    Sym,
    TimeDerivative,
    Vector,
)
from repro.symbolic.parser import parse
from repro.util.errors import DSLError


class TestScalars:
    def test_arithmetic(self):
        assert evaluate(parse("2*x + 1"), {"x": 3.0}) == 7.0

    def test_division(self):
        assert evaluate(parse("x / 4"), {"x": 2.0}) == 0.5

    def test_power(self):
        assert evaluate(parse("x^3"), {"x": 2.0}) == 8.0

    def test_negative_power_uses_division(self):
        assert evaluate(parse("x^-1"), {"x": 4.0}) == 0.25

    def test_comparison(self):
        assert evaluate(parse("x > 1"), {"x": 2.0})
        assert not evaluate(parse("x > 1"), {"x": 0.0})

    def test_conditional(self):
        e = Conditional(Cmp(">", Sym("v"), Num(0)), Num(10), Num(20))
        assert evaluate(e, {"v": 1.0}) == 10
        assert evaluate(e, {"v": -1.0}) == 20


class TestArrays:
    def test_elementwise(self):
        x = np.array([1.0, 2.0, 3.0])
        out = evaluate(parse("2*x + 1"), {"x": x})
        assert np.allclose(out, [3, 5, 7])

    def test_conditional_vectorises_to_where(self):
        v = np.array([-1.0, 0.5, 2.0])
        e = Conditional(Cmp(">", Sym("v"), Num(0)), Sym("v"), Num(0))
        assert np.allclose(evaluate(e, {"v": v}), [0, 0.5, 2.0])

    def test_indexed_lookup_by_string_form(self):
        arr = np.array([5.0, 6.0])
        out = evaluate(Mul(Indexed("I", ("d", "b")), Num(2)), {"I[d,b]": arr})
        assert np.allclose(out, [10, 12])

    def test_vector_evaluates_to_array(self):
        out = evaluate(Vector(Num(1), Num(2)), {})
        assert np.allclose(out, [1, 2])


class TestFunctionsAndMarkers:
    def test_builtin_functions(self):
        assert evaluate(parse("abs(x)"), {"x": -3.0}) == 3.0
        assert evaluate(parse("max(x, 2)"), {"x": 1.0}) == 2.0
        assert np.isclose(evaluate(parse("exp(x)"), {"x": 0.0}), 1.0)

    def test_custom_function(self):
        out = evaluate(
            Call("double", Sym("x")), {"x": 4.0}, functions={"double": lambda v: 2 * v}
        )
        assert out == 8.0

    def test_unknown_function_raises(self):
        with pytest.raises(DSLError):
            evaluate(Call("mystery", Num(1)), {})

    def test_markers_transparent(self):
        assert evaluate(Surface(Num(5)), {}) == 5
        assert evaluate(TimeDerivative(Sym("x")), {"x": 2.0}) == 2.0


class TestEnvironments:
    def test_unbound_symbol_raises(self):
        with pytest.raises(DSLError):
            evaluate(Sym("missing"), {})

    def test_callable_environment(self):
        def env(node):
            return 7.0

        assert evaluate(parse("x + y"), env) == 14.0
