"""Property: printed expressions re-parse to equal values.

The printer's output for arithmetic trees must be valid parser input
producing the same function (the paper edits/reads generated forms, so
print->parse fidelity matters).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import Add, Expr, Indexed, Mul, Num, Pow, Sym
from repro.symbolic.parser import parse
from repro.symbolic.simplify import simplify

SYMBOLS = ["x", "y", "z"]


def leaf():
    return st.one_of(
        st.sampled_from([Sym(s) for s in SYMBOLS]),
        st.integers(min_value=-5, max_value=5).map(Num),
        st.sampled_from([Indexed("I", ("d",)), Indexed("vg", ("b",))]),
    )


def trees():
    return st.recursive(
        leaf(),
        lambda ch: st.one_of(
            st.tuples(ch, ch).map(lambda ab: Add(*ab)),
            st.tuples(ch, ch).map(lambda ab: Mul(*ab)),
            st.tuples(ch, st.integers(min_value=0, max_value=3)).map(
                lambda be: Pow(be[0], Num(be[1]))
            ),
        ),
        max_leaves=10,
    )


ENV = {"x": 1.7, "y": -0.4, "z": 2.3, "I[d]": 0.9, "vg[b]": 1.1}


def _value(e: Expr) -> float:
    return float(evaluate(e, ENV))


@given(expr=trees())
@settings(max_examples=120, deadline=None)
def test_print_parse_preserves_value(expr):
    reparsed = parse(str(expr))
    a, b = _value(expr), _value(reparsed)
    scale = max(abs(a), abs(b), 1.0)
    assert abs(a - b) <= 1e-9 * scale


@given(expr=trees())
@settings(max_examples=80, deadline=None)
def test_simplified_form_reparses_to_same_canonical_tree(expr):
    s = simplify(expr)
    assert simplify(parse(str(s))) == s
