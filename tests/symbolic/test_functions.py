"""The unified function registry (`repro.symbolic.functions`).

One table backs every consumer of named functions: ``evaluate()``, the
code generators' emitted source, and the fused vector VM.  These tests
pin the registry's contract — registration, builtin restore, live views —
and the regression the unification exists for: a function registered once
(e.g. via the ``finch.register_function`` DSL API) is immediately usable
by *all three* execution paths, and a custom symbolic operator built on
registry functions (the ``examples/custom_operator.py`` flow) solves
bit-identically with fusion on and off.
"""

import numpy as np
import pytest

import repro.dsl as finch
from repro.codegen.vectorvm import VectorVM
from repro.ir.fuse import UnfusableError, compile_expr
from repro.mesh import structured_grid
from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import Add, Call, Mul, Num, SideValue, Sym
from repro.symbolic.functions import (
    FUNCTION_CALLABLES,
    FUNCTION_CODES,
    function_callables,
    get_function,
    register_function,
    unregister_function,
)
from repro.symbolic.operators import dot_with_normal
from repro.util.errors import DSLError


@pytest.fixture
def registered():
    """Register a test function; always clean up the process-wide table."""
    names = []

    def add(name, fn, code=None):
        register_function(name, fn, code)
        names.append(name)
        return name

    yield add
    for name in names:
        unregister_function(name)


class TestRegistry:
    def test_builtins_present(self):
        for name in ("abs", "min", "max", "sqrt", "exp", "log", "sin",
                     "cos", "tanh"):
            entry = get_function(name)
            assert entry is not None and entry.code is not None

    def test_register_and_unregister(self, registered):
        registered("tripled", lambda x: 3 * x)
        assert get_function("tripled").fn(2.0) == 6.0
        unregister_function("tripled")
        assert get_function("tripled") is None

    def test_unregister_restores_builtin(self):
        register_function("abs", lambda x: 0.0)
        try:
            assert FUNCTION_CALLABLES["abs"](-5.0) == 0.0
        finally:
            unregister_function("abs")
        assert FUNCTION_CALLABLES["abs"] is np.abs

    def test_validation(self):
        with pytest.raises(DSLError):
            register_function("", lambda x: x)
        with pytest.raises(DSLError):
            register_function("notcallable", 42)

    def test_live_views_see_late_registrations(self, registered):
        assert "halved" not in FUNCTION_CALLABLES
        registered("halved", lambda x: x / 2, code="np.halved")
        assert FUNCTION_CALLABLES["halved"](8.0) == 4.0
        assert FUNCTION_CODES["halved"] == "np.halved"

    def test_codeless_functions_hidden_from_code_view(self, registered):
        registered("vmonly", lambda x: x + 1)
        assert "vmonly" in FUNCTION_CALLABLES
        assert "vmonly" not in FUNCTION_CODES

    def test_function_callables_snapshot_with_overrides(self, registered):
        registered("f1", lambda x: 1.0)
        table = function_callables({"f1": lambda x: 2.0})
        assert table["f1"](0.0) == 2.0  # override wins
        assert FUNCTION_CALLABLES["f1"](0.0) == 1.0  # registry untouched


class TestAllConsumersShareTheTable:
    def test_dsl_registration_reaches_evaluate_and_vm(self):
        finch.register_function("softsign", lambda x: x / (1.0 + np.abs(x)))
        try:
            expr = Call("softsign", Mul(Sym("a"), Num(2)))
            env = {"a": np.array([-4.0, 0.0, 1.5])}
            expected = evaluate(expr, env)
            program = compile_expr(expr, leaf_key=str)
            vm = VectorVM(program)
            got = vm.run(*(env[k] for k in program.slots))
            np.testing.assert_array_equal(got, expected)
            np.testing.assert_array_equal(vm.run_interpreted(env["a"]),
                                          expected)
        finally:
            unregister_function("softsign")

    def test_unregistered_name_fails_everywhere(self):
        expr = Call("ghost_fn", Sym("a"))
        with pytest.raises(DSLError):
            evaluate(expr, {"a": 1.0})
        with pytest.raises(UnfusableError):
            compile_expr(expr, leaf_key=str)


def rusanov(velocity, quantity):
    """The example's custom flux: central average + |v.n|/2 dissipation.

    Builds on the registry's ``abs`` — the regression being tested is that
    a custom operator's function calls flow through the unified table into
    emitted source *and* fused programs, with identical numerics.
    """
    vn = dot_with_normal(velocity)
    central = Mul(vn, Mul(Num(0.5),
                          Add(SideValue(quantity, 1), SideValue(quantity, 2))))
    dissipation = Mul(
        Num(-0.5),
        Call("abs", vn),
        Add(SideValue(quantity, 2), Mul(Num(-1), SideValue(quantity, 1))),
    )
    return Add(central, dissipation)


class TestCustomOperatorExampleFlow:
    """examples/custom_operator.py in miniature, plus the fusion claim."""

    @staticmethod
    def solve(fusion):
        finch.init_problem(f"rusanov-registry-{fusion}")
        finch.domain(2)
        finch.time_stepper(finch.EULER_EXPLICIT)
        n = 8
        finch.set_steps(0.25 / n, 10)
        finch.mesh(structured_grid((n, n), [(-1.0, 1.0), (-1.0, 1.0)]))
        u = finch.variable("u")
        finch.coefficient("bx", lambda c: -c[:, 1])
        finch.coefficient("by", lambda c: c[:, 0])
        for region in (1, 2, 3, 4):
            finch.boundary(u, region, finch.NEUMANN0)
        finch.initial(
            u, lambda c: np.exp(-8 * ((c[:, 0] - 0.4) ** 2 + c[:, 1] ** 2)))
        finch.custom_operator("rusanov", rusanov, arity=2)
        finch.conservation_form(u, "-surface(rusanov([bx;by], u))")
        finch.current_problem().extra["fusion"] = fusion
        solver = finch.solve(u)
        finch.finalize()
        return solver

    def test_custom_operator_fuses_bit_identically(self):
        unfused = self.solve("off")
        fused = self.solve("on")
        info = fused.fusion_info
        assert info["mode"] == "on" and info["programs"]
        assert np.array_equal(fused.solution(), unfused.solution())
