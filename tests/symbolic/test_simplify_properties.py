"""Property-based tests: simplification must preserve value.

Random expression trees are generated over a fixed symbol pool, then
evaluated against random environments before and after ``simplify`` /
``expand_products``; the results must agree to floating-point roundoff.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import Add, Cmp, Conditional, Expr, Mul, Num, Pow, Sym
from repro.symbolic.simplify import collect_terms, expand_products, simplify

SYMBOLS = ["x", "y", "z"]


def leaf() -> st.SearchStrategy[Expr]:
    return st.one_of(
        st.sampled_from([Sym(s) for s in SYMBOLS]),
        st.integers(min_value=-4, max_value=4).map(Num),
        st.floats(
            min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
        ).map(lambda v: Num(round(v, 3))),
    )


def trees(max_leaves: int = 12) -> st.SearchStrategy[Expr]:
    return st.recursive(
        leaf(),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda ab: Add(*ab)),
            st.tuples(children, children, children).map(lambda abc: Add(*abc)),
            st.tuples(children, children).map(lambda ab: Mul(*ab)),
            st.tuples(children, st.integers(min_value=0, max_value=3)).map(
                lambda be: Pow(be[0], Num(be[1]))
            ),
            st.tuples(children, children, children).map(
                lambda abc: Conditional(Cmp(">", abc[0], Num(0)), abc[1], abc[2])
            ),
        ),
        max_leaves=max_leaves,
    )


def environments() -> st.SearchStrategy[dict]:
    value = st.floats(
        min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
    )
    return st.fixed_dictionaries({s: value for s in SYMBOLS})


def _both_finite_close(a: float, b: float) -> bool:
    if not (math.isfinite(a) and math.isfinite(b)):
        return True  # 0^-1 style edge cases: either form may overflow
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= 1e-9 * scale


@given(expr=trees(), env=environments())
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_value(expr, env):
    before = evaluate(expr, env)
    after = evaluate(simplify(expr), env)
    assert _both_finite_close(float(before), float(after))


@given(expr=trees(), env=environments())
@settings(max_examples=150, deadline=None)
def test_expand_products_preserves_value(expr, env):
    before = evaluate(expr, env)
    after = evaluate(expand_products(expr), env)
    assert _both_finite_close(float(before), float(after))


@given(expr=trees())
@settings(max_examples=150, deadline=None)
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    twice = simplify(once)
    assert once == twice


@given(expr=trees(), env=environments())
@settings(max_examples=100, deadline=None)
def test_collect_terms_sum_equals_original(expr, env):
    terms = collect_terms(expr)
    before = float(evaluate(expr, env))
    after = float(sum(evaluate(t, env) for t in terms)) if terms else 0.0
    assert _both_finite_close(before, after)


@given(expr=trees())
@settings(max_examples=100, deadline=None)
def test_simplify_deterministic(expr):
    assert simplify(expr) == simplify(expr)
