"""Compilation cache: memory layer, disk round-trip, artifact identity."""

import numpy as np

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.tune.cache import CompilationCache, cache_scope
from repro.tune.signature import cache_key


def make_problem(nx=8, bands=4):
    scenario = hotspot_scenario(nx=nx, ny=nx, ndirs=4, n_freq_bands=bands,
                                dt=1e-12, nsteps=3)
    problem, _ = build_bte_problem(scenario)
    return problem


class TestMemoryLayer:
    def test_second_generate_hits(self):
        with cache_scope() as cache:
            make_problem().generate()
            make_problem().generate()
        assert cache.stats.builds == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_different_problems_do_not_collide(self):
        with cache_scope() as cache:
            make_problem(nx=8).generate()
            make_problem(nx=10).generate()
        assert cache.stats.builds == 2
        assert cache.stats.memory_hits == 0

    def test_disabled_cache_always_builds(self):
        with cache_scope(enabled=False) as cache:
            make_problem().generate()
            make_problem().generate()
        assert cache.stats.hits == 0
        assert len(cache) == 0

    def test_warm_solutions_identical(self):
        with cache_scope():
            cold = make_problem().generate()
            cold.run()
            warm = make_problem().generate()
            warm.run()
        assert np.array_equal(cold.solution(), warm.solution())


class TestDiskLayer:
    def test_cross_process_shape_round_trip(self, tmp_path):
        """A second cache instance over the same dir (what a new process
        sees) serves the artifact from disk — no rebuild, no re-lowering."""
        with cache_scope(cache_dir=tmp_path) as cache:
            solver_cold = make_problem().generate()
            assert cache.stats.disk_writes == 1
        with cache_scope(cache_dir=tmp_path) as fresh:
            solver_warm = make_problem().generate()
            assert fresh.stats.builds == 0
            assert fresh.stats.disk_hits == 1
        assert solver_warm.source == solver_cold.source
        solver_warm.run()  # the revived artifact must actually work

    def test_disk_entry_layout(self, tmp_path):
        with cache_scope(cache_dir=tmp_path):
            problem = make_problem()
            key = cache_key(problem, "cpu")
            problem.generate()
        entry = tmp_path / key[:2] / key
        assert (entry / "source.py").is_file()
        assert (entry / "artifact.pkl").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        with cache_scope(cache_dir=tmp_path) as cache:
            problem = make_problem()
            key = cache_key(problem, "cpu")
            problem.generate()
            (tmp_path / key[:2] / key / "artifact.pkl").write_bytes(b"garbage")
        with cache_scope(cache_dir=tmp_path) as fresh:
            make_problem().generate()
            assert fresh.stats.disk_errors == 1
            assert fresh.stats.builds == 1  # rebuilt, did not crash


class TestArtifactIdentity:
    def test_module_name_is_content_derived(self):
        with cache_scope():
            problem = make_problem()
            key = cache_key(problem, "cpu")
            solver = problem.generate()
        assert solver.module_name == f"<generated:cpu:{key[:12]}>"

    def test_module_name_stable_across_regeneration(self):
        with cache_scope(enabled=False):
            a = make_problem().generate()
            b = make_problem().generate()
        assert a.module_name == b.module_name

    def test_generation_info_records_hit_and_miss(self):
        with cache_scope():
            cold = make_problem().generate()
            warm = make_problem().generate()
        assert cold.generation_info["cache"] == "miss"
        assert warm.generation_info["cache"] == "hit"
        assert warm.generation_info["key"] == cold.generation_info["key"]


def test_scope_restores_previous_cache():
    from repro.tune.cache import get_cache

    before = get_cache()
    with cache_scope() as inner:
        assert get_cache() is inner
    assert get_cache() is before


def test_clear_resets_memory_and_stats():
    cache = CompilationCache()
    with cache_scope() as cache:
        make_problem().generate()
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.builds == 0
