"""The autotuner: search quality, verification, budget, auto-consultation.

Acceptance (ISSUE 5): for two benchmark problems the tuned configuration
is **no slower than the default** under the deterministic virtual-time
suite, and **every executed trial passes placement verification**.
"""

import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.tune.cache import cache_scope
from repro.tune.db import TuningDB
from repro.tune.signature import tuning_key
from repro.tune.space import TuneConfig, build_space
from repro.tune.tuner import maybe_apply_tuned, predict_cost, tune


def serial_factory():
    scenario = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=3)
    problem, _ = build_bte_problem(scenario)
    return problem


def banded_factory():
    scenario = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=3)
    problem, _ = build_bte_problem(scenario)
    problem.set_partitioning("bands", 2, index="b")
    return problem


FACTORIES = {"serial": serial_factory, "banded": banded_factory}


@pytest.mark.parametrize("name", list(FACTORIES))
@pytest.mark.parametrize("strategy", ["greedy", "grid"])
def test_tuned_no_slower_than_default(name, strategy):
    with cache_scope():
        result = tune(FACTORIES[name], budget_trials=8, strategy=strategy)
    assert result.best_virtual_s <= result.default_virtual_s
    assert result.speedup >= 1.0
    executed = [t for t in result.trials if t.status != "pruned"]
    assert executed, "budget must allow at least the default trial"
    # every executed trial passed placement verification
    assert all(t.status != "verify_failed" for t in result.trials)
    assert executed[0].config.is_default  # default is always trial #1


def test_trial_budget_respected():
    with cache_scope():
        result = tune(serial_factory, budget_trials=2)
    assert len([t for t in result.trials if t.status != "pruned"]) <= 2


def test_pruning_skips_predicted_slow_candidates():
    probe = serial_factory()
    space = build_space(probe)
    floor = min(predict_cost(probe, c) for c in space)
    with cache_scope():
        # a prune ratio below every non-default prediction ratio forces
        # every non-default candidate to be pruned, never executed
        result = tune(serial_factory, budget_trials=16, strategy="grid",
                      prune_ratio=1e-9)
    statuses = {t.status for t in result.trials if not t.config.is_default}
    assert statuses <= {"pruned"}
    assert result.best == TuneConfig()
    assert floor > 0


def test_result_document_and_summary():
    with cache_scope():
        result = tune(serial_factory, budget_trials=4)
    doc = result.as_dict()
    assert doc["schema"].startswith("repro.tune_result/")
    assert doc["key"] == result.key
    assert isinstance(result.summary(), str)
    assert "default" in result.summary()


def test_winner_recorded_and_auto_applied(tmp_path):
    db_path = tmp_path / "tuned.json"
    with cache_scope():
        result = tune(banded_factory, budget_trials=8, db_path=db_path)
    assert result.db_path == db_path
    db = TuningDB.load(db_path)
    assert db.lookup_config(result.key) == result.best

    problem = banded_factory()
    problem.extra["tuned"] = True
    problem.extra["tuning_db"] = db_path
    applied = maybe_apply_tuned(problem)
    assert applied == result.best
    assert problem.extra["_tuned_applied"] is True
    # idempotent: a second generate()-triggered consult is a no-op
    assert maybe_apply_tuned(problem) is None


def test_tuned_solve_end_to_end(tmp_path):
    """The CLI shape: tune, then solve with extra['tuned'] — the solve must
    pick the stored knobs up via Problem.generate and still be correct."""
    import numpy as np

    db_path = tmp_path / "tuned.json"
    with cache_scope():
        tune(serial_factory, budget_trials=8, db_path=db_path)

        baseline = serial_factory().solve()

        tuned_problem = serial_factory()
        tuned_problem.extra["tuned"] = True
        tuned_problem.extra["tuning_db"] = str(db_path)
        tuned = tuned_problem.solve()

    assert np.allclose(tuned.solution(), baseline.solution(), rtol=1e-13)
    assert tuned_problem.extra.get("_tuned_applied") or \
        tuned_problem.extra.get("tuned_config") is None


def test_missing_db_entry_is_a_noop():
    problem = serial_factory()
    problem.extra["tuned"] = True
    problem.extra["tuning_db"] = TuningDB()  # empty
    assert maybe_apply_tuned(problem) is None
    assert "_tuned_applied" not in problem.extra


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        tune(serial_factory, strategy="simulated-annealing")
