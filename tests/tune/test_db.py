"""The ``repro.tune/1`` database: round-trip, validation, lookup."""

import json

import pytest

from repro.tune.db import TuneDBError, TuningDB, default_db_path
from repro.tune.space import TuneConfig


class TestRoundTrip:
    def test_record_save_load_lookup(self, tmp_path):
        path = tmp_path / "tuned.json"
        db = TuningDB(path=path)
        config = TuneConfig(assembly_order=("b", "cells", "d"),
                            gpu_kernel_chunks=4)
        db.record("k" * 64, config, target="gpu",
                  virtual_s=0.5, default_virtual_s=1.0, trials=6)
        db.save()

        loaded = TuningDB.load(path)
        assert len(loaded) == 1
        assert loaded.lookup_config("k" * 64) == config
        entry = loaded.lookup("k" * 64)
        assert entry["virtual_s"] == 0.5
        assert entry["default_virtual_s"] == 1.0
        assert entry["trials"] == 6
        assert entry["target"] == "gpu"

    def test_document_schema(self, tmp_path):
        path = tmp_path / "tuned.json"
        db = TuningDB(path=path)
        db.record("a" * 64, TuneConfig(), target=None,
                  virtual_s=1.0, default_virtual_s=1.0, trials=1)
        db.save()
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.tune/1"
        assert "a" * 64 in doc["entries"]


class TestValidation:
    def test_missing_file_is_empty_db(self, tmp_path):
        db = TuningDB.load(tmp_path / "absent.json")
        assert len(db) == 0
        assert db.lookup("anything") is None

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro.bench/1", "entries": {}}')
        with pytest.raises(TuneDBError):
            TuningDB.load(path)

    def test_unparseable_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(TuneDBError):
            TuningDB.load(path)

    def test_save_without_path_rejected(self):
        with pytest.raises(TuneDBError):
            TuningDB().save()


def test_default_db_path_follows_cache_dir(tmp_path):
    from repro.tune.cache import cache_scope

    with cache_scope(cache_dir=tmp_path):
        assert default_db_path() == tmp_path / "tuned.json"
    assert default_db_path(tmp_path / "other") == tmp_path / "other" / "tuned.json"
