"""Cache-key anatomy: stability, invalidation, runtime-binding exclusions."""

import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.tune.signature import cache_key, problem_signature, tuning_key


def make_problem(nx=8, bands=4, dt=1e-12, nsteps=3, **scenario_kw):
    scenario = hotspot_scenario(nx=nx, ny=nx, ndirs=4, n_freq_bands=bands,
                                dt=dt, nsteps=nsteps, **scenario_kw)
    problem, _ = build_bte_problem(scenario)
    return problem


class TestStability:
    def test_same_problem_same_key(self):
        assert cache_key(make_problem(), "cpu") == cache_key(make_problem(), "cpu")

    def test_key_is_hex_sha256(self):
        key = cache_key(make_problem(), "cpu")
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_signature_is_json_safe(self):
        import json

        json.dumps(problem_signature(make_problem(), "cpu"))


class TestInvalidation:
    def test_mesh_resolution_changes_key(self):
        assert cache_key(make_problem(nx=8), "cpu") != \
            cache_key(make_problem(nx=10), "cpu")

    def test_band_count_changes_key(self):
        assert cache_key(make_problem(bands=4), "cpu") != \
            cache_key(make_problem(bands=5), "cpu")

    def test_target_changes_key(self):
        problem = make_problem()
        assert cache_key(problem, "cpu") != cache_key(problem, "gpu")

    def test_assembly_order_changes_key(self):
        fused, blocked = make_problem(), make_problem()
        blocked.set_assembly_loops(["b", "cells", "d"])
        assert cache_key(fused, "cpu") != cache_key(blocked, "cpu")

    def test_partitioning_changes_key(self):
        serial, parted = make_problem(), make_problem()
        parted.set_partitioning("bands", 2, index="b")
        assert cache_key(serial, "cpu") != cache_key(parted, "cpu")

    def test_tuner_knobs_change_key(self):
        plain, chunked = make_problem(), make_problem()
        chunked.extra["gpu_kernel_chunks"] = 4
        assert cache_key(plain, "gpu") != cache_key(chunked, "gpu")


class TestRuntimeBoundExclusions:
    """dt/nsteps bind at solve time, so changing them must NOT invalidate."""

    def test_dt_not_in_key(self):
        assert cache_key(make_problem(dt=1e-12), "cpu") == \
            cache_key(make_problem(dt=2e-12), "cpu")

    def test_nsteps_not_in_key(self):
        assert cache_key(make_problem(nsteps=3), "cpu") == \
            cache_key(make_problem(nsteps=30), "cpu")

    def test_tuned_mode_flag_not_in_key(self):
        plain, tuned = make_problem(), make_problem()
        tuned.extra["tuned"] = True
        assert cache_key(plain, "cpu") == cache_key(tuned, "cpu")


class TestTuningKey:
    """The tuning key normalises the knobs out: one DB entry covers every
    configuration of the same underlying problem."""

    def test_invariant_under_assembly_order(self):
        fused, blocked = make_problem(), make_problem()
        blocked.set_assembly_loops(["d", "cells", "b"])
        assert tuning_key(fused) == tuning_key(blocked)

    def test_invariant_under_partition_strategy(self):
        a, b = make_problem(), make_problem()
        a.set_partitioning("bands", 2, index="b")
        b.set_partitioning("cells", 2)
        assert tuning_key(a) == tuning_key(b)

    def test_nparts_is_a_resource_not_a_knob(self):
        a, b = make_problem(), make_problem()
        a.set_partitioning("bands", 2, index="b")
        b.set_partitioning("bands", 4, index="b")
        assert tuning_key(a) != tuning_key(b)

    def test_problem_content_still_matters(self):
        assert tuning_key(make_problem(nx=8)) != tuning_key(make_problem(nx=10))
