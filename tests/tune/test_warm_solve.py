"""Acceptance: a warm-cache solve performs ZERO codegen/compile work.

The metrics registry is swapped fresh between the cold and the warm solve,
so the assertions below count only what the warm path did — the counters
are the proof, the registry-independent ``CacheStats`` the cross-check.
"""

import numpy as np

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.obs.metrics import metrics_run
from repro.tune.cache import cache_scope


def make_problem():
    scenario = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=3)
    problem, _ = build_bte_problem(scenario)
    return problem


def _total(registry, name):
    counter = registry.counter(name)
    return sum(cell[0] for cell in counter.series().values())


def test_warm_solve_zero_codegen_zero_compile():
    with cache_scope() as cache:
        with metrics_run() as cold_metrics:
            cold = make_problem().solve()
        assert _total(cold_metrics, "codegen_build_total") == 1
        assert _total(cold_metrics, "codegen_compile_total") == 1

        with metrics_run() as warm_metrics:
            warm = make_problem().solve()

    # the warm solve's registry saw no build and no compile() at all
    assert _total(warm_metrics, "codegen_build_total") == 0
    assert _total(warm_metrics, "codegen_compile_total") == 0
    assert warm_metrics.counter("codegen_cache_hits_total").value(
        layer="memory", target="cpu") == 1
    assert _total(warm_metrics, "codegen_cache_misses_total") == 0

    # registry-independent cross-check + the answer is still the answer
    assert cache.stats.builds == 1
    assert cache.stats.memory_hits == 1
    assert np.array_equal(cold.solution(), warm.solution())


def test_warm_disk_solve_skips_codegen(tmp_path):
    """Same acceptance across a simulated process boundary: the warm cache
    instance starts empty in memory and revives the artifact from disk."""
    with cache_scope(cache_dir=tmp_path):
        make_problem().solve()
    with cache_scope(cache_dir=tmp_path) as fresh:
        with metrics_run() as warm_metrics:
            make_problem().solve()
    assert _total(warm_metrics, "codegen_build_total") == 0
    assert fresh.stats.disk_hits == 1
    assert fresh.stats.builds == 0


def test_run_report_tuning_section_records_cache_outcome():
    with cache_scope():
        make_problem().generate()
        solver = make_problem().generate()
        solver.run()
    report = solver.run_report()
    assert report.tuning is not None
    assert report.tuning["cache"]["cache"] == "hit"
    assert report.to_dict()["tuning"]["cache"]["target"] == "cpu"
