"""SolverState: fields, initial conditions, callback adapters, buffers."""

import numpy as np
import pytest

from repro.codegen.state import SolverState
from repro.dsl.entities import CELL, VAR_ARRAY
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid
from repro.util.errors import CodegenError, ConfigError


def base_problem(with_equation=True):
    p = Problem("state-test")
    p.set_domain(2)
    p.set_steps(1e-3, 5)
    p.set_mesh(structured_grid((4, 4)))
    d = p.add_index("d", (1, 3))
    p.add_variable("I", VAR_ARRAY, CELL, index=[d])
    p.add_variable("aux")
    p.add_coefficient("c", np.array([1.0, 2.0, 3.0]), VAR_ARRAY, index=[d])
    for r in (1, 2, 3, 4):
        p.add_boundary("I", r, BCKind.NEUMANN0)
    if with_equation:
        p.set_conservation_form("I", "-I[d]")
    return p


class TestFields:
    def test_all_variables_get_fields(self):
        state = SolverState(base_problem())
        assert set(state.fields) == {"I", "aux"}
        assert state.fields["I"].data.shape == (3, 16)
        assert state.fields["aux"].data.shape == (1, 16)

    def test_u_property_aliases_unknown(self):
        state = SolverState(base_problem())
        state.u = np.full((3, 16), 2.0)
        assert np.allclose(state.fields["I"].data, 2.0)

    def test_unknown_field_error(self):
        state = SolverState(base_problem())
        with pytest.raises(CodegenError):
            state.field("nope")


class TestInitialConditions:
    def test_scalar_fill(self):
        p = base_problem()
        p.set_initial("I", 5.0)
        assert np.allclose(SolverState(p).u, 5.0)

    def test_per_component(self):
        p = base_problem()
        p.set_initial("I", np.array([1.0, 2.0, 3.0]))
        state = SolverState(p)
        assert np.allclose(state.u[1], 2.0)

    def test_full_array(self):
        p = base_problem()
        full = np.arange(48.0).reshape(3, 16)
        p.set_initial("I", full)
        assert np.allclose(SolverState(p).u, full)

    def test_callable_per_cell(self):
        p = base_problem()
        p.set_initial("I", lambda x: x[:, 0])
        state = SolverState(p)
        x = p.mesh.cell_centroids[:, 0]
        for comp in range(3):
            assert np.allclose(state.u[comp], x)

    def test_callable_full_shape(self):
        p = base_problem()
        p.set_initial("I", lambda x: np.tile(x[:, 1], (3, 1)))
        state = SolverState(p)
        assert np.allclose(state.u[0], p.mesh.cell_centroids[:, 1])

    def test_bad_shape_rejected(self):
        p = base_problem()
        p.set_initial("I", np.ones(7))
        with pytest.raises(ConfigError, match="matches neither"):
            SolverState(p)

    def test_callable_bad_shape_rejected(self):
        p = base_problem()
        p.set_initial("I", lambda x: np.ones(3))
        with pytest.raises(ConfigError):
            SolverState(p)


class TestCallbackAdapter:
    def test_dsl_string_arguments_resolved(self):
        p = base_problem(with_equation=False)
        seen = {}

        def probe(ctx, I_vals, c_vals, d_index, normals, number):
            seen["args"] = (I_vals, c_vals, d_index, normals, number)
            return np.zeros((3, ctx.nfaces))

        p.add_callback(probe, name="probe")
        # replace region 1 with the callback
        p.boundaries = [b for b in p.boundaries if b.region != 1]
        p.add_boundary("I", 1, BCKind.FLUX, "probe(I, c, d, normal, 42)")
        p.set_conservation_form("I", "-surface(upwind([c;c], I[d]))")
        state = SolverState(p)
        state.bset.flux_overrides(state.u, 0.0, 1e-3, state.extra)
        I_vals, c_vals, d_index, normals, number = seen["args"]
        nfaces = len(state.geom.region_faces[1])
        assert I_vals.shape == (3, nfaces)
        assert np.allclose(c_vals, [1.0, 2.0, 3.0])  # coefficient values
        assert d_index.name == "d"  # the Index entity
        assert normals.shape == (nfaces, 2)
        assert number == 42.0

    def test_unresolvable_argument_rejected(self):
        p = base_problem(with_equation=False)
        p.add_callback(lambda ctx, x: None, name="bad")
        p.boundaries = [b for b in p.boundaries if b.region != 1]
        p.add_boundary("I", 1, BCKind.FLUX, "bad(mystery)")
        p.set_conservation_form("I", "-I[d]")
        with pytest.raises(CodegenError, match="cannot resolve"):
            SolverState(p)


class TestScratchBuffers:
    def test_buffer_reused(self):
        state = SolverState(base_problem())
        a = state.buffer("flux", (3, 10))
        b = state.buffer("flux", (3, 10))
        assert a is b

    def test_buffer_reallocated_on_shape_change(self):
        state = SolverState(base_problem())
        a = state.buffer("flux", (3, 10))
        b = state.buffer("flux", (3, 20))
        assert a is not b
        assert b.shape == (3, 20)

    def test_independent_names(self):
        state = SolverState(base_problem())
        assert state.buffer("a", (2,)) is not state.buffer("b", (2,))


class TestComponentBlocks:
    def test_fused_default(self):
        state = SolverState(base_problem())
        assert state.comp_blocks == [slice(None)]

    def test_blocks_cover_all_components(self):
        p = base_problem()
        p.set_assembly_loops(["d", "cells"])
        state = SolverState(p)
        covered = np.concatenate(state.comp_blocks)
        assert sorted(covered.tolist()) == [0, 1, 2]
