"""In-situ diagnostics: recorders, line probes, wall fluxes."""

import numpy as np
import pytest

from repro.bte.angular import uniform_directions_2d
from repro.bte.dispersion import silicon_bands
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario, build_bte_problem
from repro.codegen.probes import LineProbe, TransientRecorder, wall_heat_flux
from repro.util.errors import ConfigError


class TestTransientRecorder:
    def test_records_on_interval(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        rec = TransientRecorder(lambda s: float(s.extra["T"].max()), every=2)
        problem.add_post_step(rec, name="record_Tmax")
        problem.solve()
        # post-step runs after step_index increments: steps 1..5, every 2
        assert len(rec.times) == tiny_scenario.nsteps // 2
        times, values = rec.as_arrays()
        assert np.all(np.diff(times) > 0)
        assert np.all(values >= tiny_scenario.T0 - 1e-9)

    def test_works_on_distributed_target(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        rec = TransientRecorder(lambda s: float(s.u.sum()), every=1)
        problem.add_post_step(rec, name="rec")
        problem.set_partitioning("bands", 2, index="b")
        problem.solve()
        # two ranks each record every step
        assert len(rec.times) == 2 * tiny_scenario.nsteps

    def test_interval_validated(self):
        with pytest.raises(ConfigError):
            TransientRecorder(lambda s: 0.0, every=0)

    def test_reset(self):
        rec = TransientRecorder(lambda s: 1.0)
        rec.times.append(0.0)
        rec.reset()
        assert rec.times == []


class TestLineProbe:
    def test_samples_temperature_profile(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        solver = problem.solve()
        lp = LineProbe(
            (tiny_scenario.lx / 2, 0.0),
            (tiny_scenario.lx / 2, tiny_scenario.ly),
            npoints=8,
        )
        profile = lp(solver.state)
        assert profile.shape == (8,)
        assert np.all(np.isfinite(profile))

    def test_custom_field(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        solver = problem.solve()
        lp = LineProbe((0.0, 0.0), (tiny_scenario.lx, tiny_scenario.ly),
                       npoints=5, field=lambda s: s.u[0])
        assert lp(solver.state).shape == (5,)

    def test_dimension_mismatch(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        solver = problem.generate()
        lp = LineProbe((0.0, 0.0, 0.0), (1.0, 1.0, 1.0), npoints=4)
        with pytest.raises(ConfigError):
            lp(solver.state)

    def test_npoints_validated(self):
        with pytest.raises(ConfigError):
            LineProbe((0, 0), (1, 1), npoints=1)


class TestWallHeatFlux:
    @pytest.fixture(scope="class")
    def steady_slab(self):
        model = BTEModel(bands=silicon_bands(1),
                         directions=uniform_directions_2d(16))
        L = 50e-9
        scenario = BTEScenario(
            name="flux-balance", nx=12, ny=2, lx=L, ly=L / 6,
            ndirs=16, n_freq_bands=1,
            dt=2e-13, nsteps=700,
            T0=95.0, T_hot=105.0, sigma=1e3,
            cold_regions=(2,), hot_regions=(1,), symmetry_regions=(3, 4),
        )
        problem, _ = build_bte_problem(scenario, model=model)
        solver = problem.solve()
        return scenario, model, solver

    def test_hot_wall_injects_cold_wall_drains(self, steady_slab):
        scenario, model, solver = steady_slab
        q_hot = wall_heat_flux(solver.state, model, region=1)
        q_cold = wall_heat_flux(solver.state, model, region=2)
        assert q_hot < 0  # energy enters through the hot wall
        assert q_cold > 0  # and leaves through the cold wall

    def test_steady_balance(self, steady_slab):
        scenario, model, solver = steady_slab
        q_hot = wall_heat_flux(solver.state, model, region=1)
        q_cold = wall_heat_flux(solver.state, model, region=2)
        assert abs(q_hot + q_cold) < 0.02 * abs(q_cold)

    def test_symmetry_walls_carry_nothing(self, steady_slab):
        scenario, model, solver = steady_slab
        for region in (3, 4):
            q = wall_heat_flux(solver.state, model, region)
            assert abs(q) < 1e-9 * abs(
                wall_heat_flux(solver.state, model, region=2)
            ) + 1e-12

    def test_unknown_region(self, steady_slab):
        _, model, solver = steady_slab
        with pytest.raises(ConfigError):
            wall_heat_flux(solver.state, model, region=9)
