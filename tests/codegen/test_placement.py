"""Min-cut placement optimiser unit tests."""

import math

import pytest

from repro.codegen.placement import (
    DataEdge,
    Task,
    TaskGraph,
    optimize_placement,
    plan_transfers,
)
from repro.codegen.placement.transfers import ArrayUse
from repro.gpu.spec import A6000
from repro.util.errors import CodegenError


def graph_with(*tasks, edges=()):
    g = TaskGraph()
    for t in tasks:
        g.add_task(t)
    for src, dst, nbytes in edges:
        g.add_edge(src, dst, nbytes)
    return g


class TestBasicDecisions:
    def test_single_gpu_friendly_task_goes_gpu(self):
        g = graph_with(Task("work", cost_cpu=1.0, cost_gpu=0.01))
        plan = optimize_placement(g, A6000)
        assert plan.device["work"] == "gpu"
        assert plan.objective_seconds == pytest.approx(0.01)

    def test_single_cpu_friendly_task_stays_cpu(self):
        g = graph_with(Task("work", cost_cpu=0.01, cost_gpu=1.0))
        assert optimize_placement(g, A6000).device["work"] == "cpu"

    def test_pinned_cpu_respected_even_if_gpu_cheaper(self):
        g = graph_with(Task("callback", cost_cpu=1.0, cost_gpu=1e-6, pinned="cpu"))
        assert optimize_placement(g, A6000).device["callback"] == "cpu"

    def test_pinned_gpu_respected(self):
        g = graph_with(Task("kernel", cost_cpu=1e-6, cost_gpu=1.0, pinned="gpu"))
        assert optimize_placement(g, A6000).device["kernel"] == "gpu"

    def test_task_without_gpu_cost_stays_cpu(self):
        g = graph_with(Task("hostonly", cost_cpu=5.0))
        assert optimize_placement(g, A6000).device["hostonly"] == "cpu"


class TestDataMovementTradeoffs:
    def test_small_gain_not_worth_huge_transfer(self):
        """Offloading saves 1 ms but would move 1 GB/step: stay on CPU."""
        g = graph_with(
            Task("kernel", cost_cpu=0.002, cost_gpu=0.001),
            Task("post", cost_cpu=0.01, pinned="cpu"),
            edges=[("kernel", "post", 1e9)],
        )
        plan = optimize_placement(g, A6000)
        assert plan.device["kernel"] == "cpu"
        assert plan.bytes_moved_per_step == 0

    def test_large_gain_worth_the_transfer(self):
        """Offloading saves ~1 s and only moves 1 MB: go to the GPU."""
        g = graph_with(
            Task("kernel", cost_cpu=1.0, cost_gpu=0.001),
            Task("post", cost_cpu=0.01, pinned="cpu"),
            edges=[("kernel", "post", 1e6)],
        )
        plan = optimize_placement(g, A6000)
        assert plan.device["kernel"] == "gpu"
        assert plan.bytes_moved_per_step == 1e6
        assert len(plan.cut_edges) == 1

    def test_coupled_tasks_move_together(self):
        """Two tasks exchanging a lot of data co-locate on the GPU even if
        one of them is individually indifferent."""
        g = graph_with(
            Task("a", cost_cpu=1.0, cost_gpu=0.01),
            Task("b", cost_cpu=0.011, cost_gpu=0.01),  # nearly indifferent
            edges=[("a", "b", 5e8)],
        )
        plan = optimize_placement(g, A6000)
        assert plan.device["a"] == "gpu"
        assert plan.device["b"] == "gpu"

    def test_objective_counts_execution_and_cut(self):
        g = graph_with(
            Task("kernel", cost_cpu=1.0, cost_gpu=0.1),
            Task("post", cost_cpu=0.2, pinned="cpu"),
            edges=[("kernel", "post", 24e6)],  # 1 ms on the PCIe model
        )
        plan = optimize_placement(g, A6000)
        transfer = A6000.pcie_latency_s + 24e6 / A6000.pcie_bw_bytes()
        assert plan.objective_seconds == pytest.approx(0.1 + 0.2 + transfer, rel=1e-6)


class TestGraphValidation:
    def test_duplicate_task(self):
        g = graph_with(Task("a", 1.0))
        with pytest.raises(CodegenError):
            g.add_task(Task("a", 1.0))

    def test_edge_unknown_task(self):
        g = graph_with(Task("a", 1.0))
        with pytest.raises(CodegenError):
            g.add_edge("a", "b", 100)

    def test_negative_cost(self):
        with pytest.raises(CodegenError):
            Task("bad", cost_cpu=-1.0)

    def test_negative_bytes(self):
        g = graph_with(Task("a", 1.0), Task("b", 1.0))
        with pytest.raises(CodegenError):
            g.add_edge("a", "b", -5)

    def test_bad_pin(self):
        with pytest.raises(CodegenError):
            Task("bad", 1.0, pinned="fpga")

    def test_gpu_pin_needs_gpu_cost(self):
        g = graph_with(Task("bad", cost_cpu=1.0, cost_gpu=math.inf, pinned="gpu"))
        with pytest.raises(CodegenError):
            optimize_placement(g, A6000)


class TestTransferPlanning:
    def _plan(self):
        g = graph_with(
            Task("kernel", cost_cpu=1.0, cost_gpu=0.001),
            Task("post", cost_cpu=0.01, pinned="cpu"),
            edges=[("kernel", "post", 1e6)],
        )
        return optimize_placement(g, A6000)

    def test_static_vs_per_step(self):
        plan = self._plan()
        arrays = [
            ArrayUse("geometry", 1e6, readers=("kernel",), writers=(),
                     mutated_each_step=False),
            ArrayUse("Io", 1e5, readers=("kernel",), writers=("post",)),
            ArrayUse("u", 1e6, readers=("kernel", "post"), writers=("kernel", "post")),
            ArrayUse("log", 100, readers=("post",), writers=("post",)),
        ]
        tp = plan_transfers(plan, arrays)
        assert tp.static_h2d == ["geometry"]
        assert "Io" in tp.h2d_each_step
        assert "u" in tp.d2h_each_step and "u" in tp.h2d_each_step
        assert tp.host_only == ["log"]
        assert tp.bytes_d2h_per_step == 1e6
        assert tp.bytes_h2d_per_step == 1e5 + 1e6

    def test_device_only_intermediate(self):
        plan = self._plan()
        arrays = [ArrayUse("scratch", 1e5, readers=("kernel",), writers=("kernel",))]
        tp = plan_transfers(plan, arrays)
        assert tp.device_only == ["scratch"]

    def test_report_strings(self):
        plan = self._plan()
        assert "placement plan" in plan.report()
        tp = plan_transfers(plan, [ArrayUse("u", 8.0, readers=("kernel",), writers=("post",))])
        assert "every step H2D" in tp.report()
