"""Checkpoint/restart of solver state."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem
from repro.util.errors import ConfigError


class TestCheckpointRestart:
    def test_resume_is_bit_exact(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "mid.npz"

        # reference: straight run of 2 * nsteps
        p_ref, _ = build_bte_problem(tiny_scenario)
        s_ref = p_ref.generate()
        s_ref.run(tiny_scenario.nsteps)
        s_ref.run(tiny_scenario.nsteps)

        # checkpointed: run, save, rebuild, restore, run
        p1, _ = build_bte_problem(tiny_scenario)
        s1 = p1.generate()
        s1.run(tiny_scenario.nsteps)
        s1.state.save_checkpoint(ckpt)

        p2, _ = build_bte_problem(tiny_scenario)
        s2 = p2.generate()
        s2.state.restore_checkpoint(ckpt)
        assert s2.state.step_index == tiny_scenario.nsteps
        s2.run(tiny_scenario.nsteps)

        assert np.array_equal(s2.solution(), s_ref.solution())
        assert np.array_equal(s2.state.extra["T"], s_ref.state.extra["T"])
        assert s2.state.time == pytest.approx(s_ref.state.time)

    def test_all_fields_roundtrip(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "all.npz"
        p, _ = build_bte_problem(tiny_scenario)
        solver = p.generate()
        solver.run(3)
        before = {n: f.data.copy() for n, f in solver.state.fields.items()}
        solver.state.save_checkpoint(ckpt)
        solver.run(2)  # mutate

        p2, _ = build_bte_problem(tiny_scenario)
        s2 = p2.generate()
        s2.state.restore_checkpoint(ckpt)
        for name, data in before.items():
            assert np.array_equal(s2.state.fields[name].data, data), name

    def test_shape_mismatch_rejected(self, tiny_scenario, tmp_path):
        from repro.bte.problem import hotspot_scenario

        ckpt = tmp_path / "bad.npz"
        p, _ = build_bte_problem(tiny_scenario)
        p.generate().state.save_checkpoint(ckpt)

        other = hotspot_scenario(nx=6, ny=6, ndirs=8, n_freq_bands=5,
                                 dt=1e-12, nsteps=2)
        p2, _ = build_bte_problem(other)
        s2 = p2.generate()
        with pytest.raises(ConfigError, match="different problem"):
            s2.state.restore_checkpoint(ckpt)

    def test_missing_field_rejected(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "partial.npz"
        np.savez(ckpt, __time=np.array(0.0), __step_index=np.array(0))
        p, _ = build_bte_problem(tiny_scenario)
        solver = p.generate()
        with pytest.raises(ConfigError, match="lacks field"):
            solver.state.restore_checkpoint(ckpt)


class TestCheckpointRobustness:
    """Atomic writes + typed corruption errors (the elastic runtime trusts
    every on-disk checkpoint it finds when composing a consistent cut)."""

    def test_truncated_file_raises_typed_error(self, tiny_scenario, tmp_path):
        from repro.util.errors import CheckpointCorruptError

        ckpt = tmp_path / "trunc.npz"
        p, _ = build_bte_problem(tiny_scenario)
        solver = p.generate()
        solver.run(2)
        solver.state.save_checkpoint(ckpt)

        blob = ckpt.read_bytes()
        ckpt.write_bytes(blob[: len(blob) // 2])  # torn write / partial copy

        p2, _ = build_bte_problem(tiny_scenario)
        with pytest.raises(CheckpointCorruptError) as ei:
            p2.generate().state.restore_checkpoint(ckpt)
        assert ei.value.code == "RPR316"
        assert "corrupt or truncated" in str(ei.value)

    def test_save_is_atomic_no_tmp_left_behind(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "atomic.npz"
        p, _ = build_bte_problem(tiny_scenario)
        p.generate().state.save_checkpoint(ckpt)
        assert ckpt.exists()
        leftovers = [f for f in tmp_path.iterdir() if f.name != ckpt.name]
        assert leftovers == []

    def test_failed_write_preserves_previous_checkpoint(
            self, tiny_scenario, tmp_path, monkeypatch):
        """A crash mid-save must not clobber the last good checkpoint."""
        ckpt = tmp_path / "keep.npz"
        p, _ = build_bte_problem(tiny_scenario)
        solver = p.generate()
        solver.run(1)
        solver.state.save_checkpoint(ckpt)
        good = ckpt.read_bytes()

        def torn_savez(fh, **payload):
            fh.write(b"\x50\x4b\x03\x04half-a-zip")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", torn_savez)
        solver.run(1)
        with pytest.raises(OSError):
            solver.state.save_checkpoint(ckpt)
        assert ckpt.read_bytes() == good  # untouched
        assert list(tmp_path.glob("*.tmp")) == []  # tmp cleaned up
