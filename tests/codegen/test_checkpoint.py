"""Checkpoint/restart of solver state."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem
from repro.util.errors import ConfigError


class TestCheckpointRestart:
    def test_resume_is_bit_exact(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "mid.npz"

        # reference: straight run of 2 * nsteps
        p_ref, _ = build_bte_problem(tiny_scenario)
        s_ref = p_ref.generate()
        s_ref.run(tiny_scenario.nsteps)
        s_ref.run(tiny_scenario.nsteps)

        # checkpointed: run, save, rebuild, restore, run
        p1, _ = build_bte_problem(tiny_scenario)
        s1 = p1.generate()
        s1.run(tiny_scenario.nsteps)
        s1.state.save_checkpoint(ckpt)

        p2, _ = build_bte_problem(tiny_scenario)
        s2 = p2.generate()
        s2.state.restore_checkpoint(ckpt)
        assert s2.state.step_index == tiny_scenario.nsteps
        s2.run(tiny_scenario.nsteps)

        assert np.array_equal(s2.solution(), s_ref.solution())
        assert np.array_equal(s2.state.extra["T"], s_ref.state.extra["T"])
        assert s2.state.time == pytest.approx(s_ref.state.time)

    def test_all_fields_roundtrip(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "all.npz"
        p, _ = build_bte_problem(tiny_scenario)
        solver = p.generate()
        solver.run(3)
        before = {n: f.data.copy() for n, f in solver.state.fields.items()}
        solver.state.save_checkpoint(ckpt)
        solver.run(2)  # mutate

        p2, _ = build_bte_problem(tiny_scenario)
        s2 = p2.generate()
        s2.state.restore_checkpoint(ckpt)
        for name, data in before.items():
            assert np.array_equal(s2.state.fields[name].data, data), name

    def test_shape_mismatch_rejected(self, tiny_scenario, tmp_path):
        from repro.bte.problem import hotspot_scenario

        ckpt = tmp_path / "bad.npz"
        p, _ = build_bte_problem(tiny_scenario)
        p.generate().state.save_checkpoint(ckpt)

        other = hotspot_scenario(nx=6, ny=6, ndirs=8, n_freq_bands=5,
                                 dt=1e-12, nsteps=2)
        p2, _ = build_bte_problem(other)
        s2 = p2.generate()
        with pytest.raises(ConfigError, match="different problem"):
            s2.state.restore_checkpoint(ckpt)

    def test_missing_field_rejected(self, tiny_scenario, tmp_path):
        ckpt = tmp_path / "partial.npz"
        np.savez(ckpt, __time=np.array(0.0), __step_index=np.array(0))
        p, _ = build_bte_problem(tiny_scenario)
        solver = p.generate()
        with pytest.raises(ConfigError, match="lacks field"):
            solver.state.restore_checkpoint(ckpt)
