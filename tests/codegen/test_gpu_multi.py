"""Multi-GPU distributed target (the paper's Fig. 7 configuration)."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.util.errors import CodegenError


@pytest.fixture(scope="module")
def case():
    scenario = hotspot_scenario(nx=10, ny=10, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=5)
    problem, _ = build_bte_problem(scenario)
    ref = problem.solve()
    return scenario, ref.solution(), ref.state.extra["T"]


class TestCorrectness:
    @pytest.mark.parametrize("ndevices", [2, 4, 7])
    def test_matches_serial(self, case, ndevices):
        scenario, u_ref, T_ref = case
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.set_partitioning("bands", ndevices, index="b")
        solver = problem.solve()
        assert solver.target_name == "gpu_distributed"
        scale = np.max(np.abs(u_ref))
        assert np.max(np.abs(solver.solution() - u_ref)) < 1e-12 * scale
        assert np.allclose(solver.state.extra["T"], T_ref, atol=1e-9)

    def test_requires_band_partitioning(self, case):
        scenario, _, _ = case
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.set_partitioning("cells", 2)
        with pytest.raises(CodegenError, match="band partitioning"):
            problem.generate(target="gpu_distributed")


class TestExecutionStructure:
    @pytest.fixture(scope="class")
    def solved(self, case):
        scenario, _, _ = case
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.set_partitioning("bands", 3, index="b")
        solver = problem.solve()
        return scenario, solver

    def test_one_device_per_rank(self, solved):
        scenario, solver = solved
        profiles = solver.state.device_profiles
        assert len(profiles) == 3
        for rep in profiles:
            assert rep.n_launches == scenario.nsteps

    def test_phase_accounting(self, solved):
        _, solver = solved
        phases = solver.state.spmd_result.phase_breakdown()
        assert phases["solve for intensity"] > 0
        assert phases["temperature update"] > 0
        assert phases["communication"] > 0

    def test_no_point_to_point_messages(self, solved):
        """Band partitioning across GPUs: only the reduction couples ranks
        (Sec. III-E's argument for the strategy)."""
        _, solver = solved
        assert all(
            s.messages_sent == 0 for s in solver.state.spmd_result.stats
        )

    def test_kernel_is_band_restricted(self, solved):
        _, solver = solved
        assert "sel=slice(None)" in solver.source
        assert "len(own) * NCELLS" in solver.source

    def test_auto_target_selection(self, case):
        scenario, _, _ = case
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.set_partitioning("bands", 2, index="b")
        solver = problem.generate()  # no explicit target
        assert solver.target_name == "gpu_distributed"
