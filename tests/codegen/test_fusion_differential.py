"""Differential proof: fused kernels are bit-identical on every target.

One small BTE hotspot problem runs through all six execution targets —
interpreted, serial CPU, cell-distributed SPMD, hybrid GPU, 2-rank
multi-GPU, and the FEM pipeline (on its own heat problem) — once with the
classic per-expression emission and once with fused vector programs.  The
two solutions must agree **bit for bit** (``np.array_equal``, no
tolerance): fusion is an execution strategy, not an approximation.

The faulted half re-runs fused solves under the resilience harness's
fault specs (message drops, rank stalls, device OOM with GPU→CPU
degradation) and demands the same bitwise agreement with the unfused run
under the identical fault schedule — fusion must commute with fault
recovery and placement degradation.
"""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.runtime.faults import fault_run
from repro.runtime.resilience import get_resilience_log


def scenario():
    return hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                            dt=1e-12, nsteps=4)


def use_gpu(problem):
    problem.enable_gpu()
    problem.extra["gpu_force_offload"] = True


def use_gpu_multi(problem):
    use_gpu(problem)
    problem.set_partitioning("bands", 2, index="b")


def solve_bte(fusion, configure=None, target=None, fault_spec=None, seed=0):
    problem, _ = build_bte_problem(scenario())
    if configure is not None:
        configure(problem)
    problem.extra["fusion"] = fusion
    if fault_spec is None:
        solver = problem.solve(target=target)
    else:
        with fault_run(fault_spec, seed=seed):
            solver = problem.solve(target=target)
    return solver


def assert_bit_identical(fused, unfused):
    assert np.array_equal(fused.solution(), unfused.solution()), \
        "fused solution differs bitwise from unfused"
    assert np.array_equal(fused.state.extra["T"], unfused.state.extra["T"]), \
        "fused temperature field differs bitwise from unfused"


def assert_actually_fused(solver):
    info = getattr(solver, "fusion_info", None)
    assert info and info["mode"] == "on", "fusion did not engage"
    assert info["programs"], "no fused programs were compiled"


#: (configure, explicit target) per execution target, as in the
#: cross-target equivalence suite
TARGETS = [
    pytest.param(None, "interp", id="interpreted"),
    pytest.param(None, "cpu", id="cpu_serial"),
    pytest.param(lambda p: p.set_partitioning("cells", 2), None,
                 id="cpu_distributed"),
    pytest.param(use_gpu, None, id="gpu_hybrid"),
    pytest.param(use_gpu_multi, None, id="gpu_multi"),
]


@pytest.fixture(scope="module")
def unfused():
    """Unfused baselines, one solve per target, shared across the module."""
    cache = {}

    def get(key, configure=None, target=None):
        if key not in cache:
            cache[key] = solve_bte("off", configure, target)
        return cache[key]

    return get


class TestFaultFree:
    @pytest.mark.parametrize("configure,target", TARGETS)
    def test_fused_bit_identical(self, unfused, configure, target, request):
        key = request.node.callspec.id
        fused = solve_bte("on", configure, target)
        assert_actually_fused(fused)
        assert_bit_identical(fused, unfused(key, configure, target))

    def test_auto_mode_bit_identical_serial(self, unfused):
        fused = solve_bte("auto", target="cpu")
        assert np.array_equal(fused.solution(),
                              unfused("cpu_serial", None, "cpu").solution())


class TestFaulted:
    """Fused + injected faults == unfused + the same faults, bitwise."""

    def test_fused_halo_drop_and_dup(self, unfused):
        configure = TARGETS[2].values[0]  # cells-2 partitioning
        spec = "drop:rank=0,dest=1,tag=7,at=2;dup:rank=1,dest=0,tag=7,at=3"
        fused = solve_bte("on", configure, fault_spec=spec, seed=1)
        log = get_resilience_log()
        assert log.injected == {"drop": 1, "dup": 1}
        assert_actually_fused(fused)
        # message recovery is lossless, so the faulted fused run matches
        # the *fault-free* unfused baseline bit for bit
        assert_bit_identical(fused, unfused("cpu_distributed", configure))

    def test_fused_rank_stall_multi_gpu(self, unfused):
        spec = "stall:rank=1,at=2,delay=5e-4"
        fused = solve_bte("on", use_gpu_multi, fault_spec=spec, seed=2)
        log = get_resilience_log()
        assert log.injected == {"stall": 1}
        assert_actually_fused(fused)
        # stalls perturb virtual time only — data is untouched
        assert_bit_identical(fused, unfused("gpu_multi", use_gpu_multi))

    def test_fused_oom_degrades_gpu_to_cpu(self):
        """Device OOM forces the interior kernel onto the CPU mid-run; the
        fused program must ride along through the degraded placement and
        still match the unfused run under the identical fault schedule."""
        spec = "oom:device=gpu0,op=h2d,at=1"
        fused = solve_bte("on", use_gpu, fault_spec=spec, seed=3)
        log = get_resilience_log()
        assert log.injected == {"oom": 1}
        assert log.degraded and log.degraded[0]["to"] == "cpu"
        assert_actually_fused(fused)
        unfused_faulted = solve_bte("off", use_gpu, fault_spec=spec, seed=3)
        assert_bit_identical(fused, unfused_faulted)


class TestFEM:
    """The sixth target: the FEM pipeline has its own assembly loop and
    binds fused programs by node, not by emitted source fragment."""

    @staticmethod
    def solve_fem(fusion):
        from repro.dsl.entities import NODE
        from repro.dsl.problem import Problem
        from repro.fvm.boundary import BCKind
        from repro.mesh.grid import structured_grid

        n, D = 12, 0.7
        dt = 0.2 * (1.0 / n) ** 2 / D
        p = Problem(f"fem-fusion-{fusion}")
        p.set_domain(1)
        p.set_solver_type("FEM")
        p.set_steps(dt, 10)
        p.set_mesh(structured_grid((n,)))
        p.add_variable("u", location=NODE)
        p.add_coefficient("k", D)
        p.add_coefficient(
            "f", lambda x: D * np.pi ** 2 * np.sin(np.pi * x[:, 0]))
        p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
        p.add_boundary("u", 2, BCKind.DIRICHLET, 0.0)
        p.set_initial("u", lambda x: np.sin(np.pi * x[:, 0]))
        p.set_weak_form("u", "-k*dot(grad(u), grad(v)) + f*v")
        p.extra["fusion"] = fusion
        return p.solve()

    def test_fused_bit_identical(self):
        fused = self.solve_fem("on")
        unfused = self.solve_fem("off")
        assert_actually_fused(fused)
        assert np.array_equal(fused.solution(), unfused.solution())
