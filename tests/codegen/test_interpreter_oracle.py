"""The interpreter oracle: generated code must match direct symbolic
evaluation on arbitrary equations.

Hypothesis composes random (linear, well-posed) conservation laws —
mixtures of reaction terms, advection with random velocities, diffusion,
math functions of coefficients — and both execution paths must produce the
same trajectories to round-off.  This pins the expression emitter against
an independent implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid


def build_problem(terms: list[str], seed: int, nsteps: int = 4) -> Problem:
    rng = np.random.default_rng(seed)
    p = Problem(f"oracle-{seed}")
    p.set_domain(2)
    p.set_steps(1e-3, nsteps)
    p.set_mesh(structured_grid((5, 4)))
    p.add_variable("u")
    p.add_coefficient("k", float(rng.uniform(0.1, 2.0)))
    p.add_coefficient("bx", float(rng.uniform(-1.0, 1.0)))
    p.add_coefficient("by", float(rng.uniform(-1.0, 1.0)))
    p.add_coefficient("D", float(rng.uniform(0.01, 0.5)))
    p.add_coefficient("q", lambda x: np.sin(3 * x[:, 0]) + x[:, 1])
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.DIRICHLET, float(rng.uniform(-1, 1)))
    p.set_initial("u", lambda x: np.cos(2 * x[:, 0]) * np.sin(x[:, 1]) + 1.5)
    p.set_conservation_form("u", " + ".join(terms))
    return p


TERM_POOL = [
    "-k*u",
    "q",
    "0.3*u",
    "-surface(upwind([bx;by], u))",
    "surface(diffuse(D, u))",
    "-surface(average(u))*0 + exp(0)*0",  # exercises math funcs, value 0
    "abs(k)*0.1",
    "-k*u*u*0 + sqrt(k)",  # sqrt of coefficient
]


@given(
    picks=st.lists(st.integers(min_value=0, max_value=len(TERM_POOL) - 1),
                   min_size=1, max_size=4, unique=True),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_generated_matches_interpreted(picks, seed):
    terms = [TERM_POOL[i] for i in picks]
    p1 = build_problem(terms, seed)
    gen = p1.generate(target="cpu")
    gen.run()
    p2 = build_problem(terms, seed)
    interp = p2.generate(target="interp")
    interp.run()
    a, b = gen.solution(), interp.solution()
    scale = max(np.abs(a).max(), 1.0)
    np.testing.assert_allclose(a, b, rtol=0, atol=1e-12 * scale)


def build_indexed_problem(nd: int, nb: int, seed: int, nsteps: int = 3) -> Problem:
    """A BTE-shaped random problem: indexed unknown, per-index coefficients,
    known variables, relaxation + advection."""
    rng = np.random.default_rng(seed)
    p = Problem(f"oracle-idx-{seed}")
    p.set_domain(2)
    p.set_steps(1e-3, nsteps)
    p.set_mesh(structured_grid((4, 4)))
    d = p.add_index("d", (1, nd))
    b = p.add_index("b", (1, nb))
    from repro.dsl.entities import CELL, VAR_ARRAY

    p.add_variable("I", VAR_ARRAY, CELL, index=[d, b])
    p.add_variable("Io", VAR_ARRAY, CELL, index=[b])
    p.add_coefficient("Sx", rng.uniform(-1, 1, nd), VAR_ARRAY, index=[d])
    p.add_coefficient("Sy", rng.uniform(-1, 1, nd), VAR_ARRAY, index=[d])
    p.add_coefficient("vg", rng.uniform(0.2, 1.0, nb), VAR_ARRAY, index=[b])
    p.add_coefficient("tau", rng.uniform(0.5, 2.0, nb), VAR_ARRAY, index=[b])
    for r in (1, 2, 3, 4):
        p.add_boundary("I", r, BCKind.NEUMANN0)
    init = rng.uniform(0.5, 1.5, (nd * nb, 16))
    p.initial_values["I"] = init
    p.initial_values["Io"] = rng.uniform(0.5, 1.5, (nb, 16))
    p.set_conservation_form(
        "I",
        "(Io[b] - I[d,b]) / tau[b] - surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))",
    )
    return p


@given(
    nd=st.integers(min_value=1, max_value=4),
    nb=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_indexed_generated_matches_interpreted(nd, nb, seed):
    g = build_indexed_problem(nd, nb, seed).generate(target="cpu")
    g.run()
    it = build_indexed_problem(nd, nb, seed).generate(target="interp")
    it.run()
    a, b = g.solution(), it.solution()
    scale = max(np.abs(a).max(), 1.0)
    np.testing.assert_allclose(a, b, rtol=0, atol=1e-12 * scale)


class TestInterpreterTarget:
    def test_source_is_a_stub(self):
        p = build_problem(["-k*u"], 0)
        solver = p.generate(target="interp")
        assert "interpret_rhs" in solver.source
        assert "compute_rhs" not in solver.source

    def test_bte_through_interpreter(self, tiny_scenario):
        """The full BTE (indexed unknown, callbacks, symmetry) also agrees."""
        from repro.bte.problem import build_bte_problem

        p1, _ = build_bte_problem(tiny_scenario)
        u_gen = p1.solve().solution()
        p2, _ = build_bte_problem(tiny_scenario)
        solver = p2.generate(target="interp")
        solver.run()
        scale = np.abs(u_gen).max()
        assert np.abs(solver.solution() - u_gen).max() < 1e-12 * scale

    def test_rejects_rk(self):
        from repro.util.errors import CodegenError

        p = build_problem(["-k*u"], 1)
        p.set_stepper("rk2")
        with pytest.raises(CodegenError, match="forward Euler"):
            p.generate(target="interp")

    def test_rejects_order2(self):
        from repro.util.errors import CodegenError

        p = build_problem(["-surface(upwind([bx;by], u))"], 2)
        p.set_flux_order(2)
        with pytest.raises(CodegenError, match="order-1"):
            p.generate(target="interp")
