"""Target validation guards: unsupported configurations fail loudly."""

import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.util.errors import CodegenError


@pytest.fixture
def scenario():
    return hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4,
                            dt=1e-12, nsteps=2)


class TestStepperGuards:
    """Only the CPU serial target implements RK schemes; the paper's
    distributed/GPU paths are forward-Euler and must say so instead of
    silently integrating with the wrong scheme."""

    def test_cpu_accepts_rk4(self, scenario):
        problem, _ = build_bte_problem(scenario)
        problem.set_stepper("rk4")
        solver = problem.generate()
        assert solver.target_name == "cpu"
        solver.run(1)

    def test_gpu_rejects_rk(self, scenario):
        problem, _ = build_bte_problem(scenario)
        problem.set_stepper("rk2")
        problem.enable_gpu()
        with pytest.raises(CodegenError, match="forward-Euler"):
            problem.generate()

    def test_distributed_rejects_rk(self, scenario):
        problem, _ = build_bte_problem(scenario)
        problem.set_stepper("rk4")
        problem.set_partitioning("bands", 2, index="b")
        with pytest.raises(CodegenError, match="forward-Euler"):
            problem.generate()

    def test_gpu_multi_rejects_rk(self, scenario):
        problem, _ = build_bte_problem(scenario)
        problem.set_stepper("rk2")
        problem.enable_gpu()
        problem.set_partitioning("bands", 2, index="b")
        with pytest.raises(CodegenError, match="forward-Euler"):
            problem.generate()


class TestTargetNames:
    def test_unknown_target(self):
        from repro.codegen import make_target

        with pytest.raises(CodegenError, match="unknown codegen target"):
            make_target("fpga")

    def test_explicit_target_override(self, scenario):
        problem, _ = build_bte_problem(scenario)
        solver = problem.generate(target="cpu")
        assert solver.target_name == "cpu"


class TestMultiGPUPreStep:
    def test_pre_step_callbacks_run_on_every_rank(self, scenario):
        import threading

        counts = {"n": 0}
        lock = threading.Lock()

        def tick(state):
            with lock:
                counts["n"] += 1

        problem, _ = build_bte_problem(scenario)
        problem.add_pre_step(tick)
        problem.enable_gpu()
        problem.set_partitioning("bands", 2, index="b")
        problem.solve()
        assert counts["n"] == 2 * scenario.nsteps  # every rank, every step
