"""Common-subexpression hoisting in emitted code."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.codegen.emit import ExprEmitter
from repro.ir.lowering import lower_conservation_form


@pytest.fixture
def bte_solver(tiny_scenario):
    problem, _ = build_bte_problem(tiny_scenario)
    return problem.generate()


class TestHoisting:
    def test_projected_velocity_hoisted_once(self, bte_solver):
        """The upwind conditional references v.n three times; the generated
        source must compute it once."""
        src = bte_solver.source
        defs = [ln for ln in src.splitlines() if ln.strip().startswith("cse_s0 =")]
        assert len(defs) == 1
        # and the flux line reuses the temp instead of re-deriving it
        flux_line = next(ln for ln in src.splitlines() if "flux[sel] =" in ln)
        assert flux_line.count("cse_s0") == 3
        assert "normal_x" not in flux_line  # folded into the temp

    def test_cse_can_be_disabled(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        _, form = lower_conservation_form(
            problem.equation.source, problem.unknown, problem.entities,
            problem.operators,
        )
        em = ExprEmitter(problem, form)
        with_cse = em.emit_sum(form.surface_terms, "surface")
        without = em.emit_sum(form.surface_terms, "surface", cse=False)
        assert with_cse.prelude and not without.prelude
        assert "cse_" not in without.code

    def test_solution_independent_of_cse(self, tiny_scenario):
        """Hoisting must not change a single bit of the result."""
        from repro.codegen.cpu_serial import CPUSerialTarget

        p1, _ = build_bte_problem(tiny_scenario)
        ref = p1.solve().solution()

        # hand-build a solver with CSE disabled by patching the source
        p2, _ = build_bte_problem(tiny_scenario)
        solver = p2.generate()
        _, form = lower_conservation_form(
            p2.equation.source, p2.unknown, p2.entities, p2.operators
        )
        em = ExprEmitter(p2, form)
        plain = em.emit_sum(form.surface_terms, "surface", cse=False)
        src = solver.source
        flux_line = next(ln for ln in src.splitlines() if "flux[sel] =" in ln)
        indent = flux_line[: len(flux_line) - len(flux_line.lstrip())]
        new_src = []
        for ln in src.splitlines():
            if ln.strip().startswith("cse_s"):
                continue
            if "flux[sel] =" in ln:
                new_src.append(f"{indent}flux[sel] = {plain.code}")
            else:
                new_src.append(ln)
        solver.source = "\n".join(new_src)
        solver.recompile()
        solver.run()
        assert np.array_equal(solver.solution(), ref)

    def test_variant_expressions_not_hoisted(self):
        """Anything touching the unknown/face sides must stay inline."""
        from repro.dsl.problem import Problem
        from repro.fvm.boundary import BCKind
        from repro.mesh.grid import structured_grid

        p = Problem("no-hoist")
        p.set_domain(2)
        p.set_steps(1e-3, 1)
        p.set_mesh(structured_grid((4, 4)))
        p.add_variable("u")
        p.add_coefficient("k", 2.0)
        for r in (1, 2, 3, 4):
            p.add_boundary("u", r, BCKind.NEUMANN0)
        p.set_initial("u", 1.0)
        p.set_conservation_form("u", "-k*u - 0.5*k*u")
        solver = p.generate()
        # k*u is variant (contains the unknown): nothing to hoist
        assert "cse_" not in solver.source

    def test_gpu_kernel_also_hoists(self, tiny_scenario):
        problem, _ = build_bte_problem(tiny_scenario)
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
        solver = problem.generate()
        kernel_src = solver.source.split("def interior_kernel")[1]
        kernel_src = kernel_src.split("def ")[0]
        assert "cse_s0 =" in kernel_src
