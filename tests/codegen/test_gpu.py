"""GPU hybrid target: correctness, overlap timeline, placement integration."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario


@pytest.fixture
def gpu_scenario():
    # large enough that offloading beats staying on the CPU
    return hotspot_scenario(nx=16, ny=16, ndirs=8, n_freq_bands=8, dt=1e-12, nsteps=4)


class TestCorrectness:
    def test_matches_serial(self, gpu_scenario):
        p1, _ = build_bte_problem(gpu_scenario)
        u_ref = p1.solve().solution()
        p2, _ = build_bte_problem(gpu_scenario)
        p2.enable_gpu()
        s2 = p2.solve()
        assert s2.target_name == "gpu"
        scale = np.max(np.abs(u_ref))
        assert np.max(np.abs(s2.solution() - u_ref)) < 1e-12 * scale

    def test_temperature_matches_serial(self, gpu_scenario):
        p1, _ = build_bte_problem(gpu_scenario)
        T_ref = p1.solve().state.extra["T"]
        p2, _ = build_bte_problem(gpu_scenario)
        p2.enable_gpu()
        T_gpu = p2.solve().state.extra["T"]
        assert np.allclose(T_ref, T_gpu, rtol=1e-12)


class TestPlacement:
    def test_interior_offloaded_for_large_problem(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.generate()
        assert solver.placement.device["interior_update"] == "gpu"
        assert solver.placement.device["boundary_callbacks"] == "cpu"
        assert solver.placement.device["post_step_callbacks"] == "cpu"

    def test_tiny_problem_falls_back_to_cpu(self):
        sc = hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2, dt=1e-12, nsteps=2)
        p, _ = build_bte_problem(sc)
        p.enable_gpu()
        solver = p.generate()
        assert solver.target_name == "cpu"
        assert solver.placement.device["interior_update"] == "cpu"
        assert "kept every task on the CPU" in solver.source
        solver.run()  # and it still works

    def test_force_offload_override(self):
        sc = hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2, dt=1e-12, nsteps=2)
        p, _ = build_bte_problem(sc)
        p.enable_gpu()
        p.extra["gpu_force_offload"] = True
        solver = p.generate()
        assert solver.target_name == "gpu"

    def test_placement_override_pins_tasks(self, gpu_scenario):
        """The tuner's plan-override hook: pin the interior update to the
        CPU even though the optimiser would offload it."""
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        p.extra["placement_override"] = {"interior_update": "cpu"}
        solver = p.generate()
        assert solver.placement.device["interior_update"] == "cpu"


class TestKernelChunking:
    """Tuner knob: split the interior kernel into per-component-row chunks."""

    def test_chunked_matches_unchunked(self, gpu_scenario):
        p1, _ = build_bte_problem(gpu_scenario)
        p1.enable_gpu()
        u_ref = p1.solve().solution()

        p2, _ = build_bte_problem(gpu_scenario)
        p2.enable_gpu()
        p2.extra["gpu_kernel_chunks"] = 4
        s2 = p2.solve()
        assert s2.target_name == "gpu"
        scale = np.max(np.abs(u_ref))
        assert np.max(np.abs(s2.solution() - u_ref)) < 1e-12 * scale

    def test_chunking_multiplies_launches(self, gpu_scenario):
        def launches(chunks):
            p, _ = build_bte_problem(gpu_scenario)
            p.enable_gpu()
            if chunks:
                p.extra["gpu_kernel_chunks"] = chunks
            solver = p.generate()
            solver.run()
            return len(solver.device.profiler.launches)

        assert launches(4) == 4 * launches(None)

    def test_chunks_change_the_cache_key(self, gpu_scenario):
        from repro.tune.signature import cache_key

        p1, _ = build_bte_problem(gpu_scenario)
        p1.enable_gpu()
        p2, _ = build_bte_problem(gpu_scenario)
        p2.enable_gpu()
        p2.extra["gpu_kernel_chunks"] = 4
        assert cache_key(p1, "gpu") != cache_key(p2, "gpu")

    def test_transfer_plan_classification(self, gpu_scenario):
        """'Finch will automatically determine what variables need to be
        updated and communicated during each step.'"""
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.generate()
        plan = solver.transfer_plan
        assert "geometry" in plan.static_h2d  # sent once
        assert "var_Io" in plan.h2d_each_step
        assert "var_beta" in plan.h2d_each_step
        assert "u" in plan.d2h_each_step
        assert "u" in plan.h2d_each_step  # the paper sends u both ways

    def test_placement_report_in_source(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.generate()
        assert "placement plan" in solver.source
        assert "transfer plan" in solver.source


class TestTimeline:
    def test_host_and_device_clocks_advance(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.solve()
        assert solver.state.host_clock.now() > 0
        assert solver.device.default_stream.busy_until() > 0

    def test_phase_accounting(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.solve()
        phases = solver.state.gpu_phases
        assert phases["solve for intensity"] > 0
        assert phases["temperature update"] > 0
        assert phases["communication"] > 0
        # per-step total equals the host clock
        assert sum(phases.values()) == pytest.approx(
            solver.state.host_clock.now(), rel=0.25
        )

    def test_boundary_overlaps_kernel(self, gpu_scenario):
        """Fig. 6: the intensity phase reflects max(kernel, boundary), not
        their sum — overlap must be modelled."""
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.solve()
        nsteps = gpu_scenario.nsteps
        kernel_total = sum(r.duration for r in solver.device.default_stream.records)
        boundary_total = solver.namespace["COST_BOUNDARY"] * nsteps
        intensity_phase = solver.state.gpu_phases["solve for intensity"]
        assert intensity_phase < kernel_total + boundary_total
        assert intensity_phase >= max(kernel_total, boundary_total) * 0.99

    def test_kernel_launch_per_step(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.solve()
        assert len(solver.device.default_stream.records) == gpu_scenario.nsteps

    def test_profiler_collects_kernel_metrics(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.solve()
        rep = solver.device.profiler.report("I_interior_step")
        assert rep.n_launches == gpu_scenario.nsteps
        assert rep.total_flops > 0
        assert 0 < rep.flop_fraction_of_peak <= 1


class TestGeneratedKernelSource:
    def test_flattened_kernel_shape(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.generate()
        src = solver.source
        assert (
            "def interior_kernel(u, var_Io, var_beta, u_new, sel=slice(None)):" in src
            or "def interior_kernel(u, var_beta, var_Io, u_new, sel=slice(None)):" in src
        )
        assert "def compute_boundary_contribution" in src
        assert "OWNER_INT" in src
        assert "u_new[sel] = u[sel] + DT * (source + div)" in src

    def test_kernel_work_estimates_attached(self, gpu_scenario):
        p, _ = build_bte_problem(gpu_scenario)
        p.enable_gpu()
        solver = p.generate()
        assert solver.kernel.flops_per_thread > 100
        assert solver.kernel.bytes_per_thread > 10
