"""Expression emission: code strings, environments, work estimates."""

import numpy as np
import pytest

from repro.codegen.emit import ExprEmitter
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.ir.lowering import lower_conservation_form
from repro.mesh.grid import structured_grid
from repro.util.errors import CodegenError


def make_problem(equation, ncomp_indices=False, extra_setup=None):
    p = Problem("emit-test")
    p.set_domain(2)
    p.set_steps(1e-3, 1)
    p.set_mesh(structured_grid((4, 4)))
    if ncomp_indices:
        d = p.add_index("d", (1, 4))
        b = p.add_index("b", (1, 3))
        from repro.dsl.entities import VAR_ARRAY, CELL

        p.add_variable("I", VAR_ARRAY, CELL, index=[d, b])
        p.add_variable("Io", VAR_ARRAY, CELL, index=[b])
        p.add_variable("beta", VAR_ARRAY, CELL, index=[b])
        p.add_coefficient("Sx", np.linspace(-1, 1, 4), VAR_ARRAY, index=[d])
        p.add_coefficient("Sy", np.linspace(1, -1, 4), VAR_ARRAY, index=[d])
        p.add_coefficient("vg", np.array([1.0, 2.0, 3.0]), VAR_ARRAY, index=[b])
        var = "I"
    else:
        p.add_variable("u")
        p.add_coefficient("k", 2.0)
        p.add_coefficient("b", 1.0)
        var = "u"
    if extra_setup:
        extra_setup(p)
    p.set_conservation_form(var, equation)
    _, form = lower_conservation_form(equation, p.unknown, p.entities, p.operators)
    return p, form


class TestScalarEmission:
    def test_volume_code(self):
        p, form = make_problem("-k*u")
        em = ExprEmitter(p, form)
        out = em.emit_sum(form.volume_terms, "volume")
        assert "coef_k" in out.code
        assert "u[sel]" in out.code

    def test_surface_code_uses_where(self):
        p, form = make_problem("-surface(upwind(b, u))")
        em = ExprEmitter(p, form)
        out = em.emit_sum(form.surface_terms, "surface")
        assert "np.where" in out.code
        assert "u1[sel]" in out.code and "u2[sel]" in out.code
        assert "normal_x" in out.code

    def test_empty_terms_emit_zero(self):
        p, form = make_problem("-k*u")
        em = ExprEmitter(p, form)
        assert em.emit_sum([], "surface").code == "0.0"

    def test_flops_positive(self):
        p, form = make_problem("-surface(upwind(b, u)) - k*u")
        em = ExprEmitter(p, form)
        assert em.emit_sum(form.surface_terms, "surface").flops > 3
        assert em.emit_sum(form.volume_terms, "volume").flops >= 2

    def test_code_actually_evaluates(self):
        p, form = make_problem("-k*u")
        em = ExprEmitter(p, form)
        out = em.emit_sum(form.volume_terms, "volume")
        ns = {"np": np, "sel": slice(None), "u": np.ones((1, 5)), "coef_k": 2.0}
        result = eval(out.code, ns)  # noqa: S307 - evaluating our own emission
        assert np.allclose(result, -2.0)


class TestIndexedEmission:
    EQ = "(Io[b] - I[d,b]) / beta[b] - surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"

    def test_known_variable_via_state(self):
        p, form = make_problem(self.EQ, ncomp_indices=True)
        em = ExprEmitter(p, form)
        out = em.emit_sum(form.volume_terms, "volume")
        assert "state.fields['Io'].data[cmap_Io[sel], :]" in out.code
        assert "state.fields['beta'].data[cmap_beta[sel], :]" in out.code

    def test_local_var_mode(self):
        p, form = make_problem(self.EQ, ncomp_indices=True)
        em = ExprEmitter(p, form, var_mode="local")
        out = em.emit_sum(form.volume_terms, "volume")
        assert "var_Io[cmap_Io[sel], :]" in out.code
        assert "state.fields" not in out.code

    def test_coefficient_broadcast(self):
        p, form = make_problem(self.EQ, ncomp_indices=True)
        em = ExprEmitter(p, form)
        out = em.emit_sum(form.surface_terms, "surface")
        assert "coef_vg[sel][:, None]" in out.code

    def test_component_tables(self):
        p, form = make_problem(self.EQ, ncomp_indices=True)
        em = ExprEmitter(p, form)
        tables = em.component_tables()
        # cmap_Io maps the (d,b) component axis to Io's b axis
        assert tables["cmap_Io"].tolist() == [0, 1, 2] * 4
        # vg is broadcast per component
        assert tables["coef_vg"].tolist() == [1.0, 2.0, 3.0] * 4
        # Sx is per direction
        assert np.allclose(tables["coef_Sx"], np.repeat(np.linspace(-1, 1, 4), 3))

    def test_referenced_known_variables(self):
        p, form = make_problem(self.EQ, ncomp_indices=True)
        em = ExprEmitter(p, form)
        assert sorted(em.referenced_known_variables()) == ["Io", "beta"]


class TestFunctionCoefficients:
    def test_function_coefficient_detected(self):
        def setup(p):
            p.add_coefficient("q", lambda x: x[:, 0])

        p, form = make_problem("-k*u + q", extra_setup=setup)
        em = ExprEmitter(p, form)
        assert "q" in em.function_coefficients()
        out = em.emit_sum(form.volume_terms, "volume")
        assert "fcoef_q[None, :]" in out.code


class TestEmitterErrors:
    def test_unknown_in_surface_needs_reconstruction(self):
        p, form = make_problem("-surface(u*b)")
        em = ExprEmitter(p, form)
        with pytest.raises(CodegenError, match="flux reconstruction"):
            em.emit_sum(form.surface_terms, "surface")

    def test_face_values_invalid_in_volume(self):
        from repro.symbolic.expr import SideValue, Sym

        p, form = make_problem("-k*u")
        em = ExprEmitter(p, form)
        with pytest.raises(CodegenError):
            em.emit_volume(SideValue(Sym("_u_1"), 1))

    def test_normals_invalid_in_volume(self):
        from repro.symbolic.expr import FaceNormal

        p, form = make_problem("-k*u")
        em = ExprEmitter(p, form)
        with pytest.raises(CodegenError):
            em.emit_volume(FaceNormal(1))

    def test_bad_var_mode(self):
        p, form = make_problem("-k*u")
        with pytest.raises(CodegenError):
            ExprEmitter(p, form, var_mode="device")

    def test_entity_with_foreign_index(self):
        def setup(p):
            q = p.add_index("q", (1, 5))
            from repro.dsl.entities import VAR_ARRAY

            p.add_coefficient("w", np.ones(5), VAR_ARRAY, index=[q])

        p, form = make_problem("-k*u - w[q]*u", extra_setup=setup)
        em = ExprEmitter(p, form)
        with pytest.raises(CodegenError, match="does not carry"):
            em.emit_sum(form.volume_terms, "volume")
