"""The ``diffuse`` operator: heat conduction through the full pipeline."""

import numpy as np
import pytest

from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid
from repro.symbolic.expr import FaceDistance
from repro.symbolic.operators import default_registry
from repro.symbolic.parser import parse


def heat_problem(shape, D=0.7, dt=None, nsteps=None, t_end=0.02, dim=None,
                 init=None, bcs=None):
    dim = dim or len(shape)
    n = shape[0]
    dt = dt or 0.2 * (1.0 / n) ** 2 / D
    nsteps = nsteps or int(round(t_end / dt))
    p = Problem("heat")
    p.set_domain(dim)
    p.set_steps(dt, nsteps)
    p.set_mesh(structured_grid(shape))
    p.add_variable("u")
    p.add_coefficient("D", D)
    regions = range(1, 2 * dim + 1)
    for r in regions:
        if bcs and r in bcs:
            kind, val = bcs[r]
            p.add_boundary("u", r, kind, val)
        else:
            p.add_boundary("u", r, BCKind.DIRICHLET, 0.0)
    p.set_initial("u", init if init is not None else 0.0)
    p.set_conservation_form("u", "surface(diffuse(D, u))")
    return p


class TestOperatorExpansion:
    def test_diffuse_expands_to_two_point_flux(self):
        reg = default_registry()
        from repro.symbolic.expr import Call, Sym

        out = reg.expand_call(Call("diffuse", Sym("D"), Sym("u")))
        s = str(out)
        assert "CELL2_u" in s and "CELL1_u" in s
        assert "FACEDIST" in s

    def test_facedist_is_singleton_leaf(self):
        assert FaceDistance() == FaceDistance()
        assert hash(FaceDistance()) == hash(FaceDistance())


class TestHeatEquationAccuracy:
    def test_1d_sine_decay_rate(self):
        D, t_end = 0.7, 0.02
        solver = heat_problem((64,), D=D, t_end=t_end,
                              init=lambda x: np.sin(np.pi * x[:, 0])).solve()
        x = solver.state.mesh.cell_centroids[:, 0]
        exact = np.exp(-D * np.pi**2 * t_end) * np.sin(np.pi * x)
        assert np.abs(solver.solution()[0] - exact).max() < 2e-3

    def test_spatial_convergence_second_order(self):
        D, t_end = 0.7, 0.02
        dt = 0.2 * (1.0 / 128) ** 2 / D  # fixed fine step isolates space error
        errors = []
        for n in (8, 16, 32):
            solver = heat_problem((n,), D=D, dt=dt, t_end=t_end,
                                  init=lambda x: np.sin(np.pi * x[:, 0])).solve()
            x = solver.state.mesh.cell_centroids[:, 0]
            exact = np.exp(-D * np.pi**2 * t_end) * np.sin(np.pi * x)
            errors.append(np.abs(solver.solution()[0] - exact).max())
        order = np.log2(errors[0] / errors[2]) / 2
        assert order > 1.8

    def test_2d_steady_state_linear_profile(self):
        """Dirichlet 0/1 on opposite walls, insulated sides: steady solution
        is the linear ramp (exact for the two-point flux)."""
        p = heat_problem(
            (16, 4), D=1.0, dt=5e-4, nsteps=4000, dim=2,
            bcs={
                1: (BCKind.DIRICHLET, 0.0),
                2: (BCKind.DIRICHLET, 1.0),
                3: (BCKind.NEUMANN0, None),
                4: (BCKind.NEUMANN0, None),
            },
        )
        solver = p.solve()
        x = solver.state.mesh.cell_centroids[:, 0]
        assert np.abs(solver.solution()[0] - x).max() < 1e-6

    def test_maximum_principle(self):
        """Diffusion cannot create new extrema (monotone two-point scheme
        under the dt restriction)."""
        rng = np.random.default_rng(3)
        init = rng.random(16 * 16)
        p = heat_problem((16, 16), D=1.0, dim=2, nsteps=200,
                         init=init.reshape(1, -1).repeat(1, axis=0)[0])
        # pass a full-field initial condition
        p.initial_values["u"] = init[None, :].copy()
        solver = p.solve()
        sol = solver.solution()[0]
        assert sol.max() <= init.max() + 1e-12
        assert sol.min() >= 0.0 - 1e-12  # walls at 0

    def test_conservation_with_insulated_walls(self):
        """All-Neumann box: total heat is conserved exactly."""
        rng = np.random.default_rng(5)
        init = rng.random(12 * 12) + 1.0
        p = heat_problem(
            (12, 12), D=1.0, dim=2, nsteps=100,
            bcs={r: (BCKind.NEUMANN0, None) for r in (1, 2, 3, 4)},
        )
        p.initial_values["u"] = init[None, :].copy()
        solver = p.solve()
        V = solver.state.geom.volume
        assert float(solver.solution()[0] @ V) == pytest.approx(
            float(init @ V), rel=1e-13
        )


class TestDiffusionOnGPU:
    def test_gpu_target_supports_facedist(self):
        p = heat_problem((24, 24), D=1.0, dim=2, nsteps=20,
                         init=lambda x: np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1]))
        ref = p.solve().solution()
        p2 = heat_problem((24, 24), D=1.0, dim=2, nsteps=20,
                          init=lambda x: np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1]))
        p2.enable_gpu()
        p2.extra["gpu_force_offload"] = True
        out = p2.solve()
        assert "face_dist = FACEDIST_INT" in out.source
        assert np.max(np.abs(out.solution() - ref)) < 1e-12
