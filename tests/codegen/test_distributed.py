"""Distributed target: equivalence with serial, strategy behaviour, timing."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem
from repro.util.errors import CodegenError


@pytest.fixture
def serial_result(tiny_scenario):
    p, _ = build_bte_problem(tiny_scenario)
    solver = p.solve()
    return solver.solution(), solver.state.extra["T"]


class TestBandStrategy:
    @pytest.mark.parametrize("nparts", [2, 3, 6])
    def test_matches_serial_bitwise(self, tiny_scenario, serial_result, nparts):
        u_ref, T_ref = serial_result
        p, _ = build_bte_problem(tiny_scenario)
        p.set_partitioning("bands", nparts, index="b")
        solver = p.solve()
        assert np.array_equal(solver.solution(), u_ref)
        assert np.array_equal(solver.state.extra["T"], T_ref)

    def test_only_communication_is_reduction(self, tiny_scenario):
        """Paper Sec. III-C: band partitioning avoids boundary communication;
        bands couple only through the temperature-update reduction."""
        p, _ = build_bte_problem(tiny_scenario)
        p.set_partitioning("bands", 3, index="b")
        solver = p.solve()
        stats = solver.state.spmd_result.stats
        # every rank sent zero point-to-point messages (reductions use the
        # collective path, not send/recv)
        assert all(s.messages_sent == 0 for s in stats)
        # but communication time was charged by the allreduce
        assert solver.state.spmd_result.phase_breakdown()["communication"] > 0

    def test_too_many_ranks_rejected(self, tiny_scenario):
        p, _ = build_bte_problem(tiny_scenario)
        nbands = p.entities.indices["b"].size
        p.set_partitioning("bands", nbands + 1, index="b")
        with pytest.raises(CodegenError, match="cannot split"):
            p.generate()

    def test_virtual_phase_breakdown_present(self, tiny_scenario):
        p, _ = build_bte_problem(tiny_scenario)
        p.set_partitioning("bands", 2, index="b")
        solver = p.solve()
        phases = solver.state.spmd_result.phase_breakdown()
        assert phases["solve for intensity"] > 0
        assert phases["temperature update"] > 0


class TestCellStrategy:
    @pytest.mark.parametrize("nparts", [2, 4])
    def test_matches_serial_bitwise(self, tiny_scenario, serial_result, nparts):
        u_ref, T_ref = serial_result
        p, _ = build_bte_problem(tiny_scenario)
        p.set_partitioning("cells", nparts)
        solver = p.solve()
        assert np.array_equal(solver.solution(), u_ref)
        assert np.array_equal(solver.state.extra["T"], T_ref)

    def test_halo_messages_flow(self, tiny_scenario):
        p, _ = build_bte_problem(tiny_scenario)
        p.set_partitioning("cells", 4)
        solver = p.solve()
        stats = solver.state.spmd_result.stats
        assert any(s.messages_sent > 0 for s in stats)
        assert all(s.bytes_sent >= 0 for s in stats)

    def test_layout_attached(self, tiny_scenario):
        p, _ = build_bte_problem(tiny_scenario)
        p.set_partitioning("cells", 3)
        solver = p.generate()
        assert solver.layout is not None
        assert solver.layout.nparts == 3

    def test_makespan_positive_and_deterministic(self, tiny_scenario):
        times = []
        for _ in range(2):
            p, _ = build_bte_problem(tiny_scenario)
            p.set_partitioning("cells", 2)
            solver = p.solve()
            times.append(solver.state.spmd_result.makespan)
        assert times[0] == times[1] > 0


class TestStrategyComparison:
    def test_band_and_cell_agree(self, tiny_scenario):
        p1, _ = build_bte_problem(tiny_scenario)
        p1.set_partitioning("bands", 3, index="b")
        p2, _ = build_bte_problem(tiny_scenario)
        p2.set_partitioning("cells", 3)
        u1 = p1.solve().solution()
        u2 = p2.solve().solution()
        assert np.array_equal(u1, u2)

    def test_band_has_less_comm_volume_than_cells(self, tiny_scenario):
        """Figure 3's claim, measured on the actual runs."""
        p1, _ = build_bte_problem(tiny_scenario)
        p1.set_partitioning("bands", 4, index="b")
        s1 = p1.solve()
        p2, _ = build_bte_problem(tiny_scenario)
        p2.set_partitioning("cells", 4)
        s2 = p2.solve()
        bytes_band = sum(s.bytes_sent for s in s1.state.spmd_result.stats)
        bytes_cell = sum(s.bytes_sent for s in s2.state.spmd_result.stats)
        assert bytes_band < bytes_cell

    def test_requires_partitioning_config(self, tiny_scenario):
        p, _ = build_bte_problem(tiny_scenario)
        with pytest.raises(CodegenError, match="partitioning"):
            p.generate(target="distributed")
