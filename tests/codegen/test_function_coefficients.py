"""Function coefficients: space- and time-dependent, end to end.

Coefficients "defined by a function of space-time coordinates" are part of
the paper's entity model; these tests drive them through generation and
solving.
"""

import numpy as np
import pytest

from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid


def problem_with_source(source_fn, nsteps=50, dt=1e-3):
    p = Problem("fcoef")
    p.set_domain(2)
    p.set_steps(dt, nsteps)
    p.set_mesh(structured_grid((6, 6)))
    p.add_variable("u")
    p.add_coefficient("q", source_fn)
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.NEUMANN0)
    p.set_initial("u", 0.0)
    p.set_conservation_form("u", "q")
    return p


class TestSpatialFunction:
    def test_du_dt_equals_q_of_x(self):
        p = problem_with_source(lambda x: x[:, 0] + 2.0 * x[:, 1])
        solver = p.solve()
        c = solver.state.mesh.cell_centroids
        expected = (c[:, 0] + 2.0 * c[:, 1]) * p.config.dt * p.config.nsteps
        assert np.allclose(solver.solution()[0], expected, rtol=1e-12)

    def test_source_in_generated_code(self):
        p = problem_with_source(lambda x: x[:, 0])
        src = p.generate().source
        assert "fcoef_q" in src
        assert "eval_fcoef" in src


class TestTimeDependentFunction:
    def test_f_of_x_and_t(self):
        """du/dt = t  ->  u(T) = T^2 / 2 (midpoint-in-time via Euler sums)."""
        p = problem_with_source(lambda x, t: np.full(len(x), t), nsteps=100)
        solver = p.solve()
        dt, n = p.config.dt, p.config.nsteps
        # forward Euler sums q(t_k) for k = 0..n-1
        expected = dt * dt * (n * (n - 1) / 2)
        assert np.allclose(solver.solution()[0], expected, rtol=1e-12)

    def test_space_time_product(self):
        p = problem_with_source(lambda x, t: x[:, 0] * (1.0 + t), nsteps=20)
        solver = p.solve()
        c = solver.state.mesh.cell_centroids
        dt, n = p.config.dt, p.config.nsteps
        time_sum = sum(1.0 + k * dt for k in range(n)) * dt
        assert np.allclose(solver.solution()[0], c[:, 0] * time_sum, rtol=1e-12)


class TestFunctionCoefficientInFlux:
    def test_spatially_varying_velocity(self):
        """Advection with b(x) = 1 + x: the generated code evaluates the
        coefficient on *face* centres for the surface term."""
        p = Problem("varvel")
        p.set_domain(2)
        nx = 24
        p.set_steps(0.2 / nx / 2.0, 600)  # CFL against b_max = 2; to steady
        p.set_mesh(structured_grid((nx, 3)))
        p.add_variable("u")
        p.add_coefficient("bx", lambda x: 1.0 + x[:, 0])
        p.add_coefficient("zero", 0.0)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 1.0)
        for r in (2, 3, 4):
            p.add_boundary("u", r, BCKind.NEUMANN0)
        p.set_initial("u", 0.0)
        p.set_conservation_form("u", "-surface(upwind([bx;zero], u))")
        solver = p.solve()
        assert "fcoef_bx_face" in solver.source
        # steady state of d(bu)/dx = 0 with u(0)=1, b(0)=1: upwinding makes
        # the *discrete* steady solution exactly u_i = 1/b(x at the cell's
        # right face) — first-order consistent with the continuum 1/b(x)
        sol = solver.solution()[0].reshape(3, nx).mean(axis=0)
        x_right = (np.arange(nx) + 1) / nx
        exact_discrete = 1.0 / (1.0 + x_right)
        assert np.abs(sol - exact_discrete).max() < 1e-6
        assert np.abs(sol - 1.0 / (1.0 + (x_right - 0.5 / nx))).max() < 0.05
