"""End-to-end elastic runtime: kill-recovery and proactive rebalancing.

The acceptance bar is *differential*: a distributed run that loses a rank
mid-flight (``rank_kill``) must recover from the periodic checkpoints onto
the surviving ranks and still produce results **bit-identical** to the
fault-free run — on the CPU-distributed target and on the multi-GPU
target.  Likewise a run skewed by a degraded rank (``rank_slow``) must
detect the imbalance, migrate work proactively, and converge to the same
bits with a measurably lower imbalance ratio.
"""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.runtime.faults import fault_run
from repro.runtime.rebalance import get_rebalance_log
from repro.runtime.resilience import get_resilience_log


@pytest.fixture(autouse=True)
def _fresh_rebalance_log():
    """The log is a run-scoped singleton; isolate it per test."""
    get_rebalance_log().reset()
    yield


def _scenario(nsteps):
    return hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=5,
                            dt=1e-12, nsteps=nsteps)


def _solve(scenario, *, axis=None, nparts=1, index=None, target=None,
           extra=None, faults=None):
    """Build + solve, returning (u, T, solver)."""
    p, _ = build_bte_problem(scenario)
    if extra:
        p.extra.update(extra)
    if axis is not None:
        if index is None:
            p.set_partitioning(axis, nparts)
        else:
            p.set_partitioning(axis, nparts, index=index)
    with fault_run(faults):
        solver = p.solve() if target is None else p.solve(target=target)
    return solver.solution(), solver.state.extra["T"], solver


class TestKillRecoveryCells:
    """Lose rank 1 of 3 mid-run (cell partitioning) and keep the bits."""

    def test_recovery_is_bit_identical(self):
        sc = _scenario(8)
        u_ref, t_ref, _ = _solve(sc, axis="cells", nparts=3)

        extra = {"rebalance": True, "checkpoint_every": 2}
        # the cells template computes twice per step: at=12 is step 6,
        # after the step-4 checkpoints of every rank hit disk
        u, t, _ = _solve(sc, axis="cells", nparts=3, extra=extra,
                         faults="rank_kill:rank=1,at=12")

        assert np.array_equal(u, u_ref)
        assert np.array_equal(t, t_ref)

    def test_migration_is_logged(self):
        sc = _scenario(8)
        extra = {"rebalance": True, "checkpoint_every": 2}
        _solve(sc, axis="cells", nparts=3, extra=extra,
               faults="rank_kill:rank=1,at=12")

        log = get_rebalance_log().as_dict()
        (mig,) = log["migrations"]
        assert mig["kind"] == "rank_loss"
        assert (mig["from_nranks"], mig["to_nranks"]) == (3, 2)
        assert mig["victim"] == 1
        assert mig["step"] == 4  # newest complete checkpoint cut
        assert sum(mig["new_owned_sizes"]) == 8 * 8  # all cells re-owned
        assert log["final_nranks"] == 2

        res = get_resilience_log().as_dict()
        assert any(m["kind"] == "rank_loss" for m in res["migrations"])

    def test_recovery_without_checkpoints_restarts_from_zero(self):
        """No periodic checkpoints: the consistent cut is step 0."""
        sc = _scenario(6)
        u_ref, t_ref, _ = _solve(sc, axis="cells", nparts=3)
        u, t, _ = _solve(sc, axis="cells", nparts=3,
                         extra={"rebalance": True},
                         faults="rank_kill:rank=2,at=6")
        assert np.array_equal(u, u_ref)
        assert np.array_equal(t, t_ref)
        (mig,) = get_rebalance_log().as_dict()["migrations"]
        assert mig["step"] == 0


class TestKillRecoveryGpuMulti:
    """Same contract on the multi-GPU (band-partitioned) target."""

    def test_recovery_is_bit_identical(self):
        sc = _scenario(8)
        p_ref, _ = build_bte_problem(sc)
        p_ref.set_partitioning("bands", 3, index="b")
        s_ref = p_ref.solve(target="gpu_distributed")

        sc2 = _scenario(8)
        p, _ = build_bte_problem(sc2)
        p.set_partitioning("bands", 3, index="b")
        p.extra.update({"rebalance": True, "checkpoint_every": 2})
        with fault_run("rank_kill:rank=1,at=20"):
            solver = p.solve(target="gpu_distributed")

        assert np.array_equal(solver.solution(), s_ref.solution())
        assert np.array_equal(solver.state.extra["T"], s_ref.state.extra["T"])

        log = get_rebalance_log().as_dict()
        (mig,) = log["migrations"]
        assert mig["kind"] == "rank_loss"
        assert mig["to_nranks"] == mig["from_nranks"] - 1


class TestProactiveRebalance:
    """A 4x-degraded rank triggers a measured-speed repartition."""

    FAULT = "rank_slow:rank=0,factor=4,count=0"

    def test_migration_fires_and_reduces_imbalance(self):
        sc = _scenario(12)
        extra = {"rebalance": True, "imbalance_threshold": 1.5}
        u, t, _ = _solve(sc, axis="cells", nparts=4, extra=extra,
                         faults=self.FAULT)

        log = get_rebalance_log().as_dict()
        (mig,) = log["migrations"]
        assert mig["kind"] == "imbalance"
        assert mig["imbalance_before"] > 1.5
        assert mig["benefit_s"] > mig["cost_s"]
        # the slow rank sheds work: it ends with the smallest share
        sizes = mig["new_owned_sizes"]
        assert sizes[0] == min(sizes) and sizes[0] < 64 // 4
        assert log["final_imbalance"] < mig["imbalance_before"]

    def test_rebalanced_run_is_bit_identical(self):
        sc = _scenario(12)
        u_ref, t_ref, _ = _solve(sc, axis="cells", nparts=4)
        u, t, _ = _solve(sc, axis="cells", nparts=4,
                         extra={"rebalance": True}, faults=self.FAULT)
        assert np.array_equal(u, u_ref)
        assert np.array_equal(t, t_ref)

    def test_balanced_run_does_not_migrate(self):
        sc = _scenario(8)
        _solve(sc, axis="cells", nparts=3, extra={"rebalance": True})
        log = get_rebalance_log().as_dict()
        assert log["migrations"] == []
        assert log["checks"] > 0  # the watcher did look


class TestBandPartitionRecovery:
    """Equation/band partitioning migrates whole bands — still exact."""

    def test_cells_kill_with_band_axis(self):
        sc = _scenario(8)
        u_ref, t_ref, _ = _solve(sc, axis="bands", nparts=3, index="b")
        u, t, _ = _solve(sc, axis="bands", nparts=3, index="b",
                         extra={"rebalance": True, "checkpoint_every": 2},
                         faults="rank_kill:rank=1,at=12")
        assert np.array_equal(u, u_ref)
        assert np.array_equal(t, t_ref)


class TestRunReportSection:
    def test_report_carries_the_rebalance_section(self):
        from repro.obs.report import build_run_report

        sc = _scenario(8)
        _, _, solver = _solve(sc, axis="cells", nparts=3,
                              extra={"rebalance": True, "checkpoint_every": 2},
                              faults="rank_kill:rank=1,at=12")
        report = build_run_report(solver)
        assert report.rebalance is not None
        assert report.rebalance["final_nranks"] == 2
        assert report.rebalance["migrations"][0]["kind"] == "rank_loss"
        assert "rebalance" in report.to_dict()

    def test_section_absent_without_the_feature(self):
        from repro.obs.report import build_run_report

        sc = _scenario(5)
        _, _, solver = _solve(sc, axis="cells", nparts=2)
        report = build_run_report(solver)
        assert report.rebalance is None
