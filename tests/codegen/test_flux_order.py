"""Second-order (MUSCL) flux reconstruction via ``flux_order(2)``.

The paper: "Since we are using the default flux reconstruction order of
one, this will generate a first-order upwind approximation" — implying the
order is configurable.  These tests cover the order-2 path: accuracy gain,
TVD behaviour, reduction to order 1 where the limiter engages, and the
CPU-only guard.
"""

import math

import numpy as np
import pytest

from repro.dsl.problem import Problem
from repro.fvm import kernels
from repro.fvm.boundary import BCKind
from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import structured_grid
from repro.util.errors import CodegenError, ConfigError


def advection_problem(nx, order, stepper="euler", t_end=0.25, init=None):
    p = Problem(f"fluxorder-{nx}-{order}")
    p.set_domain(2)
    dt = 0.3 / nx
    p.set_steps(dt, int(round(t_end / dt)))
    p.set_stepper(stepper)
    p.set_mesh(structured_grid((nx, 3), [(0.0, 1.0), (0.0, 3.0 / nx)]))
    p.add_variable("u")
    p.add_coefficient("bx", 1.0)
    p.add_coefficient("by", 0.0)
    p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
    for r in (2, 3, 4):
        p.add_boundary("u", r, BCKind.NEUMANN0)
    x0, s = 0.3, 0.12
    p.set_initial(
        "u", init if init is not None else (lambda c: np.exp(-(((c[:, 0] - x0) / s) ** 2)))
    )
    p.set_flux_order(order)
    p.set_conservation_form("u", "-surface(upwind([bx;by], u))")
    return p


def l1_error(problem):
    solver = problem.solve()
    x = solver.state.mesh.cell_centroids[:, 0]
    cfg = problem.config
    exact = np.exp(-(((x - 0.3 - cfg.nsteps * cfg.dt) / 0.12) ** 2))
    return float(np.abs(solver.solution()[0] - exact).mean()), solver


class TestMinmod:
    def test_agreeing_signs_pick_smaller(self):
        a = np.array([2.0, -3.0])
        b = np.array([1.0, -0.5])
        assert np.allclose(kernels.minmod(a, b), [1.0, -0.5])

    def test_disagreeing_signs_zero(self):
        assert np.allclose(kernels.minmod(np.array([1.0]), np.array([-2.0])), 0.0)
        assert np.allclose(kernels.minmod(np.array([0.0]), np.array([5.0])), 0.0)


class TestGreenGaussGradient:
    def test_exact_for_linear_fields(self):
        geom = FVGeometry(structured_grid((6, 5)))
        u = 2.0 * geom.cell_center[:, 0] - 3.0 * geom.cell_center[:, 1]
        ghost = 2.0 * geom.center[geom.bfaces, 0] - 3.0 * geom.center[geom.bfaces, 1]
        u1, u2 = geom.gather_sides(u, ghost)
        ubar = 0.5 * (u1 + u2)
        ubar[geom.bfaces] = u2[geom.bfaces]  # ghosts live at the face
        gx, gy = geom.green_gauss_gradient(ubar)
        assert np.allclose(gx, 2.0, atol=1e-10)
        assert np.allclose(gy, -3.0, atol=1e-10)


class TestAccuracy:
    def test_order2_beats_order1(self):
        e1, _ = l1_error(advection_problem(60, 1))
        e2, _ = l1_error(advection_problem(60, 2, stepper="rk2"))
        assert e2 < 0.4 * e1

    def test_convergence_rate_above_1p5(self):
        errs = []
        for n in (40, 80, 160):
            e, _ = l1_error(advection_problem(n, 2, stepper="rk2"))
            errs.append(e)
        rate = math.log2(errs[1] / errs[2])
        assert rate > 1.5

    def test_first_order_unchanged_by_default(self):
        p = advection_problem(40, 1)
        assert p.config.flux_order == 1
        assert "conditional" in p.generate().source


class TestTVD:
    def test_square_wave_stays_monotone(self):
        """The minmod limiter must suppress the oscillations an unlimited
        second-order scheme would produce at discontinuities.  (Forward
        Euler here: the TVD property of MUSCL+minmod is tied to SSP time
        stepping; the midpoint RK2 can admit ~1 % overshoots.)"""
        init = lambda c: np.where((c[:, 0] > 0.2) & (c[:, 0] < 0.45), 1.0, 0.0)  # noqa: E731
        p = advection_problem(80, 2, stepper="euler", init=init)
        solver = p.solve()
        sol = solver.solution()
        assert sol.max() <= 1.0 + 1e-10
        assert sol.min() >= -1e-10

    def test_square_wave_sharper_than_first_order(self):
        init = lambda c: np.where((c[:, 0] > 0.2) & (c[:, 0] < 0.45), 1.0, 0.0)  # noqa: E731

        def width(order):
            p = advection_problem(80, order, stepper="euler", init=init)
            sol = p.solve().solution()[0]
            return int(np.sum((sol > 0.05) & (sol < 0.95))) / 3  # smeared cells/row

        assert width(2) < width(1)


class TestGeneratedSource:
    def test_order2_emits_kernel_call(self):
        p = advection_problem(20, 2)
        src = p.generate().source
        assert "kernels.muscl_flux(geom," in src
        assert "RECONSTRUCTmuscl" in src  # the classified term comment

    def test_gpu_targets_reject_order2(self):
        p = advection_problem(24, 2)
        p.enable_gpu()
        p.extra["gpu_force_offload"] = True
        with pytest.raises(CodegenError, match="CPU-only"):
            p.generate()

    def test_invalid_order_rejected(self):
        p = advection_problem(20, 1)
        with pytest.raises(ConfigError):
            p.set_flux_order(3)

    def test_distributed_supports_order2(self):
        """Cell partitioning widens the halo to two layers for the wider
        MUSCL stencil and still matches the serial solver bitwise."""
        p1 = advection_problem(24, 2)
        ref = p1.solve().solution()
        p2 = advection_problem(24, 2)
        p2.set_partitioning("cells", 3)
        solver = p2.solve()
        assert np.array_equal(solver.solution(), ref)
        # each ghost region really is two cells deep
        layout = solver.layout
        adj = p2.mesh.cell_neighbors()
        for r in range(3):
            owned = set(layout.owned[r].tolist())
            depth2 = {g for g in layout.ghosts[r]
                      if not any(nb in owned for nb in adj[int(g)])}
            assert depth2, "no second-layer ghosts found"


class TestBTEWithOrder2:
    def test_bte_runs_and_stays_physical(self, tiny_scenario):
        from repro.bte.problem import build_bte_problem

        problem, model = build_bte_problem(tiny_scenario)
        problem.set_flux_order(2)
        solver = problem.solve()
        T = solver.state.extra["T"]
        assert np.all(np.isfinite(T))
        assert T.min() >= tiny_scenario.T0 - 1e-6

    def test_order2_bte_differs_but_stays_close(self):
        from repro.bte.problem import build_bte_problem, hotspot_scenario

        sc = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=5,
                              dt=1e-12, nsteps=20)
        sc.sigma = 150e-6  # wide spot so the coarse grid sees a transient
        p1, _ = build_bte_problem(sc)
        u1 = p1.solve().solution()
        p2, _ = build_bte_problem(sc)
        p2.set_flux_order(2)
        u2 = p2.solve().solution()
        # genuinely different discretisation, same magnitude
        assert not np.array_equal(u1, u2)
        assert np.abs(u2 - u1).max() < 0.1 * np.abs(u1).max()
