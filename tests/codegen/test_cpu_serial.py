"""CPU serial target: correctness against analytic solutions, source form."""

import numpy as np
import pytest

from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid
from repro.util.errors import CodegenError


def decay_problem(stepper="euler", dt=1e-3, nsteps=100, k=3.0):
    p = Problem("decay")
    p.set_domain(2)
    p.set_stepper(stepper)
    p.set_steps(dt, nsteps)
    p.set_mesh(structured_grid((3, 3)))
    p.add_variable("u")
    p.add_coefficient("k", k)
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.NEUMANN0)
    p.set_initial("u", 2.0)
    p.set_conservation_form("u", "-k*u")
    return p


def advection_problem(nx=24, cfl=0.4, t_end=0.5):
    p = Problem("advect")
    p.set_domain(2)
    dt = cfl / nx
    p.set_steps(dt, int(round(t_end / dt)))
    p.set_mesh(structured_grid((nx, 4)))
    p.add_variable("u")
    p.add_coefficient("bx", 1.0)
    p.add_coefficient("by", 0.0)
    p.add_boundary("u", 1, BCKind.DIRICHLET, 1.0)
    for r in (2, 3, 4):
        p.add_boundary("u", r, BCKind.NEUMANN0)
    p.set_initial("u", 0.0)
    p.set_conservation_form("u", "-surface(upwind([bx;by], u))")
    return p


class TestDecayAccuracy:
    def test_euler_matches_discrete_exact(self):
        p = decay_problem()
        solver = p.solve()
        # forward Euler is exactly (1 - k dt)^n
        expected = 2.0 * (1 - 3.0 * 1e-3) ** 100
        assert np.allclose(solver.solution(), expected, rtol=1e-12)

    def test_rk4_near_machine_accuracy(self):
        p = decay_problem(stepper="rk4", dt=1e-2, nsteps=100)
        solver = p.solve()
        assert np.allclose(solver.solution(), 2.0 * np.exp(-3.0), rtol=1e-9)

    def test_rk2_better_than_euler(self):
        exact = 2.0 * np.exp(-3.0 * 0.1)
        e_eul = abs(decay_problem("euler", 1e-2, 10).solve().solution()[0, 0] - exact)
        e_rk2 = abs(decay_problem("rk2", 1e-2, 10).solve().solution()[0, 0] - exact)
        assert e_rk2 < e_eul / 5


class TestAdvection:
    def test_steady_state_fills_domain(self):
        solver = advection_problem(t_end=4.0).solve()
        assert np.allclose(solver.solution(), 1.0, atol=1e-6)

    def test_upwind_is_monotone(self):
        """First-order upwind cannot create over/undershoots for this data."""
        solver = advection_problem(t_end=0.4).solve()
        sol = solver.solution()
        assert sol.min() >= -1e-12
        assert sol.max() <= 1.0 + 1e-12

    def test_front_position(self):
        t_end = 0.5
        solver = advection_problem(nx=48, t_end=t_end).solve()
        mesh = solver.state.mesh
        sol = solver.solution()[0]
        x = mesh.cell_centroids[:, 0]
        # well upstream of the front: filled; well downstream: empty
        assert sol[x < t_end - 0.15].min() > 0.9
        assert sol[x > t_end + 0.15].max() < 0.1


class TestAssemblyLoops:
    def test_loop_orders_equivalent(self, tiny_scenario):
        from repro.bte.problem import build_bte_problem

        results = []
        for order in (["cells"], ["b", "cells", "d"], ["d", "b", "cells"]):
            p, _ = build_bte_problem(tiny_scenario)
            p.set_assembly_loops([o for o in order])
            results.append(p.solve().solution())
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[2])

    def test_component_blocks_structure(self, tiny_scenario):
        from repro.bte.problem import build_bte_problem

        p, _ = build_bte_problem(tiny_scenario)
        p.set_assembly_loops(["b", "cells", "d"])
        solver = p.generate()
        blocks = solver.state.comp_blocks
        # one block per (polarised) band value
        nbands = p.entities.indices["b"].size
        assert len(blocks) == nbands
        total = sum(len(b) for b in blocks)
        assert total == solver.state.ncomp


class TestGeneratedSource:
    def test_source_is_readable_and_commented(self):
        solver = decay_problem().generate()
        src = solver.source
        assert '"""' in src
        assert "# RHS volume" in src
        assert "IR:" in src
        assert "def compute_rhs" in src
        assert "def run_steps" in src

    def test_source_recompile_roundtrip(self):
        solver = decay_problem().generate()
        before = solver.solution().copy()
        solver.recompile()
        solver.run(10)
        assert solver.state.step_index == 10

    def test_hand_modification_of_source(self):
        """The paper: generated code can be hand-modified; recompile picks
        the edit up."""
        p = decay_problem(nsteps=1)
        solver = p.generate()
        solver.source = solver.source.replace(
            "state.time += state.dt", "state.time += 2 * state.dt"
        )
        solver.recompile()
        solver.run(1)
        assert solver.state.time == pytest.approx(2e-3)

    def test_missing_functions_detected(self):
        solver = decay_problem().generate()
        solver.source = "x = 1\n"
        with pytest.raises(CodegenError, match="step_once"):
            solver.recompile()

    def test_syntax_error_reported(self):
        solver = decay_problem().generate()
        solver.source = "def step_once(:\n    pass\n"
        with pytest.raises(CodegenError, match="does not compile"):
            solver.recompile()


class TestRunControls:
    def test_step_advances_time(self):
        solver = decay_problem().generate()
        solver.step()
        assert solver.state.step_index == 1
        assert solver.state.time == pytest.approx(1e-3)

    def test_run_partial_steps(self):
        solver = decay_problem().generate()
        solver.run(7)
        assert solver.state.step_index == 7

    def test_timers_record_solve_phase(self):
        solver = decay_problem().generate()
        solver.run(5)
        assert solver.state.timers.total("solve") > 0

    def test_nan_detection(self):
        # unstable dt: k*dt >> 2 blows up
        p = decay_problem(dt=10.0, nsteps=500, k=50.0)
        from repro.util.errors import SolverError

        with pytest.raises(SolverError, match="non-finite"):
            p.solve()
