"""The structured event log (``repro.events/1``)."""

import json

import pytest

from repro.obs import trace_run
from repro.obs.log import (
    LEVELS,
    EventLog,
    events_run,
    get_event_log,
    log_event,
    read_events,
    set_event_log,
)


@pytest.fixture(autouse=True)
def fresh_log():
    previous = set_event_log(EventLog())
    yield
    set_event_log(previous)


class TestLevels:
    def test_ordering(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]

    def test_default_threshold_drops_debug(self):
        log = get_event_log()
        assert log.emit("comm.send", level="debug") is None
        assert log.emit("fault.injected", level="warning") is not None
        assert [e.name for e in log.tail()] == ["fault.injected"]

    def test_wants_and_debug_enabled(self):
        log = get_event_log()
        assert log.wants("info") and not log.wants("debug")
        assert not log.debug_enabled
        log.set_level("debug")
        assert log.debug_enabled and log.wants("debug")
        log.set_level("error")
        assert not log.wants("warning")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown event level"):
            get_event_log().emit("x", level="loud")

    def test_disabled_log_absorbs_everything(self):
        log = EventLog(enabled=False)
        assert log.emit("x", level="error") is None
        assert log.tail() == [] and log.counts() == {}
        assert not log.debug_enabled


class TestRing:
    def test_ring_is_bounded(self):
        log = EventLog(ring_size=4)
        for i in range(10):
            log.emit("step.done", step=i)
        tail = log.tail()
        assert len(tail) == 4
        assert [e.step for e in tail] == [6, 7, 8, 9]
        # counts keep the full total even after eviction
        assert log.counts() == {"info": 10}

    def test_tail_n(self):
        log = get_event_log()
        for i in range(5):
            log.emit("e", step=i)
        assert [e.step for e in log.tail(2)] == [3, 4]


class TestCorrelation:
    def test_trace_id_defaults_from_live_tracer(self, tmp_path):
        with trace_run(tmp_path / "t.json") as tracer:
            ev = log_event("run.start")
        assert ev.trace_id == tracer.trace_id

    def test_span_ids_survive_to_dict(self):
        ev = get_event_log().emit("comm.recv", level="warning",
                                  rank=1, step=3, span_id=7, parent_id=5)
        doc = ev.to_dict()
        assert doc["span_id"] == 7 and doc["parent_id"] == 5
        assert doc["rank"] == 1 and doc["step"] == 3


class TestFileStream:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with events_run(path, level="debug") as log:
            log.emit("run.start", nsteps=3)
            log.emit("comm.send", level="debug", rank=0, dest=1)
            log.emit("fault.injected", level="warning", rank=1, kind="drop")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == "repro.events/1"
        events = read_events(path)
        assert [e["name"] for e in events] == [
            "run.start", "comm.send", "fault.injected"]
        assert events[1]["level"] == "debug"
        assert events[2]["fields"]["kind"] == "drop"

    def test_events_run_restores_previous_log(self, tmp_path):
        outer = get_event_log()
        with events_run(tmp_path / "e.jsonl") as inner:
            assert get_event_log() is inner
        assert get_event_log() is outer

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with events_run(path) as log:
            log.emit("run.start")
            log.emit("step.done", step=1)
        # simulate a crash mid-write
        path.write_text(path.read_text()[:-9])
        events = read_events(path)
        assert [e["name"] for e in events] == ["run.start"]

    def test_non_event_file_rejected(self, tmp_path):
        path = tmp_path / "not.jsonl"
        path.write_text(json.dumps({"schema": "repro.bench/1"}) + "\n")
        with pytest.raises(ValueError, match="not an event log"):
            read_events(path)

    def test_summary_shape(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with events_run(path) as log:
            log.emit("a")
            log.emit("b", level="warning")
            doc = log.summary()
        assert doc["total"] == 2
        assert doc["by_level"] == {"info": 1, "warning": 1}
        assert doc["path"] == str(path)
