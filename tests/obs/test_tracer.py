"""The span tracer and its Chrome-trace export."""

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_TRACER,
    SpanEvent,
    Tracer,
    get_tracer,
    phase_span,
    set_tracer,
    trace_run,
)


class TestSpanEvent:
    def test_duration(self):
        assert SpanEvent("t", "a", 1.0, 3.5).duration == 2.5

    def test_overlap(self):
        a = SpanEvent("t", "a", 0.0, 2.0)
        b = SpanEvent("t", "b", 1.0, 3.0)
        c = SpanEvent("t", "c", 2.0, 4.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching endpoints do not overlap


class TestNullTracer:
    def test_disabled_and_reusable(self):
        assert NULL_TRACER.enabled is False
        s1 = NULL_TRACER.span("x", "a")
        s2 = NULL_TRACER.span("y", "b")
        assert s1 is s2  # single reusable null span, no allocation
        with s1:
            pass

    def test_recording_calls_are_noops(self):
        NULL_TRACER.complete("t", "a", 0.0, 1.0)
        NULL_TRACER.instant("t", "i", 0.0)
        NULL_TRACER.counter("t", "c", 0.0, 1.0)


class TestTracer:
    def test_complete_records_span(self):
        tr = Tracer()
        tr.complete("virtual/rank0", "solve", 1.0, 2.0, cat="phase", rank=0)
        (span,) = tr.spans_on("virtual/rank0")
        assert span.name == "solve"
        assert span.duration == 1.0
        assert span.args["rank"] == 0

    def test_span_context_manager_uses_clock(self):
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        tr = Tracer(clock=clock)
        with tr.span("host/main", "work"):
            pass
        (span,) = tr.find_spans("work")
        assert span.t0 == 1.0 and span.t1 == 2.0

    def test_tracks_sorted_union(self):
        tr = Tracer()
        tr.complete("b", "x", 0, 1)
        tr.counter("a", "c", 0.0, 2.0)
        tr.instant("c/d", "i", 0.0)
        assert tr.tracks() == ["a", "b", "c/d"]

    def test_chrome_trace_structure(self):
        tr = Tracer()
        tr.complete("gpu0/stream0", "kernel", 0.001, 0.002, cat="kernel")
        tr.complete("gpu0/transfer", "h2d", 0.0, 0.001, cat="transfer")
        tr.complete("host/rank0", "solve", 0.0, 0.5)
        tr.counter("host/rank0", "bytes", 0.1, 42.0)
        tr.instant("host/rank0", "mark", 0.2)
        doc = tr.to_chrome_trace()
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        # same process -> same pid, distinct tids
        by_name = {}
        for e in events:
            if e["ph"] == "M" and e["name"] == "thread_name":
                by_name[e["args"]["name"]] = (e["pid"], e["tid"])
        assert by_name["stream0"][0] == by_name["transfer"][0]
        assert by_name["stream0"][1] != by_name["transfer"][1]
        assert by_name["rank0"][0] != by_name["stream0"][0]
        # timestamps exported in microseconds
        kernel = next(e for e in events if e.get("name") == "kernel")
        assert kernel["ts"] == pytest.approx(1000.0)
        assert kernel["dur"] == pytest.approx(1000.0)

    def test_write_is_valid_json(self, tmp_path):
        tr = Tracer()
        tr.complete("t", "a", 0.0, 1.0)
        path = tr.write(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_summary_counts(self):
        tr = Tracer()
        tr.complete("t", "a", 0.0, 1.0)
        tr.counter("t", "c", 0.0, 1.0)
        s = tr.summary()
        assert s["n_spans"] == 1 and s["n_counters"] == 1
        assert s["tracks"] == ["t"]


class TestCurrentTracer:
    def test_defaults_to_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_restore(self):
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(prev)
        assert get_tracer() is prev

    def test_trace_run_installs_writes_and_restores(self, tmp_path):
        path = tmp_path / "t.json"
        with trace_run(path) as tr:
            assert get_tracer() is tr
            tr.complete("t", "a", 0.0, 1.0)
        assert get_tracer() is NULL_TRACER
        assert json.loads(path.read_text())["traceEvents"]

    def test_trace_run_writes_on_error(self, tmp_path):
        path = tmp_path / "t.json"
        with pytest.raises(RuntimeError):
            with trace_run(path) as tr:
                tr.complete("t", "partial", 0.0, 1.0)
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER
        names = [e.get("name") for e in json.loads(path.read_text())["traceEvents"]]
        assert "partial" in names  # partial traces survive failures

    def test_phase_span_noop_when_disabled(self):
        span = phase_span("solve")
        assert span is obs.NULL_TRACER.span("", "")

    def test_phase_span_records_on_host_track(self):
        with trace_run() as tr:
            with phase_span("solve", nsteps=3):
                pass
        (span,) = tr.find_spans("solve")
        assert span.track.startswith("host/")
        assert span.args["nsteps"] == 3
