"""The persistent cross-run registry (``repro.runs/1``)."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_ROOT,
    RegistryError,
    RunRegistry,
    SCHEMA,
    configure_registry,
    get_registry,
    registry_scope,
)


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs")


class TestAppend:
    def test_round_trip(self, registry):
        path = registry.append("abcd1234", profile={"x": 1},
                               meta={"wall_s": 0.5})
        doc = registry.load(path)
        assert doc["schema"] == SCHEMA
        assert doc["key"] == "abcd1234"
        assert doc["seq"] == 1
        assert doc["meta"]["wall_s"] == 0.5
        assert doc["profile"] == {"x": 1}
        assert "report" not in doc and "bench" not in doc

    def test_sharded_layout_mirrors_the_cache(self, registry):
        path = registry.append("abcd1234", report={})
        assert path.parent == registry.root / "ab" / "abcd1234"
        assert path.name == "run-000001.json"

    def test_sequence_increments(self, registry):
        registry.append("abcd", bench={})
        path = registry.append("abcd", bench={})
        assert registry.load(path)["seq"] == 2
        assert [p.name for p in registry.runs("abcd")] == [
            "run-000001.json", "run-000002.json"
        ]

    def test_empty_entry_refused(self, registry):
        with pytest.raises(RegistryError, match="empty"):
            registry.append("abcd")

    def test_bad_keys_refused(self, registry):
        for key in ("", "a/b", "a\\b"):
            with pytest.raises(RegistryError, match="invalid"):
                registry.append(key, report={})

    def test_non_finite_floats_sanitised(self, registry):
        path = registry.append("abcd", profile={"v": float("inf")})
        assert registry.load(path)["profile"]["v"] is None


class TestReads:
    def test_keys_lists_populated_dirs(self, registry):
        assert registry.keys() == []
        registry.append("aa11", report={})
        registry.append("bb22", report={})
        assert registry.keys() == ["aa11", "bb22"]

    def test_load_rejects_wrong_schema(self, registry, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "repro.bench/1"}))
        with pytest.raises(RegistryError, match="not a run-registry"):
            registry.load(bogus)

    def test_corrupt_entries_skipped_with_warning(self, registry, caplog):
        registry.append("aa11", report={"ok": 1})
        (registry.root / "aa" / "aa11" / "run-000002.json").write_text("{oops")
        with caplog.at_level("WARNING", logger="repro.obs.registry"):
            docs = registry.load_runs("aa11")
        assert len(docs) == 1
        assert docs[0]["report"] == {"ok": 1}
        assert any("skipping" in r.message for r in caplog.records)

    def test_iter_entries_spans_keys(self, registry):
        registry.append("aa11", report={})
        registry.append("bb22", report={})
        registry.append("bb22", report={})
        entries = list(registry.iter_entries())
        assert [k for k, _ in entries] == ["aa11", "bb22", "bb22"]


class TestGC:
    def test_keep_last_prunes_oldest(self, registry):
        for _ in range(5):
            registry.append("aa11", report={})
        removed = registry.gc(keep_last=2)
        assert removed == 3
        assert [p.name for p in registry.runs("aa11")] == [
            "run-000004.json", "run-000005.json"
        ]

    def test_keep_zero_drops_everything_and_empty_dirs(self, registry):
        registry.append("aa11", report={})
        assert registry.gc(keep_last=0) == 1
        assert registry.keys() == []
        assert not (registry.root / "aa").exists()

    def test_max_age_days_prunes_stale_kept_entries(self, registry):
        path = registry.append("aa11", report={})
        doc = registry.load(path)
        doc["recorded_at"] = "2000-01-01T00:00:00"
        path.write_text(json.dumps(doc))
        registry.append("aa11", report={})
        removed = registry.gc(keep_last=10, max_age_days=365.0)
        assert removed == 1
        assert len(registry.runs("aa11")) == 1

    def test_negative_keep_refused(self, registry):
        with pytest.raises(RegistryError, match=">= 0"):
            registry.gc(keep_last=-1)


class TestProcessWide:
    def test_configure_and_scope(self, tmp_path):
        saved = configure_registry(tmp_path / "a")
        try:
            assert get_registry().root == tmp_path / "a"
            with registry_scope(tmp_path / "b") as scratch:
                assert get_registry() is scratch
                assert scratch.root == tmp_path / "b"
            assert get_registry().root == tmp_path / "a"
        finally:
            configure_registry(None)

    def test_default_root(self):
        configure_registry(None)
        assert get_registry().root.name == DEFAULT_ROOT
