"""The per-kernel profiler and the ``repro.profile/1`` document."""

import json

import pytest

from repro.bte import build_bte_problem, hotspot_scenario
from repro.obs.profile import (
    DRIFT_TOLERANCE,
    RunProfiler,
    SCHEMA,
    build_profile,
    compare_profiles,
    compare_table,
    extract_profile,
    get_profiler,
    load_profile,
    problem_key,
    profile_run,
    profile_table,
    set_profiler,
    write_profile,
)
from repro.util.errors import ReproError
from repro.util.timing import Timer, VirtualClock


def tiny_problem(gpu: bool = False, ranks: int = 1, chunks: int = 0):
    scenario = hotspot_scenario(
        nx=8, ny=8, ndirs=4, n_freq_bands=4, dt=1e-12, nsteps=3
    )
    problem, _ = build_bte_problem(scenario)
    if gpu:
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
    if ranks > 1:
        problem.set_partitioning("bands", ranks, index="b")
    if chunks:
        problem.extra["gpu_kernel_chunks"] = chunks
    return problem


@pytest.fixture(autouse=True)
def reset_profiler():
    yield
    set_profiler(None)


class TestRunProfiler:
    def test_disabled_records_nothing(self):
        prof = RunProfiler(enabled=False)
        prof.record("solve", 0.5, rank=0, step=1)
        assert prof.records == []

    def test_enabled_records_tuples(self):
        prof = RunProfiler()
        prof.record("solve", 0.5, rank=1, step=2)
        assert prof.records == [(1, "solve", 2, 0.5)]
        assert prof.launches_for_rank(1) == [
            {"name": "solve", "step": 2, "seconds": 0.5}
        ]
        assert prof.launches_for_rank(0) == []
        prof.reset()
        assert prof.records == []

    def test_profile_run_restores_previous(self):
        before = get_profiler()
        with profile_run() as prof:
            assert get_profiler() is prof
            assert prof.enabled
        assert get_profiler() is before


class TestProfileScope:
    def test_disabled_is_the_plain_timer(self):
        solver = tiny_problem().generate()
        scope = solver.state.profile_scope("solve")
        assert isinstance(scope, Timer)

    def test_enabled_records_per_launch(self):
        with profile_run() as prof:
            tiny_problem().solve()
        names = {name for (_, name, _, _) in prof.records}
        assert "solve" in names and "post_step" in names
        steps = [step for (_, name, step, _) in prof.records
                 if name == "solve"]
        assert steps == [0, 1, 2]

    def test_default_solve_leaves_no_records(self):
        tiny_problem().solve()
        assert get_profiler().records == []


class TestBuildProfile:
    def test_cpu_phase_rows(self):
        doc = build_profile(tiny_problem().solve())
        assert doc["schema"] == SCHEMA
        (entry,) = doc["ranks"]
        rows = {r["name"]: r for r in entry["kernels"]}
        assert rows["solve"]["kind"] == "phase"
        assert rows["solve"]["clock"] == "wall"
        assert rows["solve"]["count"] == 3
        assert rows["solve"]["drift"] is not None

    def test_gpu_kernel_rows(self):
        solver = tiny_problem(gpu=True).solve()
        doc = build_profile(solver)
        (entry,) = doc["ranks"]
        kernels = [r for r in entry["kernels"] if r["kind"] == "kernel"]
        assert kernels, entry["kernels"]
        row = kernels[0]
        assert row["name"] == "I_interior_step"
        assert row["clock"] == "virtual"
        assert row["bound"] in ("compute", "memory")
        assert "transfers" in entry

    def test_spmd_per_rank_rows(self):
        doc = build_profile(tiny_problem(ranks=2).solve())
        assert [e["rank"] for e in doc["ranks"]] == [0, 1]
        for entry in doc["ranks"]:
            assert any(r["name"] == "solve" for r in entry["kernels"])

    def test_meta_and_problem_key(self):
        solver = tiny_problem().solve()
        doc = build_profile(solver)
        meta = doc["meta"]
        assert meta["problem"] == "bte-hotspot"
        assert meta["target"] == "cpu"
        assert meta["nsteps"] == 3
        assert meta["per_launch"] is False
        assert meta["problem_key"] == problem_key(
            solver.state.problem, "cpu")

    def test_problem_key_stable_under_chunking(self):
        # the injected-slowdown knob must land in the same history timeline
        plain = tiny_problem(gpu=True)
        chunked = tiny_problem(gpu=True, chunks=4)
        assert problem_key(plain, "gpu") == problem_key(chunked, "gpu")

    def test_drift_judges_wall_rows_only(self):
        solver = tiny_problem(gpu=True).solve()
        doc = build_profile(solver, tolerance=1e9)
        assert doc["drift"]["tolerance"] == 1e9
        assert doc["drift"]["exceeded"] is False
        # kernel (virtual-clock) drift never feeds max_abs
        wall_drifts = [
            abs(r["drift"] - 1.0)
            for e in doc["ranks"] for r in e["kernels"]
            if r.get("drift") is not None and r["clock"] == "wall"
        ]
        assert doc["drift"]["max_abs"] == pytest.approx(
            max(wall_drifts) if wall_drifts else 0.0)

    def test_default_tolerance_is_the_anomaly_threshold(self):
        doc = build_profile(tiny_problem().solve())
        assert doc["drift"]["tolerance"] == DRIFT_TOLERANCE

    def test_per_launch_records_included_when_enabled(self):
        with profile_run():
            solver = tiny_problem().solve()
            doc = build_profile(solver)
        assert doc["meta"]["per_launch"] is True
        (entry,) = doc["ranks"]
        assert any(l["name"] == "solve" for l in entry["launches"])

    def test_virtual_clock_determinism(self):
        # under the virtual bench clock the whole document is a pure
        # function of the model: two identical runs agree bit-for-bit
        def one_run():
            solver = tiny_problem(gpu=True).generate()
            solver.state.timers.clock = VirtualClock()
            with profile_run():
                solver.run(3)
                return build_profile(solver)

        a, b = one_run(), one_run()
        assert a["ranks"] == b["ranks"]
        assert a["drift"] == b["drift"]
        assert a["meta"] == b["meta"]


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        doc = build_profile(tiny_problem().solve())
        path = write_profile(doc, tmp_path / "p.json")
        loaded = load_profile(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["meta"] == doc["meta"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "repro.bench/1"}))
        with pytest.raises(ReproError, match="not a profile"):
            load_profile(path)

    def test_table_renders(self):
        doc = build_profile(tiny_problem(gpu=True).solve())
        text = profile_table(doc)
        assert "I_interior_step" in text
        assert "perfmodel drift" in text
        assert profile_table(doc, top=1).count("\n") < text.count("\n")


def _fake_profile(self_times: dict[str, float], key: str = "k1") -> dict:
    return {
        "schema": SCHEMA,
        "meta": {"problem_key": key},
        "ranks": [{
            "rank": 0,
            "kernels": [
                {"kind": "kernel", "name": name, "self_s": secs,
                 "clock": "virtual"}
                for name, secs in self_times.items()
            ],
        }],
        "drift": {"tolerance": 0.5, "max_abs": 0.0, "exceeded": False},
    }


class TestCompareProfiles:
    def test_culprit_is_largest_regression(self):
        a = _fake_profile({"fast": 1.0, "slow": 1.0})
        b = _fake_profile({"fast": 1.1, "slow": 3.0})
        cmp = compare_profiles(a, b)
        assert cmp["rows"][0]["name"] == "slow"
        assert cmp["culprit"]["name"] == "slow"
        assert cmp["culprit"]["delta_s"] == pytest.approx(2.0)
        assert cmp["culprit"]["ratio"] == pytest.approx(3.0)
        assert cmp["meta"]["same_problem"] is True

    def test_no_culprit_when_nothing_slower(self):
        a = _fake_profile({"k": 2.0})
        b = _fake_profile({"k": 1.0})
        cmp = compare_profiles(a, b)
        assert cmp["culprit"] is None
        assert "none" in compare_table(cmp)

    def test_one_sided_rows_compare_against_zero(self):
        cmp = compare_profiles(_fake_profile({}), _fake_profile({"new": 1.5}))
        (row,) = cmp["rows"]
        assert row["self_s_a"] == 0.0 and row["delta_s"] == 1.5
        assert row["ratio"] is None

    def test_different_problem_keys_flagged(self):
        cmp = compare_profiles(_fake_profile({"k": 1.0}, key="a"),
                               _fake_profile({"k": 1.0}, key="b"))
        assert cmp["meta"]["same_problem"] is False

    def test_injected_chunking_slowdown_ranked_first(self):
        # the acceptance drill: same problem twice, the second run with the
        # kernel-chunking override; compare must name the slowed kernel.
        # Virtual phase timers keep tiny-problem wall noise out of the
        # ranking — on real workloads the kernel delta dominates anyway.
        def run(chunks: int = 0) -> dict:
            solver = tiny_problem(gpu=True, chunks=chunks).generate()
            solver.state.timers.clock = VirtualClock()
            solver.run(3)
            return build_profile(solver)

        base, slow = run(), run(chunks=4)
        cmp = compare_profiles(base, slow)
        assert cmp["meta"]["same_problem"] is True
        assert cmp["culprit"] is not None
        assert cmp["culprit"]["name"] == "I_interior_step"
        assert cmp["culprit"]["kind"] == "kernel"
        assert "top culprit" in compare_table(cmp)


class TestExtractProfile:
    def test_bare_profile_passes_through(self):
        doc = _fake_profile({"k": 1.0})
        assert extract_profile(doc) is doc

    def test_report_and_registry_nesting(self):
        prof = _fake_profile({"k": 1.0})
        report = {"schema": "repro.run_report/1", "profile": prof}
        entry = {"schema": "repro.runs/1", "profile": prof}
        nested = {"schema": "repro.runs/1", "report": report}
        assert extract_profile(report) is prof
        assert extract_profile(entry) is prof
        assert extract_profile(nested) is prof

    def test_rejects_profileless_documents(self):
        with pytest.raises(ReproError, match="no profile"):
            extract_profile({"schema": "repro.run_report/1"})
        with pytest.raises(ReproError, match="not a profile-bearing"):
            extract_profile({"schema": "repro.bench/1"})
