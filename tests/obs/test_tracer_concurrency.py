"""Tracer install/restore under nesting and the SPMD executor's threads."""

import numpy as np

from repro.obs import NULL_TRACER, Tracer, get_tracer, set_tracer, trace_run
from repro.runtime.executor import run_spmd
from repro.runtime.netmodel import IB_CLUSTER


class TestTraceRunNesting:
    def test_nested_blocks_restore_in_order(self):
        assert get_tracer() is NULL_TRACER
        with trace_run() as outer:
            assert get_tracer() is outer
            with trace_run() as inner:
                assert inner is not outer
                assert get_tracer() is inner
                inner.complete("t", "inner_span", 0.0, 1.0)
            assert get_tracer() is outer
            outer.complete("t", "outer_span", 0.0, 1.0)
        assert get_tracer() is NULL_TRACER
        assert [s.name for s in outer.spans] == ["outer_span"]
        assert [s.name for s in inner.spans] == ["inner_span"]

    def test_reentering_with_same_tracer_accumulates(self):
        tracer = Tracer()
        with trace_run(tracer=tracer):
            tracer.complete("t", "first", 0.0, 1.0)
        with trace_run(tracer=tracer):
            tracer.complete("t", "second", 1.0, 2.0)
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_restore_on_exception(self):
        try:
            with trace_run():
                raise ValueError("boom")
        except ValueError:
            pass
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_resets(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


def _rank_program(comm):
    """Exercises compute charging, exchange and allreduce on every rank."""
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    comm.compute(1e-3, phase="solve")
    got = comm.exchange({left: np.ones(8), right: np.ones(8)}, tag=3)
    total = comm.allreduce(np.array([float(comm.rank)]))
    return {"rank": comm.rank, "n_recv": len(got), "sum": float(total[0])}


class TestSPMDThreads:
    def test_null_tracer_under_spmd_records_nothing(self):
        assert get_tracer() is NULL_TRACER
        result = run_spmd(4, _rank_program, IB_CLUSTER)
        assert [r["rank"] for r in result.results] == [0, 1, 2, 3]
        assert all(r["sum"] == 6.0 for r in result.results)
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.span("t", "x").__enter__() is not None

    def test_live_tracer_collects_all_rank_tracks(self):
        with trace_run() as tracer:
            run_spmd(4, _rank_program, IB_CLUSTER)
        tracks = tracer.tracks()
        for rank in range(4):
            assert f"virtual/rank{rank}" in tracks
        # the executor's threads each record a rank_program span too
        names = {s.name for s in tracer.spans}
        assert "rank_program" in names
        assert "allreduce" in names

    def test_concurrent_recording_is_complete(self):
        with trace_run() as tracer:
            run_spmd(8, _rank_program, IB_CLUSTER)
        compute = [s for s in tracer.spans if s.cat == "compute"]
        # every rank charged exactly one explicit compute phase
        assert len([s for s in compute if s.name == "solve"]) == 8
