"""The always-on flight recorder and its ``repro.blackbox/1`` bundles."""

import json

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.obs import get_flight_recorder, metrics_run, trace_run
from repro.obs.log import EventLog, set_event_log
from repro.runtime.executor import run_spmd
from repro.util.errors import ReproError
from repro.verify import SanitizerError, get_sanitizer, sanitize_run


@pytest.fixture(autouse=True)
def fresh_recorder():
    rec = get_flight_recorder()
    saved_dir = rec.directory
    rec.reset()
    rec.directory = None
    previous = set_event_log(EventLog())
    yield rec
    rec.reset()
    rec.directory = saved_dir
    rec.enabled = True
    set_event_log(previous)
    san = get_sanitizer()
    san.reset()
    san.enabled = False
    san.was_active = False


def tiny():
    return hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2,
                            dt=1e-12, nsteps=3)


def poison(state):
    state.u[0, 0] = np.nan


class TestRecorder:
    def test_heartbeat_snapshot_cadence(self, fresh_recorder):
        fresh_recorder.configure(snapshot_every=2)
        for step in range(5):
            fresh_recorder.heartbeat(step=step, rank=0)
        doc = fresh_recorder.bundle("test")
        assert doc["heartbeats"] == 5
        assert len(doc["snapshots"]) == 2
        assert doc["snapshots"][-1]["step"] == 3

    def test_snapshot_captures_counter_totals(self, fresh_recorder):
        with metrics_run() as metrics:
            metrics.counter("comm_messages_total", "msgs").inc(3, rank=0)
            fresh_recorder.snapshot(step=1)
            doc = fresh_recorder.bundle("test")
        assert doc["snapshots"][0]["counters"]["comm_messages_total"] == 3.0

    def test_bundle_carries_events_error_and_trace_id(self, fresh_recorder, tmp_path):
        from repro.obs.log import get_event_log

        with trace_run(tmp_path / "t.json") as tracer:
            get_event_log().emit("fault.injected", level="warning",
                                 rank=1, step=4, kind="drop")
            doc = fresh_recorder.bundle("test", ValueError("boom"))
            assert doc["trace_id"] == tracer.trace_id
        assert doc["schema"] == "repro.blackbox/1"
        assert doc["reason"] == "test"
        assert doc["error"] == {"type": "ValueError", "message": "boom",
                                "code": None}
        names = [e["name"] for e in doc["events"]]
        assert "fault.injected" in names
        ev = doc["events"][names.index("fault.injected")]
        assert ev["rank"] == 1 and ev["step"] == 4

    def test_dump_in_memory_without_directory(self, fresh_recorder):
        assert fresh_recorder.dump("test") is None
        assert fresh_recorder.last_bundle["reason"] == "test"
        assert fresh_recorder.dumps_written == []

    def test_dump_writes_file_and_emits_event(self, fresh_recorder, tmp_path):
        from repro.obs.log import get_event_log

        fresh_recorder.configure(directory=tmp_path)
        path = fresh_recorder.dump("test", ReproError("bad", code="RPR999"))
        assert path is not None and path.parent == tmp_path
        doc = json.loads(path.read_text())
        assert doc["error"]["code"] == "RPR999"
        assert any(e.name == "blackbox.dumped"
                   for e in get_event_log().tail())

    def test_disabled_recorder_dumps_nothing(self, fresh_recorder, tmp_path):
        fresh_recorder.configure(directory=tmp_path, enabled=False)
        fresh_recorder.heartbeat(step=1)
        assert fresh_recorder.dump("test") is None
        assert list(tmp_path.iterdir()) == []

    def test_env_var_directory(self, fresh_recorder, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        path = fresh_recorder.dump("test")
        assert path is not None and path.parent == tmp_path


class TestCrashBundles:
    """The acceptance paths: NaN trip and rank failure leave forensics."""

    def test_sanitizer_nan_trip_dumps_bundle_with_provenance(
            self, fresh_recorder, tmp_path):
        fresh_recorder.configure(directory=tmp_path)
        p, _ = build_bte_problem(tiny())
        p.add_post_step(poison, name="poison")
        with sanitize_run():
            with pytest.raises(SanitizerError):
                p.solve()
        bundles = list(tmp_path.glob("blackbox_sanitizer_*.json"))
        assert len(bundles) == 1
        doc = json.loads(bundles[0].read_text())
        assert doc["reason"] == "sanitizer"
        assert doc["error"]["code"] == "RPR301"
        assert "step 1" in doc["error"]["message"]
        # the structured finding rode along with its step provenance
        finding = next(e for e in doc["events"] if e["name"] == "sanitizer.finding")
        assert finding["step"] == 1
        assert finding["fields"]["code"] == "RPR301"
        # the sanitizer's own section is embedded for offline triage
        assert any(d["code"] == "RPR301"
                   for d in doc["diagnostics"]["diagnostics"])

    def test_rank_failure_dumps_bundle_with_rank_and_span_ids(
            self, fresh_recorder, tmp_path):
        fresh_recorder.configure(directory=tmp_path)

        def prog(comm):
            comm.compute(1e-6)
            if comm.rank == 1:
                raise RuntimeError("device fell off the bus")
            return comm.rank

        with trace_run(tmp_path / "t.json"):
            with pytest.raises(ReproError, match="rank 1 failed"):
                run_spmd(2, prog)
        bundles = list(tmp_path.glob("blackbox_rank_failure_*.json"))
        assert len(bundles) == 1
        doc = json.loads(bundles[0].read_text())
        assert doc["error"]["type"] == "RuntimeError"
        assert doc["trace_id"]
        failed = next(e for e in doc["events"]
                      if e["name"] == "executor.rank_failed")
        assert failed["rank"] == 1
        assert "device fell off the bus" in failed["fields"]["error"]

    def test_dump_never_raises_on_broken_singletons(self, fresh_recorder):
        from collections import deque

        # a bundle source that explodes must not mask the real error
        class Exploding:
            def __getattr__(self, name):
                raise RuntimeError("broken")

        fresh_recorder._snapshots = Exploding()
        try:
            assert fresh_recorder.dump("test") is None
        finally:
            fresh_recorder._snapshots = deque(maxlen=16)
