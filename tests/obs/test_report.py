"""The aggregated RunReport document."""

import json
import math

import pytest

from repro.codegen.placement.graph import Task, TaskGraph
from repro.codegen.placement.optimizer import optimize_placement
from repro.gpu.spec import A6000
from repro.obs import SCHEMA, RunReport, Tracer, placement_accuracy
from repro.obs.report import _json_safe
from repro.util.timing import TimerRegistry


class TestJsonSafe:
    def test_replaces_non_finite(self):
        doc = _json_safe({"a": float("inf"), "b": [float("nan"), 1.0], "c": 2})
        assert doc == {"a": None, "b": [None, 1.0], "c": 2}
        json.dumps(doc)


class TestRunReport:
    def test_minimal_document(self):
        rep = RunReport(meta={"problem": "p"}, timers={}, phases={})
        doc = rep.to_dict()
        assert doc["schema"] == SCHEMA
        assert "comm" not in doc and "gpu" not in doc  # absent sections omitted

    def test_write_round_trips(self, tmp_path):
        rep = RunReport(meta={"x": 1}, timers={"solve": {"min": 0.0}})
        path = rep.write(tmp_path / "report.json")
        doc = json.loads(path.read_text())
        assert doc["meta"] == {"x": 1}

    def test_document_is_json_safe(self):
        rep = RunReport(meta={"bad": float("inf")})
        assert json.loads(rep.to_json())["meta"]["bad"] is None


class TestPlacementAccuracy:
    def _plan(self):
        g = TaskGraph()
        g.add_task(Task("interior", cost_cpu=1.0, cost_gpu=0.01))
        g.add_task(Task("callbacks", cost_cpu=0.02, pinned="cpu"))
        g.add_edge("interior", "callbacks", 1e6)
        return optimize_placement(g, A6000)

    def test_predicted_vs_measured(self):
        plan = self._plan()
        assert plan.device["interior"] == "gpu"
        timers = TimerRegistry()
        timers.record("solve", 0.04)
        section = placement_accuracy(
            plan, timers, nsteps=4, task_timer_map={"interior": "solve"}
        )
        entry = next(t for t in section["tasks"] if t["task"] == "interior")
        assert entry["device"] == "gpu"
        assert entry["predicted_s_per_step"] == pytest.approx(0.01)
        assert entry["measured_s_per_step"] == pytest.approx(0.01)
        assert entry["measured_over_predicted"] == pytest.approx(1.0)

    def test_unmeasured_task_has_none(self):
        plan = self._plan()
        section = placement_accuracy(plan, TimerRegistry(), nsteps=4)
        for entry in section["tasks"]:
            assert entry["measured_s_per_step"] is None

    def test_pinned_cpu_task_never_reports_inf(self):
        plan = self._plan()
        section = placement_accuracy(plan, TimerRegistry(), nsteps=1)
        entry = next(t for t in section["tasks"] if t["task"] == "callbacks")
        # cost_gpu defaults to inf but the CPU assignment reads cost_cpu
        assert entry["predicted_s_per_step"] == pytest.approx(0.02)
        json.dumps(_json_safe(section))


class TestBuildRunReport:
    @pytest.fixture(scope="class")
    def solver(self):
        from repro.bte import build_bte_problem, hotspot_scenario

        scenario = hotspot_scenario(
            nx=8, ny=8, ndirs=4, n_freq_bands=4, dt=1e-12, nsteps=3
        )
        problem, _ = build_bte_problem(scenario)
        return problem.solve()

    def test_cpu_solver_report(self, solver):
        rep = solver.run_report()
        doc = rep.to_dict()
        assert doc["schema"] == SCHEMA
        assert doc["meta"]["target"] == "cpu"
        assert doc["meta"]["nsteps_run"] == solver.state.step_index
        assert "solve" in doc["timers"]
        # never-recorded timers stay JSON-safe
        json.dumps(doc)
        assert "gpu" not in doc and "comm" not in doc

    def test_tracer_summary_included(self, solver):
        tr = Tracer()
        tr.complete("t", "a", 0.0, 1.0)
        doc = solver.run_report(tr).to_dict()
        assert doc["trace"]["n_spans"] == 1

    def test_timer_min_normalised(self):
        from repro.util.timing import TimerStats

        s = TimerStats("never_recorded")
        assert s.min == math.inf  # raw dataclass default
        d = s.as_dict()
        assert d["min"] == 0.0  # normalised for export
        json.dumps(d)


class TestProfileSection:
    @pytest.fixture(scope="class")
    def gpu_solver(self):
        from repro.bte import build_bte_problem, hotspot_scenario

        scenario = hotspot_scenario(
            nx=8, ny=8, ndirs=4, n_freq_bands=4, dt=1e-12, nsteps=3
        )
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
        return problem.solve()

    def test_report_embeds_nested_profile(self, gpu_solver):
        doc = gpu_solver.run_report().to_dict()
        assert doc["profile"]["schema"] == "repro.profile/1"
        assert doc["profile"]["meta"]["target"] == "gpu"
        assert doc["profile"]["ranks"]
        json.dumps(doc)

    def test_device_section_has_roofline_rows(self, gpu_solver):
        doc = gpu_solver.run_report().to_dict()
        (device,) = doc["gpu"]["devices"]
        # legacy aggregate dict stays for old consumers
        assert "I_interior_step" in device["kernels"]
        (row,) = device["kernel_rows"]
        assert row["name"] == "I_interior_step"
        for key in ("intensity_flop_per_byte", "ridge_flop_per_byte",
                    "bound", "flop_fraction_of_peak", "sm_utilization"):
            assert key in row

    def test_multi_gpu_rank_kernels(self):
        from repro.bte import build_bte_problem, hotspot_scenario

        scenario = hotspot_scenario(
            nx=8, ny=8, ndirs=4, n_freq_bands=4, dt=1e-12, nsteps=2
        )
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
        problem.set_partitioning("bands", 2, index="b")
        doc = problem.solve().run_report().to_dict()
        assert len(doc["gpu"]["rank_kernels"]) == 2
        for rows in doc["gpu"]["rank_kernels"]:
            assert any(r["name"] == "I_interior_step" for r in rows)


class TestOldFormatCompat:
    """``repro.run_report/1`` documents written before the profile/health
    sections existed must keep loading everywhere (analyze, CLI)."""

    from pathlib import Path as _Path

    FIXTURE = _Path(__file__).parent / "data" / "golden_report.json"

    def test_fixture_predates_new_sections(self):
        doc = json.loads(self.FIXTURE.read_text())
        assert doc["schema"].startswith("repro.run_report/")
        assert "profile" not in doc and "health" not in doc
        (device,) = doc["gpu"]["devices"]
        assert "kernel_rows" not in device

    def test_analyze_tolerates_old_document(self):
        from repro.obs.analyze import analyze

        analysis = analyze(report_path=self.FIXTURE)
        assert analysis.kernels == []  # nothing fabricated
        assert analysis.profile_drift is None
        text = analysis.render_text()
        assert "per-kernel" not in text
        assert "perfmodel drift" not in text

    def test_cli_analyze_old_document(self, capsys):
        from repro.cli import main

        assert main(["analyze", str(self.FIXTURE)]) == 0
        out = capsys.readouterr().out
        assert "reported phase fractions" in out
