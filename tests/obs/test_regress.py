"""Benchmark envelopes and the regression gate."""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    SCHEMA,
    compare,
    load_bench,
    write_bench,
)


def _env(name, timings):
    return {"schema": SCHEMA, "name": name, "timings": timings}


class TestEnvelope:
    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_bench(tmp_path / "b.json", "suite", {"a": 1.0}, nx=16)
        doc = load_bench(path)
        assert doc["schema"] == SCHEMA
        assert doc["timings"]["a"] == 1.0
        assert doc["meta"]["nx"] == 16

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "repro.run_report/1"}))
        with pytest.raises(ValueError):
            load_bench(path)

    def test_load_rejects_missing_timings(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError):
            load_bench(path)

    def test_figure_benchmarks_share_the_schema(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parents[2] / "benchmarks"))
        try:
            import conftest as bench_conftest
        finally:
            sys.path.pop(0)
        assert bench_conftest.BENCH_SCHEMA == SCHEMA


class TestCompare:
    def test_identical_timings_pass(self):
        base = _env("base", {"a_virtual_s": 1.0, "b_wall_s": 2.0})
        report = compare(base, _env("cur", {"a_virtual_s": 1.0, "b_wall_s": 2.0}))
        assert not report.has_regressions
        assert all(d.status == "ok" for d in report.deltas)

    def test_slowdown_above_threshold_regresses(self):
        base = _env("base", {"a_s": 1.0})
        cur = _env("cur", {"a_s": 1.0 * (1 + DEFAULT_THRESHOLD) * 1.01})
        report = compare(base, cur)
        assert report.has_regressions
        assert report.deltas[0].status == "regression"

    def test_slowdown_below_threshold_passes(self):
        base = _env("base", {"a_s": 1.0})
        cur = _env("cur", {"a_s": 1.0 * (1 + DEFAULT_THRESHOLD) * 0.99})
        assert not compare(base, cur).has_regressions

    def test_threshold_is_configurable(self):
        base = _env("base", {"a_s": 1.0})
        cur = _env("cur", {"a_s": 1.05})
        assert not compare(base, cur).has_regressions
        assert compare(base, cur, threshold=0.01).has_regressions

    def test_wall_benchmarks_use_looser_threshold(self):
        base = _env("base", {"a_wall_s": 1.0})
        cur = _env("cur", {"a_wall_s": 1.5})  # +50%: over 0.25, under 1.0
        assert not compare(base, cur).has_regressions
        assert compare(base, cur, wall_threshold=0.25).has_regressions

    def test_new_and_missing_are_not_regressions(self):
        base = _env("base", {"gone_s": 1.0})
        cur = _env("cur", {"fresh_s": 1.0})
        report = compare(base, cur)
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses == {"gone_s": "missing", "fresh_s": "new"}
        assert not report.has_regressions

    def test_improvement_is_flagged_but_passes(self):
        base = _env("base", {"a_s": 1.0})
        report = compare(base, _env("cur", {"a_s": 0.5}))
        assert report.deltas[0].status == "improved"
        assert not report.has_regressions

    def test_tiny_baselines_are_skipped(self):
        base = _env("base", {"a_s": 1e-9})
        report = compare(base, _env("cur", {"a_s": 1e-3}))
        assert report.deltas[0].status == "ok"

    def test_overhead_ratio_judged_against_ideal(self):
        # an on-vs-off ratio is gated on its distance from 1.0, not on the
        # baseline's own noisy measurement of the same ideal
        base = _env("base", {"events_on_vs_off_wall_s": 0.97})
        ok = _env("cur", {"events_on_vs_off_wall_s": 1.04})
        assert not compare(base, ok).has_regressions  # +7% vs base, but <1.05
        bad = _env("cur", {"events_on_vs_off_wall_s": 1.06})
        report = compare(base, bad)
        assert report.has_regressions
        assert report.deltas[0].slowdown == pytest.approx(0.06)

    def test_overhead_ratio_under_one_is_not_improved(self):
        base = _env("base", {"blackbox_on_vs_off_wall_s": 1.0})
        report = compare(base, _env("cur", {"blackbox_on_vs_off_wall_s": 0.98}))
        assert report.deltas[0].status == "ok"  # within noise of the ideal

    def test_render_text_marks_regressions(self):
        base = _env("base", {"a_s": 1.0})
        report = compare(base, _env("cur", {"a_s": 2.0}))
        text = report.render_text()
        assert "REGRESSION" in text
        assert "+100.0%" in text

    def test_to_dict_is_json_safe(self):
        base = _env("base", {"a_s": 1.0})
        doc = compare(base, _env("cur", {"a_s": 2.0})).to_dict()
        json.dumps(doc)
        assert doc["regressions"] == 1


class TestSeedBaseline:
    def test_committed_seed_is_a_valid_envelope(self):
        from pathlib import Path

        seed = Path(__file__).parents[2] / "benchmarks" / "BENCH_seed.json"
        doc = load_bench(seed)
        assert doc["timings"], "seed baseline must carry timings"
        assert any(k.endswith("_virtual_s") for k in doc["timings"])

    def test_seed_carries_profiler_overhead_entry(self):
        from pathlib import Path

        seed = Path(__file__).parents[2] / "benchmarks" / "BENCH_seed.json"
        timings = load_bench(seed)["timings"]
        assert "profile_on_vs_off_wall_s" in timings
        # a ratio near 1.0, not seconds: the 5% overhead budget applies
        assert 0.5 < timings["profile_on_vs_off_wall_s"] < 1.5


class TestProfilerOverheadGate:
    def test_profile_ratio_uses_the_overhead_threshold(self):
        from repro.obs.regress import _threshold_for, OBS_OVERHEAD_THRESHOLD

        assert _threshold_for("profile_on_vs_off_wall_s", None, None) \
            == OBS_OVERHEAD_THRESHOLD

    def test_profile_ratio_gated_at_five_percent(self):
        base = _env("base", {"profile_on_vs_off_wall_s": 1.0})
        ok = compare(base, _env("cur", {"profile_on_vs_off_wall_s": 1.04}))
        assert not ok.has_regressions
        bad = compare(base, _env("cur", {"profile_on_vs_off_wall_s": 1.06}))
        assert [d.name for d in bad.regressions] == [
            "profile_on_vs_off_wall_s"]


class TestRebalanceOverheadGate:
    def test_ratio_uses_its_own_threshold(self):
        from repro.obs.regress import (
            _threshold_for,
            OBS_OVERHEAD_THRESHOLD,
            REBALANCE_OVERHEAD_THRESHOLD,
        )

        got = _threshold_for("rebalance_overhead_wall_s", None, None)
        assert got == REBALANCE_OVERHEAD_THRESHOLD
        assert got > OBS_OVERHEAD_THRESHOLD  # real work, looser budget

    def test_gated_against_the_ideal_not_the_baseline(self):
        # baseline already over the ideal: current is judged vs 1.0
        base = _env("base", {"rebalance_overhead_wall_s": 1.2})
        ok = compare(base, _env("cur", {"rebalance_overhead_wall_s": 1.2}))
        assert not ok.has_regressions
        bad = compare(base, _env("cur", {"rebalance_overhead_wall_s": 1.3}))
        assert [d.name for d in bad.regressions] == [
            "rebalance_overhead_wall_s"]

    def test_seed_carries_elastic_entries(self):
        from pathlib import Path

        seed = Path(__file__).parents[2] / "benchmarks" / "BENCH_seed.json"
        timings = load_bench(seed)["timings"]
        assert 0.5 < timings["rebalance_overhead_wall_s"] < 1.5
        # skewed strong scaling: deterministic virtual makespans, and
        # more ranks must still mean a shorter skewed run
        r4 = timings["skewed_rebalance_virtual_s_r4"]
        r16 = timings["skewed_rebalance_virtual_s_r16"]
        assert 0.0 < r16 < r4
