"""End-to-end traces across the execution targets.

These are the acceptance checks of the observability subsystem: a hybrid
GPU run must produce distinct host/device/rank tracks, with the interior
kernel span overlapping the host boundary-callback span (the paper's
Fig. 6 async overlap), and a run report carrying the placement
predicted-vs-measured section.
"""

import json

import pytest

from repro.bte import build_bte_problem, hotspot_scenario
from repro.obs import trace_run


def _tracks_by_kind(tracer):
    tracks = tracer.tracks()
    return {
        "host": [t for t in tracks if t.startswith("host/")],
        "virtual": [t for t in tracks if t.startswith("virtual/")],
        "hybrid": [t for t in tracks if t.startswith("hybrid/")],
        "device": [t for t in tracks if t.startswith("gpu")],
    }


@pytest.fixture(scope="module")
def hybrid_run(tmp_path_factory):
    scenario = hotspot_scenario(nx=12, ny=12, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=3)
    problem, _ = build_bte_problem(scenario)
    problem.enable_gpu()
    problem.extra["gpu_force_offload"] = True
    path = tmp_path_factory.mktemp("trace") / "hybrid.json"
    with trace_run(path) as tracer:
        solver = problem.solve()
        report = solver.run_report(tracer)
    return solver, tracer, report, path


class TestHybridTrace:
    def test_distinct_track_domains(self, hybrid_run):
        _, tracer, _, _ = hybrid_run
        kinds = _tracks_by_kind(tracer)
        assert kinds["host"], "wall-clock host track missing"
        assert kinds["hybrid"], "generated host virtual track missing"
        assert any(t.endswith("/transfer") for t in kinds["device"])
        assert any(not t.endswith("/transfer") for t in kinds["device"])

    def test_kernel_overlaps_boundary_callbacks(self, hybrid_run):
        """The paper's Fig. 6: the async interior kernel runs on the device
        while the host executes the boundary contribution."""
        _, tracer, _, _ = hybrid_run
        kernels = [s for s in tracer.spans if s.cat == "kernel"]
        boundary = tracer.find_spans("boundary_callbacks")
        assert kernels and boundary
        assert any(k.overlaps(b) for k in kernels for b in boundary)

    def test_device_spans_carry_kernel_attrs(self, hybrid_run):
        _, tracer, _, _ = hybrid_run
        span = next(s for s in tracer.spans if s.cat == "kernel")
        assert span.args["flops"] > 0
        assert 0.0 < span.args["occupancy"] <= 1.0

    def test_trace_json_is_valid_chrome_trace(self, hybrid_run):
        _, _, _, path = hybrid_run
        doc = json.loads(path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        pids = {e["pid"] for e in xs}
        assert len(pids) >= 3  # host, hybrid host, device processes

    def test_report_has_placement_accuracy(self, hybrid_run):
        _, _, report, _ = hybrid_run
        doc = report.to_dict()
        assert doc["placement"]["tasks"]
        interior = next(
            t for t in doc["placement"]["tasks"] if t["task"] == "interior_update"
        )
        assert interior["device"] == "gpu"
        assert interior["predicted_s_per_step"] > 0
        assert interior["measured_s_per_step"] > 0
        json.dumps(doc)

    def test_report_gpu_section(self, hybrid_run):
        _, _, report, _ = hybrid_run
        doc = report.to_dict()
        devices = doc["gpu"]["devices"]
        assert devices and devices[0]["kernels"]
        assert doc["gpu"]["devices"][0]["transfers"]["h2d"]["count"] > 0


class TestDistributedTrace:
    def test_per_rank_tracks_and_comm_section(self):
        scenario = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                                    dt=1e-12, nsteps=2)
        problem, _ = build_bte_problem(scenario)
        problem.set_partitioning("bands", 2, index="b")
        with trace_run() as tracer:
            solver = problem.solve()
            report = solver.run_report(tracer)
        kinds = _tracks_by_kind(tracer)
        assert kinds["virtual"] == ["virtual/rank0", "virtual/rank1"]
        assert set(kinds["host"]) >= {"host/rank0", "host/rank1"}
        doc = report.to_dict()
        assert doc["comm"]["nranks"] == 2
        assert doc["comm"]["makespan_s"] > 0

    def test_serial_run_emits_phase_spans(self):
        scenario = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                                    dt=1e-12, nsteps=2)
        problem, _ = build_bte_problem(scenario)
        with trace_run() as tracer:
            problem.solve()
        assert len(tracer.find_spans("solve")) == 2
        assert tracer.find_spans("run[cpu]")
