"""The trace/report analyzer: interval arithmetic, critical path, overlap
scores, and golden-file agreement on a recorded GPU-run trace."""

import json
from pathlib import Path

import pytest

from repro.obs.analyze import (
    Flow,
    Span,
    analysis_domain,
    analyze,
    critical_path,
    critical_path_measured,
    intersection_length,
    kernel_boundary_overlap,
    load_trace,
    load_trace_doc,
    merge_intervals,
    overlap_score,
    total_length,
)
from repro.obs.tracer import Tracer

DATA = Path(__file__).parent / "data"


class TestIntervals:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 1)]) == []

    def test_total_length(self):
        assert total_length([(0, 2), (5, 6)]) == pytest.approx(3.0)

    def test_intersection(self):
        a = [(0.0, 4.0), (6.0, 8.0)]
        b = [(2.0, 7.0)]
        assert intersection_length(a, b) == pytest.approx(2.0 + 1.0)

    def test_disjoint_intersection_is_zero(self):
        assert intersection_length([(0, 1)], [(2, 3)]) == 0.0


class TestOverlapScore:
    def test_full_overlap_is_one(self):
        a = [Span("d/s0", "k", 0.0, 10.0, cat="kernel")]
        b = [Span("h", "boundary_callbacks", 2.0, 4.0, cat="phase")]
        score = overlap_score(a, b, "kernel", "boundary")
        assert score["efficiency"] == pytest.approx(1.0)
        assert score["overlapped_s"] == pytest.approx(2.0)

    def test_partial_overlap(self):
        a = [Span("d/s0", "k", 0.0, 4.0, cat="kernel")]
        b = [Span("h", "b", 2.0, 8.0)]
        score = overlap_score(a, b, "kernel", "boundary")
        # overlapped 2s over the shorter side's 4s busy
        assert score["efficiency"] == pytest.approx(0.5)

    def test_missing_side_gives_none(self):
        assert overlap_score([], [Span("h", "b", 0, 1)], "a", "b") is None

    def test_kernel_boundary_selector(self):
        spans = [
            Span("d/s0", "k", 0.0, 3.0, cat="kernel"),
            Span("h", "boundary_callbacks", 1.0, 2.0, cat="phase"),
            Span("h", "other", 0.0, 9.0, cat="phase"),
        ]
        score = kernel_boundary_overlap(spans)
        assert score["efficiency"] == pytest.approx(1.0)


class TestCriticalPath:
    def test_phases_sum_to_makespan(self):
        spans = [
            Span("t", "a", 0.0, 2.0),
            Span("t", "b", 3.0, 5.0),
        ]
        crit = critical_path(spans)
        assert crit["makespan_s"] == pytest.approx(5.0)
        assert crit["phases"]["a"] == pytest.approx(2.0)
        assert crit["phases"]["b"] == pytest.approx(2.0)
        assert crit["phases"]["idle"] == pytest.approx(1.0)
        assert sum(crit["phases"].values()) == pytest.approx(crit["makespan_s"])

    def test_innermost_span_wins(self):
        spans = [
            Span("t", "outer", 0.0, 10.0),
            Span("t", "inner", 4.0, 6.0),
        ]
        crit = critical_path(spans)
        assert crit["phases"]["inner"] == pytest.approx(2.0)
        assert crit["phases"]["outer"] == pytest.approx(8.0)

    def test_envelope_categories_excluded(self):
        spans = [
            Span("t", "run[gpu]", 0.0, 10.0, cat="run"),
            Span("t", "work", 1.0, 2.0),
        ]
        crit = critical_path(spans)
        assert "run[gpu]" not in crit["phases"]
        assert crit["makespan_s"] == pytest.approx(1.0)

    def test_empty(self):
        assert critical_path([]) == {"makespan_s": 0.0, "phases": {}, "path": []}


class TestMeasuredCriticalPath:
    """Backward walk over the *recorded* dependency chain."""

    def two_rank_spans(self):
        # rank 0 computes, then sends; rank 1 blocks on the recv and
        # finishes last — the makespan is causally pinned to rank 0
        return [
            Span("virtual/rank0", "compute", 0.0, 2.0, cat="compute"),
            Span("virtual/rank0", "send->1", 2.0, 2.0, cat="comm",
                 args={"span_id": 10}),
            Span("virtual/rank1", "recv<-0", 0.0, 2.1, cat="comm",
                 args={"span_id": 20, "parent_span_id": 10, "waited_s": 2.0}),
            Span("virtual/rank1", "finish", 2.1, 2.5, cat="compute"),
        ]

    def test_p2p_jump_through_flow_edge(self):
        flows = [Flow("msg:0->1", 10, "virtual/rank0", 2.0,
                      "virtual/rank1", 2.1)]
        measured = critical_path_measured(self.two_rank_spans(), flows)
        assert measured["rank_hops"] == 1
        assert [s["name"] for s in measured["path"]] == [
            "compute", "send->1", "recv<-0", "finish"]
        assert measured["makespan_s"] == pytest.approx(2.5)
        # rank 0's compute dominates; the recv's blocked time is not
        # double-charged past the send it jumped to
        assert measured["phases"]["compute"] == pytest.approx(2.0)
        assert measured["phases"]["recv<-0"] == pytest.approx(0.1)

    def test_no_flow_means_no_jump(self):
        # without a recorded edge the walk stays on rank 1's own track
        measured = critical_path_measured(self.two_rank_spans(), [])
        assert measured["rank_hops"] == 0
        assert {s["track"] for s in measured["path"]} == {"virtual/rank1"}

    def test_nonblocking_recv_does_not_jump(self):
        spans = self.two_rank_spans()
        recv = spans[2]
        recv.args = dict(recv.args, waited_s=0.0)
        flows = [Flow("msg:0->1", 10, "virtual/rank0", 2.0,
                      "virtual/rank1", 2.1)]
        measured = critical_path_measured(spans, flows)
        assert measured["rank_hops"] == 0

    def test_collective_flow_resolves_src_span_arg(self):
        # collective arrows mint fresh ids and name the straggler's entry
        # span in args["src_span"] — the jump must still resolve
        spans = [
            Span("virtual/rank1", "compute", 0.0, 3.0, cat="compute"),
            Span("virtual/rank1", "allreduce-enter", 3.0, 3.0, cat="comm",
                 args={"span_id": 10}),
            Span("virtual/rank1", "allreduce", 3.0, 3.2, cat="comm",
                 args={"span_id": 11, "parent_span_id": 0, "waited_s": 0.2}),
            Span("virtual/rank0", "allreduce", 0.0, 3.2, cat="comm",
                 args={"span_id": 12, "parent_span_id": 10, "waited_s": 3.2}),
            Span("virtual/rank0", "post", 3.2, 3.3, cat="compute"),
        ]
        flows = [Flow("coll:allreduce", 99, "virtual/rank1", 3.0,
                      "virtual/rank0", 3.2, args={"src_span": 10,
                                                  "src_rank": 1})]
        measured = critical_path_measured(spans, flows)
        assert measured["rank_hops"] == 1
        names = [s["name"] for s in measured["path"]]
        assert names[0] == "compute" and names[-1] == "post"
        assert measured["phases"]["compute"] == pytest.approx(3.0)

    def test_idle_gap_is_charged(self):
        spans = [Span("t", "a", 0.0, 1.0), Span("t", "b", 2.0, 3.0)]
        measured = critical_path_measured(spans, [])
        assert measured["phases"]["idle"] == pytest.approx(1.0)
        assert measured["makespan_s"] == pytest.approx(3.0)

    def test_empty(self):
        measured = critical_path_measured([], [])
        assert measured == {"makespan_s": 0.0, "phases": {}, "path": [],
                            "rank_hops": 0, "n_flows": 0}


class TestLoadTrace:
    def test_roundtrip_through_chrome_json(self, tmp_path):
        tracer = Tracer()
        tracer.complete("virtual/rank0", "solve", 1.0, 2.5, cat="compute", n=3)
        tracer.complete("gpu0/stream0", "k", 0.0, 1.0, cat="kernel")
        path = tracer.write(tmp_path / "t.json")
        spans = load_trace(path)
        assert {s.track for s in spans} == {"virtual/rank0", "gpu0/stream0"}
        solve = next(s for s in spans if s.name == "solve")
        assert solve.t0 == pytest.approx(1.0)
        assert solve.t1 == pytest.approx(2.5)
        assert solve.cat == "compute"
        assert solve.args["n"] == 3

    def test_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([
            {"ph": "X", "name": "w", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1e6},
        ]))
        spans = load_trace(path)
        assert len(spans) == 1
        assert spans[0].duration == pytest.approx(1.0)

    def test_empty_tracer_roundtrips_as_degenerate_trace(self, tmp_path):
        # a run with no spans still writes valid JSON (a trace_empty
        # instant) that loads back as zero spans and zero flows
        path = Tracer().write(tmp_path / "empty.json")
        doc = json.loads(path.read_text())
        assert any(e.get("ph") == "i" and e.get("name") == "trace_empty"
                   for e in doc["traceEvents"])
        spans, flows = load_trace_doc(path)
        assert spans == [] and flows == []

    def test_unpaired_flow_start_is_discarded(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps([
            {"ph": "X", "name": "w", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 1e6},
            {"ph": "s", "name": "msg", "id": 7, "pid": 1, "tid": 1,
             "ts": 0.0},
        ]))
        spans, flows = load_trace_doc(path)
        assert len(spans) == 1
        assert flows == []

    def test_domain_prefers_virtual_processes(self):
        spans = [
            Span("host/MainThread", "wall", 1e6, 1e6 + 1.0, cat="phase"),
            Span("gpu0/stream0", "k", 0.0, 1.0, cat="kernel"),
            Span("gpu0/transfer", "h2d", 0.0, 0.5, cat="transfer"),
        ]
        domain = analysis_domain(spans)
        assert all(s.process == "gpu0" for s in domain)


class TestGolden:
    """Analyze the committed recorded trace of a small hybrid GPU run."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads((DATA / "golden_analysis.json").read_text())

    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze(DATA / "golden_trace.json", DATA / "golden_report.json")

    def test_trace_stats(self, analysis, golden):
        assert analysis.trace_stats["n_spans"] == golden["n_spans"]
        assert analysis.trace_stats["n_tracks"] == golden["n_tracks"]

    def test_makespan_and_phases(self, analysis, golden):
        crit = analysis.critical
        assert crit["makespan_s"] == pytest.approx(golden["makespan_s"], rel=1e-9)
        assert set(crit["phases"]) == set(golden["phases"])
        for name, secs in golden["phases"].items():
            assert crit["phases"][name] == pytest.approx(secs, rel=1e-9), name

    def test_overlap_efficiency_in_unit_interval(self, analysis, golden):
        score = analysis.overlap["kernel_boundary"]
        assert 0.0 < score["efficiency"] <= 1.0
        assert score["efficiency"] == pytest.approx(
            golden["kernel_boundary"]["efficiency"], rel=1e-9
        )

    def test_placement_has_predicted_vs_measured_rows(self, analysis):
        rows = analysis.placement["tasks"]
        both = [
            r for r in rows
            if r["predicted_s_per_step"] is not None
            and r["measured_s_per_step"] is not None
        ]
        assert both, "expected at least one predicted-vs-measured row"
        assert all("mispredicted" in r for r in rows)

    def test_render_text_mentions_key_sections(self, analysis):
        text = analysis.render_text()
        assert "critical path" in text
        assert "overlap: efficiency" in text
        assert "placement explainability" in text

    def test_to_dict_schema(self, analysis):
        doc = analysis.to_dict()
        assert doc["schema"] == "repro.analysis/1"
        json.dumps(doc)  # JSON-safe


class TestCLI:
    def test_analyze_command(self, capsys):
        from repro.cli import main

        rc = main([
            "analyze", str(DATA / "golden_trace.json"),
            str(DATA / "golden_report.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "overlap: efficiency" in out

    def test_analyze_dot_output(self, tmp_path, capsys):
        from repro.cli import main

        dot = tmp_path / "p.dot"
        rc = main([
            "analyze", str(DATA / "golden_report.json"),
            str(DATA / "golden_trace.json"), "--dot", str(dot),
        ])
        assert rc == 0
        text = dot.read_text()
        assert "digraph" in text
        assert "fillcolor=plum" in text  # a GPU-placed task
        assert "fillcolor=lightblue" in text  # a CPU-placed task
        assert "KiB" in text or " B\"" in text  # byte-annotated edge

    def test_bte_alias_dispatch(self, capsys):
        from repro.cli import bte_main

        rc = bte_main([
            "analyze", str(DATA / "golden_trace.json"),
        ])
        assert rc == 0
        assert "critical path" in capsys.readouterr().out
