"""The metrics registry: instruments, exposition, and the current-registry
install/restore protocol."""

import json
import math
import threading

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    get_metrics,
    metrics_run,
    set_metrics,
)
from repro.obs.metrics import SCHEMA


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labels_are_independent_series(self):
        reg = MetricsRegistry()
        c = reg.counter("msgs_total", "messages")
        c.inc(1, rank=0)
        c.inc(4, rank=1)
        assert c.value(rank=0) == 1
        assert c.value(rank=1) == 4
        assert c.value(rank=2) == 0  # never-touched series reads zero

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "x")
        c.inc(1, a=1, b=2)
        c.inc(1, b=2, a=1)
        assert c.value(a=1, b=2) == 2

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n_total", "n").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == pytest.approx(4)


class TestHistogram:
    def test_snapshot_statistics(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency")
        for v in (0.001, 0.002, 0.003, 0.004):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(0.010)
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.004)
        assert 0.001 <= snap["p50"] <= 0.004
        assert snap["p95"] >= snap["p50"]

    def test_bucket_counts_are_cumulative_in_text(self):
        reg = MetricsRegistry()
        h = reg.histogram("d_seconds", "d", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = reg.to_text()
        assert 'd_seconds_bucket{le="1"} 1' in text
        assert 'd_seconds_bucket{le="10"} 2' in text
        assert 'd_seconds_bucket{le="+Inf"} 3' in text
        assert "d_seconds_count 3" in text


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total", "a") is reg.counter("a_total", "a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a")
        with pytest.raises(TypeError):
            reg.gauge("a_total", "a")

    def test_to_dict_schema_and_content(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a").inc(2, rank=0)
        doc = reg.to_dict()
        assert doc["schema"] == SCHEMA
        assert doc["metrics"]["a_total"]["type"] == "counter"

    def test_to_text_help_and_type_lines(self):
        reg = MetricsRegistry()
        reg.gauge("g", "the gauge").set(1.5)
        text = reg.to_text()
        assert "# HELP g the gauge" in text
        assert "# TYPE g gauge" in text
        assert "g 1.5" in text

    def test_write_prom_vs_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total", "a").inc()
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        reg.write(prom)
        reg.write(js)
        assert "# TYPE a_total counter" in prom.read_text()
        assert json.loads(js.read_text())["schema"] == SCHEMA


class TestNullMetrics:
    def test_disabled_and_absorbing(self):
        assert NULL_METRICS.enabled is False
        c = NULL_METRICS.counter("a_total", "a")
        c.inc(5, rank=0)
        assert c.value(rank=0) == 0.0
        NULL_METRICS.gauge("g", "g").set(1)
        NULL_METRICS.histogram("h", "h").observe(1.0)


class TestCurrentRegistry:
    def test_defaults_to_null(self):
        assert get_metrics() is NULL_METRICS

    def test_set_and_restore(self):
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            assert get_metrics() is reg
        finally:
            set_metrics(prev)
        assert get_metrics() is NULL_METRICS

    def test_metrics_run_installs_writes_and_restores(self, tmp_path):
        path = tmp_path / "m.json"
        with metrics_run(path) as reg:
            assert get_metrics() is reg
            reg.counter("a_total", "a").inc()
        assert get_metrics() is NULL_METRICS
        assert json.loads(path.read_text())["metrics"]["a_total"]

    def test_metrics_run_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with metrics_run():
                raise RuntimeError("boom")
        assert get_metrics() is NULL_METRICS

    def test_thread_safety_of_one_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total", "n")

        def work():
            for _ in range(1000):
                c.inc(1, worker=threading.current_thread().name)

        threads = [threading.Thread(target=work, name=f"w{i}") for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(v for _, v in c.samples())
        assert total == 4000


class TestPercentiles:
    def test_histogram_percentiles_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", "t")
        for i in range(100):
            h.observe(i / 100.0)
        snap = h.snapshot()
        assert snap["p50"] == pytest.approx(0.5, abs=0.05)
        assert snap["p95"] == pytest.approx(0.95, abs=0.05)
        assert not math.isnan(snap["mean"])
