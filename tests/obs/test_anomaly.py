"""Streaming anomaly detectors and the run report's ``health`` section."""

import pytest

from repro.obs.anomaly import (
    DEFAULT_THRESHOLDS,
    AnomalyMonitor,
    get_anomaly_monitor,
)
from repro.obs.log import EventLog, set_event_log


@pytest.fixture(autouse=True)
def fresh_state():
    previous = set_event_log(EventLog())
    get_anomaly_monitor().reset()
    yield
    get_anomaly_monitor().reset()
    set_event_log(previous)


class TestStepTimeSpikes:
    def feed(self, monitor, times, rank=0):
        alerts = [monitor.observe_step_time(t, rank=rank, step=i)
                  for i, t in enumerate(times)]
        return [a for a in alerts if a is not None]

    def test_spike_fires_after_warmup(self):
        monitor = AnomalyMonitor()
        fired = self.feed(monitor, [1e-3] * 4 + [1e-2])
        assert len(fired) == 1
        alert = fired[0]
        assert alert.kind == "step_time_spike"
        assert alert.value == pytest.approx(10.0)
        assert alert.context["step"] == 4

    def test_no_fire_before_min_samples(self):
        monitor = AnomalyMonitor()
        # the spike arrives while the window is still warming up
        assert self.feed(monitor, [1e-3, 1e-3, 1.0]) == []

    def test_steady_run_is_clean(self):
        monitor = AnomalyMonitor()
        assert self.feed(monitor, [1e-3] * 20) == []

    def test_windows_are_per_rank(self):
        monitor = AnomalyMonitor()
        self.feed(monitor, [1e-3] * 6, rank=0)
        # rank 1 has no history yet: its first slow step must not fire
        assert self.feed(monitor, [1e-2], rank=1) == []

    def test_fires_once_per_rank(self):
        monitor = AnomalyMonitor()
        fired = self.feed(monitor, [1e-3] * 4 + [1e-2, 1e-2, 1e-2])
        assert len(fired) == 1

    def test_alert_emits_warning_event(self):
        from repro.obs.log import get_event_log

        monitor = AnomalyMonitor()
        self.feed(monitor, [1e-3] * 4 + [1e-2])
        events = get_event_log().tail()
        assert any(e.name == "anomaly.step_time_spike"
                   and e.level == "warning" for e in events)


class TestPostRunScans:
    def test_rank_imbalance(self):
        monitor = AnomalyMonitor()
        alert = monitor.scan_rank_times([1.0, 1.0, 4.0])
        assert alert.kind == "rank_imbalance"
        assert alert.value == pytest.approx(2.0)

    def test_balanced_ranks_clean(self):
        monitor = AnomalyMonitor()
        assert monitor.scan_rank_times([1.0, 1.1, 0.9]) is None

    def test_single_rank_never_imbalanced(self):
        assert AnomalyMonitor().scan_rank_times([5.0]) is None

    def test_retry_storm(self):
        class Log:
            retries = 20

        alert = AnomalyMonitor().scan_resilience(Log())
        assert alert.kind == "retry_storm"
        assert alert.context["retries"] == 20

    def test_few_retries_clean(self):
        class Log:
            retries = 2

        assert AnomalyMonitor().scan_resilience(Log()) is None

    def test_cache_miss_storm_needs_warmup(self):
        class Stats:
            hits, misses = 0, 3

        monitor = AnomalyMonitor()
        assert monitor.scan_cache(Stats()) is None  # only 3 lookups
        Stats.misses = 5
        alert = monitor.scan_cache(Stats())
        assert alert.kind == "cache_miss_storm"
        assert alert.value == pytest.approx(1.0)

    def test_custom_thresholds_override(self):
        monitor = AnomalyMonitor(thresholds={"rank_imbalance": 10.0})
        assert monitor.scan_rank_times([1.0, 4.0]) is None
        assert monitor.thresholds["retry_storm"] == \
            DEFAULT_THRESHOLDS["retry_storm"]


class TestHealthSection:
    def test_ok_when_quiet(self):
        section = AnomalyMonitor().section()
        assert section["status"] == "ok"
        assert section["alerts"] == []
        assert section["thresholds"]["step_time_spike"] == \
            DEFAULT_THRESHOLDS["step_time_spike"]

    def test_warning_when_alerts_fired(self):
        monitor = AnomalyMonitor()
        monitor.scan_rank_times([1.0, 5.0])
        section = monitor.section()
        assert section["status"] == "warning"
        assert section["alerts"][0]["kind"] == "rank_imbalance"

    def test_run_report_embeds_health(self, tiny_scenario):
        from repro.bte.problem import build_bte_problem
        from repro.obs.report import build_run_report

        problem, _ = build_bte_problem(tiny_scenario)
        solver = problem.solve()
        report = build_run_report(solver)
        assert report.health["status"] in ("ok", "warning")
        assert "thresholds" in report.health
        assert report.to_dict()["health"] == report.health

    def test_disabled_monitor_is_inert(self):
        monitor = AnomalyMonitor()
        monitor.enabled = False
        assert monitor.observe_step_time(1.0, rank=0) is None
        assert monitor.scan_rank_times([1.0, 100.0]) is None
        assert monitor.scan() == []


class TestGateCoupling:
    def test_regress_thresholds_come_from_anomaly_table(self):
        from repro.obs import regress

        assert regress.DEFAULT_THRESHOLD == DEFAULT_THRESHOLDS["bench_regression"]
        assert regress.DEFAULT_WALL_THRESHOLD == \
            DEFAULT_THRESHOLDS["bench_wall_regression"]
        assert regress.OBS_OVERHEAD_THRESHOLD == DEFAULT_THRESHOLDS["obs_overhead"]

    def test_overhead_entries_use_tight_threshold(self):
        from repro.obs.regress import _threshold_for

        assert _threshold_for("events_on_vs_off_wall_s", 0.25, 1.0) == \
            DEFAULT_THRESHOLDS["obs_overhead"]
        assert _threshold_for("blackbox_on_vs_off_wall_s", 0.25, 1.0) == \
            DEFAULT_THRESHOLDS["obs_overhead"]
        assert _threshold_for("cpu_serial_wall_s", 0.25, 1.0) == 1.0
        assert _threshold_for("cpu_serial_s", 0.25, 1.0) == 0.25
