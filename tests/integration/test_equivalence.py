"""Cross-target differential harness, with and without injected faults.

The resilience claim worth testing is not "the run survives" but "the run
survives *and still computes the same physics*".  These tests push one
small BTE problem through every execution target — interpreted, serial
CPU, cell-distributed SPMD at 2 and 4 ranks, hybrid GPU and 4-rank
multi-GPU — and demand agreement within 1e-10 of the serial reference,
first fault-free and then through injected message drops, duplicates,
delays, rank stalls and device OOMs that the resilient runtime must
recover from.  Every fault kind perturbs only virtual time, never data,
so recovery is lossless and the differential bound holds.
"""

import os

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.runtime.faults import fault_run
from repro.runtime.resilience import get_resilience_log

TOL = 1e-10


def scenario():
    return hotspot_scenario(nx=10, ny=10, ndirs=8, n_freq_bands=6,
                            dt=1e-12, nsteps=5)


@pytest.fixture(scope="module")
def reference():
    """Serial CPU solution: the baseline every other target must match."""
    problem, _ = build_bte_problem(scenario())
    solver = problem.solve()
    return solver.solution(), solver.state.extra["T"]


def assert_matches(solver, reference, tol=TOL):
    u_ref, T_ref = reference
    scale = max(float(np.max(np.abs(u_ref))), 1.0)
    assert np.max(np.abs(solver.solution() - u_ref)) <= tol * scale
    assert np.allclose(solver.state.extra["T"], T_ref, atol=tol * scale)


def make_problem(configure=None):
    problem, _ = build_bte_problem(scenario())
    if configure is not None:
        configure(problem)
    return problem


def use_gpu(problem):
    problem.enable_gpu()
    problem.extra["gpu_force_offload"] = True


TARGETS = [
    pytest.param(None, "interp", id="interpreted"),
    pytest.param(None, "cpu", id="cpu_serial"),
    pytest.param(lambda p: p.set_partitioning("cells", 2), None, id="cpu_distributed_2"),
    pytest.param(lambda p: p.set_partitioning("cells", 4), None, id="cpu_distributed_4"),
    pytest.param(use_gpu, None, id="gpu_hybrid"),
]


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("configure,target", TARGETS)
    def test_target_matches_serial(self, reference, configure, target):
        solver = make_problem(configure).solve(target=target)
        assert_matches(solver, reference)


class TestFaultedEquivalence:
    """Same differential bound, now through injected-and-recovered faults."""

    def test_drop_and_duplicate_in_halo_exchange(self, reference):
        problem = make_problem(lambda p: p.set_partitioning("cells", 2))
        spec = "drop:rank=0,dest=1,tag=7,at=2;dup:rank=1,dest=0,tag=7,at=3"
        with fault_run(spec, seed=1):
            solver = problem.solve()
            log = get_resilience_log()
            assert log.injected == {"drop": 1, "dup": 1}
            assert log.retries >= 1
            assert log.recovered >= 1
        # message recovery is lossless: bitwise agreement, not just 1e-10
        assert np.array_equal(solver.solution(), reference[0])

    def test_drop_delay_dup_at_four_ranks(self, reference):
        problem = make_problem(lambda p: p.set_partitioning("cells", 4))
        spec = ("drop:rank=0,tag=7,at=1;"
                "delay:rank=1,tag=7,at=2,delay=3e-5;"
                "dup:rank=3,tag=7,at=1")
        with fault_run(spec, seed=2):
            solver = problem.solve()
            log = get_resilience_log()
            assert sum(log.injected.values()) == 3
        assert np.array_equal(solver.solution(), reference[0])

    def test_device_oom_degrades_to_cpu(self, reference):
        problem = make_problem(use_gpu)
        with fault_run("oom:device=gpu0,op=h2d,at=1", seed=3):
            solver = problem.solve()
            log = get_resilience_log()
            assert log.injected == {"oom": 1}
            assert log.degraded and log.degraded[0]["to"] == "cpu"
        assert_matches(solver, reference)

    def test_probabilistic_chaos_recovers(self, reference):
        """Unbounded seeded drops on every rank-0 halo send still converge.

        The CI chaos job sweeps CHAOS_SEED to widen the sampled fault
        schedules; any seed must recover to the bitwise-identical answer.
        """
        seed = int(os.environ.get("CHAOS_SEED", "7"))
        problem = make_problem(lambda p: p.set_partitioning("cells", 2))
        with fault_run("drop:rank=0,tag=7,p=0.5,count=0", seed=seed):
            solver = problem.solve()
            log = get_resilience_log()
            assert log.injected.get("drop", 0) >= 1
        assert np.array_equal(solver.solution(), reference[0])


class TestResilienceDemo:
    """The issue's acceptance demo: a fixed seed, one rank stall plus one
    device OOM in a 4-rank multi-GPU run, must reproduce the fault-free
    solution within 1e-10 with the recovery visible in the run report."""

    def test_stall_plus_oom_at_four_gpu_ranks(self, reference, tmp_path):
        problem = make_problem(use_gpu)
        problem.set_partitioning("bands", 4, index="b")
        problem.extra["checkpoint_every"] = 2
        problem.extra["checkpoint_dir"] = str(tmp_path)
        spec = "stall:rank=2,at=3,delay=5e-4;oom:device=gpu1,op=launch,at=2"
        with fault_run(spec, seed=42):
            solver = problem.solve()
            report = solver.run_report()
        assert solver.target_name == "gpu_distributed"
        assert_matches(solver, reference)

        section = report.resilience
        assert section is not None
        assert section["faults_injected"] == {"stall": 1, "oom": 1}
        degraded = section["degraded_placements"]
        assert len(degraded) == 1
        assert degraded[0]["task"] == "interior_update"
        assert degraded[0]["to"] == "cpu"
        assert degraded[0]["reason"] == "DeviceOOMError"
        # periodic per-rank checkpoints were cut during the faulted run
        assert section["checkpoints_written"] >= 4
        assert any(p.startswith(str(tmp_path)) for p in
                   get_resilience_log().checkpoint_paths)

    def test_demo_is_deterministic(self, tmp_path):
        """Same seed, same faults, same bits — run twice, compare exactly."""
        spec = "stall:rank=1,at=2,delay=2e-4;oom:device=gpu0,op=launch,at=1"

        def run():
            problem = make_problem(use_gpu)
            problem.set_partitioning("bands", 4, index="b")
            with fault_run(spec, seed=42):
                return problem.solve().solution()

        assert np.array_equal(run(), run())
