"""The README's code snippets must actually run (doc-rot guard)."""

import re
from pathlib import Path

import numpy as np
import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 1


@pytest.mark.parametrize("idx", range(len(python_blocks())))
def test_readme_python_block_executes(idx):
    block = python_blocks()[idx]
    import repro.dsl as finch

    finch.finalize()
    namespace: dict = {}
    try:
        exec(compile(block, f"<README block {idx}>", "exec"), namespace)  # noqa: S102
    finally:
        finch.finalize()
    solver = namespace.get("solver")
    assert solver is not None, "README snippet should produce a solver"
    assert np.all(np.isfinite(solver.solution()))


def test_readme_mentions_all_examples():
    text = README.read_text()
    examples_dir = Path(__file__).resolve().parents[2] / "examples"
    for script in sorted(examples_dir.glob("*.py")):
        assert script.name in text, f"README does not mention {script.name}"
