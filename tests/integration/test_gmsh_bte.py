"""Mesh-file round trip into the BTE: the paper's import path.

"A mesh must either be imported from a Gmsh or MEDIT formatted mesh file,
or generated internally" — this drives the imported-file path end to end:
generate, write as Gmsh 2.2, read it back (boundary regions via physical
tags), and run the BTE deck on the imported mesh with identical results.
"""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.mesh.gmsh_io import read_gmsh, write_gmsh
from repro.mesh.grid import structured_grid


@pytest.fixture
def scenario():
    sc = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4,
                          dt=1e-12, nsteps=6)
    sc.sigma = 150e-6
    return sc


def test_bte_on_imported_mesh_matches_generated(scenario, tmp_path):
    # reference on the internally generated mesh
    p_ref, _ = build_bte_problem(scenario)
    u_ref = p_ref.solve().solution()

    # write that mesh to a .msh file and import it back
    mesh = structured_grid(
        (scenario.nx, scenario.ny), [(0.0, scenario.lx), (0.0, scenario.ly)]
    )
    path = tmp_path / "domain.msh"
    write_gmsh(mesh, path)
    imported = read_gmsh(path)
    assert imported.boundary_regions() == mesh.boundary_regions()

    p_imp, _ = build_bte_problem(scenario)
    p_imp.mesh = None
    p_imp.set_mesh(imported)
    u_imp = p_imp.solve().solution()

    # cell ordering may differ between generated and imported meshes, so
    # compare fields cell-matched via centroids
    gen_centroids = p_ref.mesh.cell_centroids
    imp_centroids = imported.cell_centroids
    d2 = ((imp_centroids[None, :, :] - gen_centroids[:, None, :]) ** 2).sum(axis=2)
    match = np.argmin(d2, axis=1)
    assert len(np.unique(match)) == len(match)  # a true permutation
    np.testing.assert_allclose(u_imp[:, match], u_ref, rtol=1e-12, atol=1e-20)


def test_dsl_mesh_command_accepts_path(scenario, tmp_path):
    import repro.dsl as finch

    mesh = structured_grid((4, 4))
    path = tmp_path / "m.msh"
    write_gmsh(mesh, path)
    finch.finalize()
    finch.init_problem("import-test")
    finch.domain(2)
    loaded = finch.mesh(str(path))
    assert loaded.ncells == 16
    finch.finalize()
