"""The shipped examples must run end to end (reduced argument sets)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "symbolic pipeline" in out
        assert "LHS volume" in out
        assert "OK" in out

    def test_bte_hotspot(self):
        out = run_example("bte_hotspot.py", "--steps", "60")
        assert "polarised bands: 13" in out
        assert "temperature field" in out
        assert "execution-time breakdown" in out

    def test_bte_corner_source(self):
        out = run_example("bte_corner_source.py", "--steps", "80")
        assert "corner is the hottest point" in out

    def test_gpu_offload(self):
        out = run_example("gpu_offload.py")
        assert "placement plan" in out
        assert "interior_update          -> GPU" in out
        assert "SM utilization" in out
        assert "relative deviation from the CPU-only solver" in out

    def test_gpu_offload_tiny_declines(self):
        out = run_example("gpu_offload.py", "--tiny")
        assert "kept everything on the CPU" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "bit-identical solutions" in out
        assert "paper: ~18x" in out
        assert "paper: ~2x" in out

    def test_heat_equation(self):
        out = run_example("heat_equation.py")
        assert "observed spatial order" in out

    def test_thermal_conductivity(self):
        out = run_example("thermal_conductivity.py")
        assert "k_eff/k_bulk" in out
        assert "breaks" in out

    def test_custom_operator(self):
        out = run_example("custom_operator.py")
        assert "max |upwind - rusanov| = " in out

    def test_fem_heat(self):
        out = run_example("fem_heat.py")
        assert "multi-discretization" in out
        assert "stiffness(coeff=-k)" in out

    def test_bte_3d(self):
        out = run_example("bte_3d.py", "--steps", "40")
        assert "3-D BTE" in out
        assert "lateral mirror symmetry confirmed" in out
