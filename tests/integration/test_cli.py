"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


class TestCLIInProcess:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "55 (40 LA + 15 TA" in out
        assert "15,840,000" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "fig9_all_strategies.txt",
            "fig5_band_breakdown.txt",
            "fig8_gpu_breakdown.txt",
            "fig7_gpu_speedup.txt",
            "tab1_gpu_profile.txt",
        }
        tab1 = (tmp_path / "tab1_gpu_profile.txt").read_text()
        assert "SM utilization" in tab1

    def test_bte_reduced_run(self, capsys):
        assert main(["bte", "--nx", "8", "--ndirs", "8", "--bands", "4",
                     "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "T in [" in out

    def test_pipeline_scalar_example(self, capsys):
        assert main(["pipeline", "-k*u - surface(upwind(b, u))"]) == 0
        out = capsys.readouterr().out
        assert "-TIMEDERIVATIVE*_u_1" in out
        assert "LHS volume:" in out
        assert "RHS surface:" in out

    def test_pipeline_bte_equation(self, capsys):
        eq = ("(Io[b] - I[d,b]) / beta[b] - "
              "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))")
        assert main(["pipeline", eq, "--unknown", "I"]) == 0
        out = capsys.readouterr().out
        assert "-TIMEDERIVATIVE*I[d,b]" in out
        assert "CELL1_I[d,b]" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2


@pytest.mark.slow
def test_cli_as_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "info"], capture_output=True, text=True
    )
    assert proc.returncode == 0
    assert "repro 1.0.0" in proc.stdout


class TestLatexCommand:
    def test_latex_renders_bte_volume_term(self, capsys):
        assert main(["latex", "(Io[b] - I[d,b]) / beta[b]"]) == 0
        out = capsys.readouterr().out
        assert r"\frac" in out
        assert r"\beta_{b}" in out
