"""The ``python -m repro`` command-line interface."""

import json
import logging
import subprocess
import sys

import pytest

from repro.cli import main


class TestCLIInProcess:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "55 (40 LA + 15 TA" in out
        assert "15,840,000" in out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "fig9_all_strategies.txt",
            "fig5_band_breakdown.txt",
            "fig8_gpu_breakdown.txt",
            "fig7_gpu_speedup.txt",
            "tab1_gpu_profile.txt",
        }
        tab1 = (tmp_path / "tab1_gpu_profile.txt").read_text()
        assert "SM utilization" in tab1

    def test_bte_reduced_run(self, capsys):
        assert main(["bte", "--nx", "8", "--ndirs", "8", "--bands", "4",
                     "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "T in [" in out

    def test_pipeline_scalar_example(self, capsys):
        assert main(["pipeline", "-k*u - surface(upwind(b, u))"]) == 0
        out = capsys.readouterr().out
        assert "-TIMEDERIVATIVE*_u_1" in out
        assert "LHS volume:" in out
        assert "RHS surface:" in out

    def test_pipeline_bte_equation(self, capsys):
        eq = ("(Io[b] - I[d,b]) / beta[b] - "
              "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))")
        assert main(["pipeline", eq, "--unknown", "I"]) == 0
        out = capsys.readouterr().out
        assert "-TIMEDERIVATIVE*I[d,b]" in out
        assert "CELL1_I[d,b]" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2


class TestObservabilityFlags:
    def test_pipeline_trace_writes_complete_spans(self, tmp_path, capsys):
        path = tmp_path / "pipe.json"
        assert main(["pipeline", "-k*u - surface(upwind(b, u))",
                     "--trace", str(path)]) == 0
        events = json.loads(path.read_text())["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"parse", "lower"} <= names

    def test_bte_trace_and_report(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        assert main(["bte", "--nx", "8", "--ndirs", "4", "--bands", "4",
                     "--steps", "2", "--trace", str(trace),
                     "--report", str(report)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert sum(1 for e in events if e["ph"] == "X") >= 2
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.run_report/1"
        assert doc["meta"]["target"] == "cpu"
        assert "solve" in doc["timers"]

    def test_bte_gpu_trace_has_device_and_placement(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        assert main(["bte", "--nx", "8", "--ndirs", "4", "--bands", "4",
                     "--steps", "2", "--gpu", "--trace", str(trace),
                     "--report", str(report)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert "kernel" in cats and "transfer" in cats
        doc = json.loads(report.read_text())
        assert doc["placement"]["tasks"]

    def test_verbose_flag_sets_level(self, capsys):
        root = logging.getLogger("repro")
        previous = root.level
        try:
            assert main(["-v", "info"]) == 0
            assert root.level == logging.INFO
            assert main(["info", "-vv"]) == 0
            assert root.level == logging.DEBUG
        finally:
            root.setLevel(previous)


class TestEventLogCLI:
    @pytest.fixture(autouse=True)
    def restore_singletons(self):
        from repro.obs import get_flight_recorder
        from repro.obs.log import EventLog, set_event_log

        recorder = get_flight_recorder()
        saved_dir = recorder.directory
        yield
        recorder.reset()
        recorder.directory = saved_dir
        set_event_log(EventLog())

    def bte(self, *extra):
        return ["bte", "--nx", "8", "--ndirs", "4", "--bands", "4",
                "--steps", "2", *extra]

    def test_events_file_roundtrips_through_events_command(
            self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main(self.bte("--events", str(log))) == 0
        header = json.loads(log.read_text().splitlines()[0])
        assert header["schema"] == "repro.events/1"
        capsys.readouterr()

        assert main(["events", str(log)]) == 0
        out = capsys.readouterr().out
        assert "run.start" in out and "run.end" in out

    def test_events_command_filters(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main(self.bte("--events", str(log))) == 0
        capsys.readouterr()

        assert main(["events", str(log), "--name", "run.", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all("run." in json.loads(line)["name"] for line in lines)

        assert main(["events", str(log), "--tail", "1", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1

    def test_events_command_rejects_non_event_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "repro.bench/1"}\n')
        assert main(["events", str(bogus)]) == 2
        assert "not an event log" in capsys.readouterr().err

    def test_quiet_keeps_data_output(self, capsys):
        assert main(["-q"] + self.bte()) == 0
        out = capsys.readouterr().out
        assert "T in [" in out
        assert "running bte-hotspot" not in out

    def test_log_level_debug_records_comm_events(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main(self.bte("--ranks", "2", "--events", str(log),
                             "--log-level", "debug")) == 0
        from repro.obs.log import read_events

        names = {e["name"] for e in read_events(log)}
        assert any(n.startswith("comm.") for n in names), names
        assert "run.start" in names

    def test_blackbox_dir_captures_failed_run(self, tmp_path, capsys):
        bundles = tmp_path / "bb"
        rc = main(self.bte("--restore", str(tmp_path / "missing.npz"),
                           "--blackbox-dir", str(bundles)))
        assert rc == 1
        err = capsys.readouterr().err
        assert "flight-recorder bundle:" in err
        (bundle,) = bundles.glob("blackbox_*.json")
        doc = json.loads(bundle.read_text())
        assert doc["schema"] == "repro.blackbox/1"
        assert "checkpoint" in doc["error"]["message"]
        assert any(e["name"] == "cli.error" for e in doc["events"])


@pytest.mark.slow
def test_cli_as_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "info"], capture_output=True, text=True
    )
    assert proc.returncode == 0
    assert "repro 1.0.0" in proc.stdout


class TestLatexCommand:
    def test_latex_renders_bte_volume_term(self, capsys):
        assert main(["latex", "(Io[b] - I[d,b]) / beta[b]"]) == 0
        out = capsys.readouterr().out
        assert r"\frac" in out
        assert r"\beta_{b}" in out


class TestProfileRegistryCLI:
    @pytest.fixture(autouse=True)
    def isolated_registry(self, tmp_path):
        from repro.obs.registry import configure_registry

        self.runs_dir = tmp_path / "runs"
        yield
        configure_registry(None)

    def profile(self, *extra):
        return ["profile", "--nx", "8", "--ndirs", "4", "--bands", "4",
                "--steps", "2", "--gpu", *extra]

    def test_profile_prints_table_and_writes_doc(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(self.profile("--out", str(out))) == 0
        text = capsys.readouterr().out
        assert "I_interior_step" in text
        assert "perfmodel drift" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.profile/1"
        assert doc["meta"]["per_launch"] is True

    def test_compare_ranks_injected_slowdown_first(self, tmp_path, capsys):
        # a bigger workload than the other tests: the injected chunking
        # delta (~tens of ms on the virtual kernel rows) must dominate
        # the wall-clock noise of the tiny phase timers
        def profile(*extra):
            return ["profile", "--nx", "12", "--ndirs", "4", "--bands",
                    "4", "--steps", "3", "--gpu", *extra]

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(profile("--out", str(a))) == 0
        assert main(profile("--out", str(b), "--chunks", "6")) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        first_row = out.splitlines()[2]
        assert "I_interior_step" in first_row
        assert "top culprit: rank 0 kernel I_interior_step" in out

    def test_record_history_and_gc(self, capsys):
        runs = str(self.runs_dir)
        assert main(self.profile("--record", "--runs-dir", runs)) == 0
        assert main(self.profile("--record", "--runs-dir", runs,
                                 "--chunks", "6")) == 0
        capsys.readouterr()

        # both runs land in one per-problem timeline (chunking is
        # normalised out of the key)
        assert main(["history", "--runs-dir", runs]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "run-000001" in out and "run-000002" in out

        assert main(["history", "--runs-dir", runs, "--gc",
                     "--keep", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out
        assert "run-000001" not in out and "run-000002" in out

    def test_history_empty_registry(self, capsys):
        assert main(["history", "--runs-dir", str(self.runs_dir)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_history_unknown_key_prefix(self, capsys):
        assert main(self.profile("--record", "--runs-dir",
                                 str(self.runs_dir))) == 0
        capsys.readouterr()
        assert main(["history", "--runs-dir", str(self.runs_dir),
                     "--key", "zzzz"]) == 2

    def test_compare_rejects_unreadable_file(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["compare", str(missing), str(missing)]) == 2

    def test_bte_record_round_trips_through_registry(self, capsys):
        runs = str(self.runs_dir)
        assert main(["bte", "--nx", "8", "--ndirs", "4", "--bands", "4",
                     "--steps", "2", "--record", "--runs-dir", runs]) == 0
        capsys.readouterr()
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(runs)
        (key,) = registry.keys()
        (entry,) = registry.load_runs(key)
        assert entry["report"]["schema"] == "repro.run_report/1"
        assert entry["profile"]["schema"] == "repro.profile/1"
        assert entry["meta"]["wall_s"] > 0
