"""Cross-target equivalence: every generation path computes the same physics.

The paper's value proposition is that switching targets (CPU loops, band or
cell SPMD, hybrid GPU) "required almost no additional programming effort" —
which is only meaningful if all targets agree.  These tests run the same
problems through every path and demand (near-)bitwise agreement, for the
BTE and for a generic advection-reaction problem.
"""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid


@pytest.fixture(scope="module")
def bte_case():
    scenario = hotspot_scenario(nx=12, ny=12, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=6)
    problem, _ = build_bte_problem(scenario)
    ref = problem.solve()
    return scenario, ref.solution(), ref.state.extra["T"]


class TestBTEAcrossTargets:
    @pytest.mark.parametrize(
        "configure",
        [
            pytest.param(lambda p: p.set_partitioning("bands", 2, index="b"), id="bands2"),
            pytest.param(lambda p: p.set_partitioning("bands", 5, index="b"), id="bands5"),
            pytest.param(lambda p: p.set_partitioning("cells", 2), id="cells2"),
            pytest.param(lambda p: p.set_partitioning("cells", 5), id="cells5"),
        ],
    )
    def test_distributed_targets(self, bte_case, configure):
        scenario, u_ref, T_ref = bte_case
        problem, _ = build_bte_problem(scenario)
        configure(problem)
        solver = problem.solve()
        assert np.array_equal(solver.solution(), u_ref)
        assert np.array_equal(solver.state.extra["T"], T_ref)

    def test_gpu_target(self, bte_case):
        scenario, u_ref, T_ref = bte_case
        problem, _ = build_bte_problem(scenario)
        problem.enable_gpu()
        problem.extra["gpu_force_offload"] = True
        solver = problem.solve()
        scale = np.max(np.abs(u_ref))
        assert np.max(np.abs(solver.solution() - u_ref)) < 1e-12 * scale
        assert np.allclose(solver.state.extra["T"], T_ref, atol=1e-9)


def advection_diffusionless_problem(nsteps=40):
    p = Problem("xtarget-advect")
    p.set_domain(2)
    p.set_steps(0.4 / 16, nsteps)
    p.set_mesh(structured_grid((16, 8)))
    p.add_variable("u")
    p.add_coefficient("bx", 1.0)
    p.add_coefficient("by", 0.5)
    p.add_coefficient("k", 0.3)
    p.add_boundary("u", 1, BCKind.DIRICHLET, 1.0)
    p.add_boundary("u", 3, BCKind.DIRICHLET, 0.5)
    p.add_boundary("u", 2, BCKind.NEUMANN0)
    p.add_boundary("u", 4, BCKind.NEUMANN0)
    p.set_initial("u", 0.0)
    p.set_conservation_form("u", "-k*u - surface(upwind([bx;by], u))")
    return p


class TestGenericProblemAcrossTargets:
    def test_cell_distribution_matches_serial(self):
        ref = advection_diffusionless_problem().solve().solution()
        p = advection_diffusionless_problem()
        p.set_partitioning("cells", 3)
        assert np.array_equal(p.solve().solution(), ref)

    def test_gpu_matches_serial(self):
        ref = advection_diffusionless_problem().solve().solution()
        p = advection_diffusionless_problem()
        p.enable_gpu()
        p.extra["gpu_force_offload"] = True
        out = p.solve().solution()
        assert np.max(np.abs(out - ref)) < 1e-12 * max(np.max(np.abs(ref)), 1.0)

    def test_scalar_problem_has_no_band_strategy(self):
        p = advection_diffusionless_problem()
        from repro.util.errors import ConfigError

        p.set_partitioning("bands", 2, index="b")
        with pytest.raises(ConfigError):
            p.validate()
