"""Property-based cross-target equivalence on randomly drawn BTE configs.

Hypothesis draws the discretisation and the parallel strategy; whatever it
picks, the distributed/GPU paths must reproduce the serial solution
exactly (bitwise for CPU strategies, round-off for the device path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bte.problem import build_bte_problem, hotspot_scenario


def make_scenario(nx, ndirs, nbands, nsteps):
    sc = hotspot_scenario(nx=nx, ny=nx, ndirs=ndirs, n_freq_bands=nbands,
                          dt=1e-12, nsteps=nsteps)
    sc.sigma = 150e-6  # keep the wall transient visible on coarse grids
    return sc


@given(
    nx=st.integers(min_value=4, max_value=10),
    ndirs=st.sampled_from([4, 8]),
    nbands=st.integers(min_value=2, max_value=6),
    nsteps=st.integers(min_value=2, max_value=5),
    strategy=st.sampled_from(["bands", "cells"]),
    nparts=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=12, deadline=None)
def test_distributed_equals_serial(nx, ndirs, nbands, nsteps, strategy, nparts):
    sc = make_scenario(nx, ndirs, nbands, nsteps)
    p_ref, model = build_bte_problem(sc)
    if strategy == "bands" and nparts > model.bands.nbands:
        nparts = model.bands.nbands
    if strategy == "cells" and nparts > nx * nx:
        nparts = 2
    u_ref = p_ref.solve().solution()

    p, _ = build_bte_problem(sc)
    p.set_partitioning(strategy, nparts,
                       index="b" if strategy == "bands" else None)
    u = p.solve().solution()
    assert np.array_equal(u, u_ref)


@given(
    nx=st.integers(min_value=6, max_value=12),
    ndirs=st.sampled_from([4, 8]),
    nbands=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=8, deadline=None)
def test_gpu_equals_serial(nx, ndirs, nbands):
    sc = make_scenario(nx, ndirs, nbands, nsteps=3)
    p_ref, _ = build_bte_problem(sc)
    u_ref = p_ref.solve().solution()

    p, _ = build_bte_problem(sc)
    p.enable_gpu()
    p.extra["gpu_force_offload"] = True
    solver = p.solve()
    scale = np.abs(u_ref).max()
    assert np.abs(solver.solution() - u_ref).max() <= 1e-12 * scale
