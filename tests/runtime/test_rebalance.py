"""Elastic-runtime primitives: heartbeat liveness, rank faults, poison pills.

These are the building blocks under the elastic controller (see
``tests/codegen/test_elastic.py`` for the end-to-end differential runs):
the :class:`HeartbeatMonitor` with a pluggable clock, the ``rank_kill`` /
``rank_slow`` fault kinds, and the poison-pill cancellation that lets a
peer blocked in a receive unwind promptly when another rank dies.
"""

import numpy as np
import pytest

from repro.runtime.executor import run_spmd
from repro.runtime.faults import FaultInjector, fault_run, parse_fault_spec
from repro.runtime.rebalance import (
    HeartbeatMonitor,
    RebalancePolicy,
    imbalance_ratio,
)
from repro.util.errors import HeartbeatError, RankKilledError, ReproError


class TestHeartbeatMonitor:
    """Deadline logic is provable with a virtual clock — no wall sleeps."""

    def _clocked(self, deadline):
        t = [0.0]
        return t, HeartbeatMonitor(deadline, clock=lambda: t[0])

    def test_fresh_ranks_are_live(self):
        t, m = self._clocked(1.0)
        m.start(range(3))
        assert m.stalled() == []

    def test_silent_rank_stalls_after_deadline(self):
        t, m = self._clocked(1.0)
        m.start(range(3))
        t[0] = 0.9
        m.beat(0)
        m.beat(2)
        t[0] = 1.5  # rank 1 last beat at 0.0: 1.5s silent > 1.0s deadline
        assert m.stalled() == [1]

    def test_beat_resets_the_deadline(self):
        t, m = self._clocked(1.0)
        m.start([0])
        t[0] = 0.9
        m.beat(0)
        t[0] = 1.8  # only 0.9s since the beat
        assert m.stalled() == []
        t[0] = 2.0
        assert m.stalled() == [0]

    def test_explicit_now_overrides_the_clock(self):
        t, m = self._clocked(0.5)
        m.start([0, 1])
        assert m.stalled(now=10.0) == [0, 1]
        assert m.stalled(now=0.1) == []

    def test_last_beat_query(self):
        t, m = self._clocked(1.0)
        m.start([0])
        t[0] = 0.25
        m.beat(0)
        assert m.last_beat(0) == pytest.approx(0.25)
        assert m.last_beat(7) is None

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ReproError):
            HeartbeatMonitor(0.0)


class TestImbalanceRatio:
    def test_balanced_is_one(self):
        assert imbalance_ratio([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_skewed_is_max_over_mean(self):
        assert imbalance_ratio([2.0, 1.0, 1.0, 0.0]) == pytest.approx(2.0)

    def test_degenerate_inputs_are_balanced(self):
        assert imbalance_ratio([]) == 1.0
        assert imbalance_ratio([0.0, 0.0]) == 1.0


class TestRankFaultGrammar:
    def test_rank_kill_spec_parses(self):
        (rule,) = parse_fault_spec("rank_kill:rank=1,at=5")
        assert rule.kind == "rank_kill"
        assert (rule.rank, rule.at) == (1, 5)

    def test_rank_slow_spec_parses_factor(self):
        (rule,) = parse_fault_spec("rank_slow:rank=0,factor=3,count=0")
        assert rule.kind == "rank_slow"
        assert rule.factor == pytest.approx(3.0)
        assert rule.count == 0  # unlimited

    def test_kill_fires_on_nth_compute_only(self):
        inj = FaultInjector("rank_kill:rank=1,at=3")
        assert [inj.kill_rank(1) for _ in range(5)] == [
            False, False, True, False, False,
        ]

    def test_kill_filters_by_rank(self):
        inj = FaultInjector("rank_kill:rank=1,at=1")
        assert not inj.kill_rank(0)
        assert inj.kill_rank(1)  # rank-0 query did not consume the occurrence

    def test_slow_factor_defaults_to_one(self):
        inj = FaultInjector("rank_slow:rank=2,factor=5,count=0")
        assert inj.slow_factor(0) == 1.0
        assert inj.slow_factor(2) == pytest.approx(5.0)


class TestRankFaultSemantics:
    def test_rank_slow_lands_in_compute_seconds(self):
        """The rebalancer measures compute_s, so the slowdown must land there."""

        def prog(comm):
            for _ in range(4):
                comm.compute(1e-3)

        with fault_run("rank_slow:rank=0,factor=3,count=0"):
            res = run_spmd(2, prog)
        assert res.stats[0].compute_s == pytest.approx(3 * res.stats[1].compute_s)
        assert imbalance_ratio([s.compute_s for s in res.stats]) == pytest.approx(1.5)

    def test_rank_kill_raises_typed_error(self):
        def prog(comm):
            comm.compute(1e-3)

        with fault_run("rank_kill:rank=0,at=1"):
            with pytest.raises(ReproError) as ei:
                run_spmd(2, prog)
        assert ei.value.failed_rank == 0
        assert isinstance(ei.value.__cause__, RankKilledError)
        assert ei.value.__cause__.rank == 0
        assert ei.value.__cause__.code == "RPR313"


class TestPoisonPill:
    def test_peer_blocked_on_recv_unwinds_fast(self):
        """A dead rank's peers must not sit out the deadlock-guard timeout."""

        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            # would hang forever without the poison pill
            comm.recv(0, tag=3)

        with pytest.raises(ReproError) as ei:
            run_spmd(2, prog, timeout_s=10.0)
        # the ROOT cause is surfaced, not the collateral peer unwind
        assert ei.value.failed_rank == 0
        assert "ValueError" in str(ei.value)
        assert "boom" in str(ei.value)
        assert isinstance(ei.value.__cause__, ValueError)

    def test_collective_peers_unwind_too(self):
        def prog(comm):
            if comm.rank == 2:
                raise RuntimeError("dead in collective")
            comm.allreduce(np.ones(4), op="sum")

        with pytest.raises(ReproError) as ei:
            run_spmd(3, prog, timeout_s=10.0)
        assert ei.value.failed_rank == 2


class TestHeartbeatInRunSpmd:
    def test_stalled_rank_declared_dead(self):
        """A rank that blocks without beating trips the liveness deadline."""

        def prog(comm):
            if comm.rank == 1:
                comm.recv(0, tag=9)  # never sent: silent forever
            comm.compute(1e-3)

        with pytest.raises(ReproError) as ei:
            run_spmd(2, prog, heartbeat_s=0.05, timeout_s=10.0)
        cause = ei.value.__cause__
        assert isinstance(cause, HeartbeatError)
        assert cause.rank == 1
        assert cause.code == "RPR315"

    def test_healthy_run_unaffected_by_monitor(self):
        def prog(comm):
            comm.compute(1e-3)
            return comm.rank

        res = run_spmd(3, prog, heartbeat_s=5.0)
        assert res.results == [0, 1, 2]


class TestRebalancePolicy:
    def test_defaults_match_the_cli(self):
        pol = RebalancePolicy()
        assert pol.imbalance_threshold == pytest.approx(1.5)
        assert pol.heartbeat_s is None
        assert pol.proactive and pol.max_rebalances == 1
