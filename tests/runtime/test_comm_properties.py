"""Property-based tests: collectives must equal the corresponding numpy
reductions for arbitrary payloads and rank counts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.comm import ReduceOp
from repro.runtime.executor import run_spmd
from repro.runtime.netmodel import IB_CLUSTER

payloads = st.lists(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=3, max_size=3,
    ),
    min_size=2,
    max_size=5,
)


@given(data=payloads, op=st.sampled_from(list(ReduceOp)))
@settings(max_examples=25, deadline=None)
def test_allreduce_equals_numpy(data, op):
    arrays = [np.array(row) for row in data]
    nranks = len(arrays)

    def prog(comm):
        return comm.allreduce(arrays[comm.rank], op)

    res = run_spmd(nranks, prog, IB_CLUSTER)
    stacked = np.stack(arrays)
    expected = {
        ReduceOp.SUM: stacked.sum(axis=0),
        ReduceOp.MAX: stacked.max(axis=0),
        ReduceOp.MIN: stacked.min(axis=0),
    }[op]
    for out in res.results:
        np.testing.assert_allclose(out, expected, rtol=1e-12)


@given(data=payloads)
@settings(max_examples=20, deadline=None)
def test_allgather_preserves_rank_order(data):
    arrays = [np.array(row) for row in data]
    nranks = len(arrays)

    def prog(comm):
        return comm.allgather(arrays[comm.rank])

    res = run_spmd(nranks, prog, IB_CLUSTER)
    for out in res.results:
        assert len(out) == nranks
        for r in range(nranks):
            np.testing.assert_array_equal(out[r], arrays[r])


@given(
    n=st.integers(min_value=2, max_value=5),
    values=st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                    min_size=5, max_size=5),
)
@settings(max_examples=20, deadline=None)
def test_ring_pass_accumulates(n, values):
    """Each rank passes a running sum around the ring: the total must come
    back equal to the plain sum regardless of network timing."""
    vals = values[:n]

    def prog(comm):
        acc = vals[comm.rank]
        nxt = (comm.rank + 1) % comm.size
        prv = (comm.rank - 1) % comm.size
        for _ in range(comm.size - 1):
            comm.send(nxt, acc)
            acc = comm.recv(prv) + vals[comm.rank]
        return acc

    res = run_spmd(n, prog, IB_CLUSTER)
    # after n-1 hops every rank holds sum(vals) arranged from its view
    assert all(abs(r - sum(vals)) < 1e-9 for r in res.results)
