"""Causal flow edges must survive chaos.

The comm layer carries span context inside every message so the receiver
can record the send->recv flow for exactly the copy that was delivered.
These tests run 2-rank programs under a live tracer with injected drops,
duplicates, delays and stalls, and assert the recorded causality is
complete (one flow per delivered message), forward in virtual time
(acyclic), and correctly parented (flow id == sender's send span ==
receiver's ``parent_span_id``).
"""

import numpy as np
import pytest

from repro.obs import trace_run
from repro.obs.analyze import critical_path_measured, load_trace_doc
from repro.runtime.comm import World
from repro.runtime.executor import run_spmd
from repro.runtime.faults import fault_run


def stream_pair(comm):
    """Rank 0 streams three arrays to rank 1."""
    if comm.rank == 0:
        for k in range(3):
            comm.send(1, np.full(4, float(k + 1)))
        return None
    return [comm.recv(0)[0] for _ in range(3)]


def run_chaos(tmp_path, spec, prog=stream_pair, seed=0):
    path = tmp_path / "trace.json"
    with trace_run(path) as tracer:
        with fault_run(spec, seed=seed):
            run_spmd(2, prog)
    return tracer, path


CHAOS_SPECS = [
    pytest.param(None, id="fault-free"),
    pytest.param("drop:rank=0,dest=1,at=2", id="drop"),
    pytest.param("drop:rank=0,dest=1,at=1", id="drop-first-reorder"),
    pytest.param("dup:rank=0,dest=1,at=1", id="dup"),
    pytest.param("delay:rank=0,dest=1,at=2,delay=2e-3", id="delay"),
    pytest.param("stall:rank=1,at=1,delay=7e-4", id="stall"),
]


class TestFlowsUnderChaos:
    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_one_flow_per_delivered_message(self, tmp_path, spec):
        tracer, _ = run_chaos(tmp_path, spec)
        flows = [f for f in tracer.flows if f.name.startswith("msg:")]
        # 3 messages delivered exactly once each — dups are deduplicated,
        # drops are re-delivered, neither creates a second edge
        assert len(flows) == 3
        assert all(f.name == "msg:0->1" for f in flows)

    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_flows_point_forward_in_virtual_time(self, tmp_path, spec):
        tracer, _ = run_chaos(tmp_path, spec)
        for f in tracer.flows:
            assert f.dst_t >= f.src_t, (
                f"flow {f.name} goes backwards: {f.src_t} -> {f.dst_t}")

    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_flows_are_correctly_parented(self, tmp_path, spec):
        tracer, _ = run_chaos(tmp_path, spec)
        send_ids = {s.args["span_id"] for s in tracer.spans
                    if s.name == "send->1"}
        recv_parents = [s.args["parent_span_id"] for s in tracer.spans
                        if s.name == "recv<-0"]
        flow_ids = [f.flow_id for f in tracer.flows]
        # every flow binds a real send span to a recv that names it
        assert set(flow_ids) <= send_ids
        assert sorted(flow_ids) == sorted(recv_parents)
        # three distinct deliveries -> three distinct parents
        assert len(set(flow_ids)) == 3

    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_flows_survive_the_json_roundtrip(self, tmp_path, spec):
        _, path = run_chaos(tmp_path, spec)
        spans, flows = load_trace_doc(path)
        assert len([f for f in flows if f.name.startswith("msg:")]) == 3
        send_ids = {s.args["span_id"] for s in spans if s.name == "send->1"}
        assert {f.flow_id for f in flows} <= send_ids

    def test_redelivered_flow_binds_original_send_span(self, tmp_path):
        # the resend puts the *same* message (same span context) back in
        # flight: the flow must name the original send, not a phantom
        tracer, _ = run_chaos(tmp_path, "drop:rank=0,dest=1,at=2")
        sends = sorted(s.args["span_id"] for s in tracer.spans
                       if s.name == "send->1")
        assert sorted(f.flow_id for f in tracer.flows) == sends


class TestCollectiveCausality:
    def straggler_prog(self, comm):
        # rank 1 computes 100x longer: it is the straggler every rank's
        # allreduce completion causally depends on
        comm.compute(5e-3 if comm.rank == 1 else 5e-5)
        comm.allreduce(np.ones(4))
        return comm.clock.now()

    def test_allreduce_flow_comes_from_straggler(self, tmp_path):
        tracer, _ = run_chaos(tmp_path, None, prog=self.straggler_prog)
        flows = [f for f in tracer.flows if f.name == "coll:allreduce"]
        # only the non-straggler rank records a dependence edge
        assert len(flows) == 1
        (flow,) = flows
        assert flow.args["src_rank"] == 1
        assert flow.src_track.endswith("rank1")
        assert flow.dst_track.endswith("rank0")
        entry = next(s for s in tracer.spans
                     if s.name == "allreduce-enter"
                     and s.track.endswith("rank1"))
        assert flow.args["src_span"] == entry.args["span_id"]

    def test_straggler_itself_has_no_parent(self, tmp_path):
        tracer, _ = run_chaos(tmp_path, None, prog=self.straggler_prog)
        colls = {s.track: s for s in tracer.spans if s.name == "allreduce"}
        assert colls["virtual/rank1"].args["parent_span_id"] == 0
        assert colls["virtual/rank0"].args["parent_span_id"] != 0
        assert colls["virtual/rank0"].args["waited_s"] > 0

    def test_stalled_rank_becomes_the_straggler(self, tmp_path):
        def prog(comm):
            comm.compute(1e-6)
            comm.allreduce(np.ones(4))
            return comm.clock.now()

        tracer, _ = run_chaos(tmp_path, "stall:rank=0,at=1,delay=7e-4",
                              prog=prog)
        (flow,) = [f for f in tracer.flows if f.name == "coll:allreduce"]
        assert flow.args["src_rank"] == 0
        assert flow.dst_track.endswith("rank1")


class TestMeasuredCriticalPath:
    def test_path_crosses_ranks_through_recorded_edges(self, tmp_path):
        def prog(comm):
            # rank 0 computes long, then sends; rank 1 blocks on the recv:
            # rank 1's finish is causally pinned to rank 0's compute
            if comm.rank == 0:
                comm.compute(2e-3)
                comm.send(1, np.ones(8))
            else:
                comm.recv(0)
                comm.compute(1e-5)
            return None

        _, path = run_chaos(tmp_path, None, prog=prog)
        spans, flows = load_trace_doc(path)
        measured = critical_path_measured(spans, flows)
        assert measured["rank_hops"] >= 1
        assert measured["n_flows"] == len(flows) >= 1
        tracks = {step["track"] for step in measured["path"]}
        assert len(tracks) >= 2  # the walk visited both ranks
        assert measured["makespan_s"] > 0

    def test_chaos_does_not_break_the_walk(self, tmp_path):
        _, path = run_chaos(tmp_path, "drop:rank=0,dest=1,at=2")
        spans, flows = load_trace_doc(path)
        measured = critical_path_measured(spans, flows)
        assert measured["makespan_s"] > 0
        assert measured["path"]
