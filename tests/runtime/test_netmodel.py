"""Network cost models."""

import math

import pytest

from repro.runtime.netmodel import IB_CLUSTER, SHARED_MEMORY, ZERO_COST, NetworkModel


class TestTransferTime:
    def test_latency_dominates_small_messages(self):
        assert IB_CLUSTER.transfer_time(8) == pytest.approx(
            IB_CLUSTER.latency_s, rel=0.01
        )

    def test_bandwidth_dominates_large_messages(self):
        t = IB_CLUSTER.transfer_time(1e9)
        assert t == pytest.approx(1e9 / (IB_CLUSTER.bandwidth_gbs * 1e9), rel=0.01)

    def test_monotone_in_size(self):
        assert IB_CLUSTER.transfer_time(100) < IB_CLUSTER.transfer_time(10000)

    def test_zero_cost_model(self):
        assert ZERO_COST.transfer_time(1e12) < 1e-3


class TestCollectiveCosts:
    def test_allreduce_single_rank_free(self):
        assert IB_CLUSTER.allreduce_time(1000, 1) == 0.0

    def test_allreduce_log_rounds(self):
        t8 = IB_CLUSTER.allreduce_time(1000, 8)
        assert t8 == pytest.approx(3 * IB_CLUSTER.transfer_time(1000))

    def test_allreduce_non_power_of_two(self):
        t5 = IB_CLUSTER.allreduce_time(1000, 5)
        assert t5 == pytest.approx(math.ceil(math.log2(5)) * IB_CLUSTER.transfer_time(1000))

    def test_allgather_ring(self):
        t = IB_CLUSTER.allgather_time(500, 4)
        assert t == pytest.approx(3 * IB_CLUSTER.transfer_time(500))

    def test_shared_memory_faster_than_network(self):
        assert SHARED_MEMORY.transfer_time(1e6) < IB_CLUSTER.transfer_time(1e6)
