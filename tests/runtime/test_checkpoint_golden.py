"""Golden-checkpoint compatibility: the ``repro.checkpoint/1`` contract.

``tests/runtime/data/golden_ckpt_step000003.npz`` is a committed snapshot
of the reference BTE scenario after 3 steps.  These tests pin the on-disk
format: a fresh build of the same problem must (a) reproduce the golden
payload bit-for-bit when checkpointing at the same step, and (b) restore
from the golden file and continue to a trajectory bit-identical to an
uninterrupted run.  If either breaks, the schema changed and the version
tag must be bumped.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.runtime.resilience import CHECKPOINT_SCHEMA, checkpoint_path
from repro.util.errors import ConfigError

GOLDEN = Path(__file__).parent / "data" / "golden_ckpt_step000003.npz"
SAVE_STEP = 3


def golden_scenario():
    """The configuration the golden checkpoint was cut from (do not change)."""
    return hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=5,
                            dt=1e-12, nsteps=5)


def fresh_solver():
    problem, _ = build_bte_problem(golden_scenario())
    return problem.generate()


class TestGoldenCheckpoint:
    def test_golden_carries_schema_tag(self):
        with np.load(GOLDEN) as data:
            assert str(data["__schema"]) == CHECKPOINT_SCHEMA
            assert int(data["__step_index"]) == SAVE_STEP

    def test_fresh_save_reproduces_golden_payload(self, tmp_path):
        solver = fresh_solver()
        solver.run(SAVE_STEP)
        ckpt = tmp_path / "fresh.npz"
        solver.state.save_checkpoint(ckpt)
        with np.load(GOLDEN) as want, np.load(ckpt) as got:
            assert sorted(want.files) == sorted(got.files)
            for key in want.files:
                assert np.array_equal(want[key], got[key]), key

    def test_restore_golden_continues_bit_identically(self):
        straight = fresh_solver()
        straight.run(5)

        resumed = fresh_solver()
        resumed.state.restore_checkpoint(GOLDEN)
        assert resumed.state.step_index == SAVE_STEP
        resumed.run(5 - SAVE_STEP)

        assert np.array_equal(resumed.solution(), straight.solution())
        assert np.array_equal(resumed.state.extra["T"],
                              straight.state.extra["T"])
        assert resumed.state.time == straight.state.time

    def test_wrong_schema_version_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        with np.load(GOLDEN) as data:
            payload = {k: data[k] for k in data.files}
        payload["__schema"] = np.array("repro.checkpoint/999")
        np.savez(bad, **payload)
        with pytest.raises(ConfigError, match="schema"):
            fresh_solver().state.restore_checkpoint(bad)


class TestPeriodicCheckpoints:
    def test_generated_loop_emits_periodic_checkpoints(self, tmp_path):
        problem, _ = build_bte_problem(golden_scenario())
        problem.extra["checkpoint_every"] = 2
        problem.extra["checkpoint_dir"] = str(tmp_path)
        problem.solve()
        written = sorted(tmp_path.glob("ckpt_step*.npz"))
        assert [p.name for p in written] == [
            checkpoint_path(tmp_path, 2).name,
            checkpoint_path(tmp_path, 4).name,
        ]

    def test_restore_from_extra_resumes_run(self, tmp_path):
        straight = fresh_solver()
        straight.run(5)

        problem, _ = build_bte_problem(golden_scenario())
        problem.extra["restore_from"] = str(GOLDEN)
        solver = problem.generate()
        assert solver.state.step_index == SAVE_STEP
        solver.run(5 - SAVE_STEP)
        assert np.array_equal(solver.solution(), straight.solution())
