"""SPMD executor: results, timings, failure propagation."""

import numpy as np
import pytest

from repro.runtime.executor import run_spmd
from repro.runtime.netmodel import IB_CLUSTER, ZERO_COST
from repro.util.errors import ReproError


class TestResults:
    def test_results_by_rank(self):
        res = run_spmd(4, lambda comm: comm.rank**2)
        assert res.results == [0, 1, 4, 9]

    def test_makespan_is_slowest_rank(self):
        def prog(comm):
            comm.compute(0.1 * (comm.rank + 1))

        res = run_spmd(3, prog)
        assert res.makespan == pytest.approx(0.3)

    def test_phase_breakdown_sums_ranks(self):
        def prog(comm):
            comm.compute(1.0, phase="solve")
            comm.compute(0.5, phase="post")

        res = run_spmd(2, prog)
        assert res.phase_breakdown() == {"solve": 2.0, "post": 1.0}

    def test_phase_fractions_normalised(self):
        def prog(comm):
            comm.compute(3.0, phase="a")
            comm.compute(1.0, phase="b")

        fr = run_spmd(2, prog).phase_fractions()
        assert fr["a"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_phase_fractions_zero_total(self):
        def prog(comm):
            comm.compute(0.0, phase="a")

        fr = run_spmd(2, prog).phase_fractions()
        assert fr == {"a": 0.0}  # no division by zero, phases preserved

    def test_phase_fractions_no_phases(self):
        assert run_spmd(2, lambda comm: None).phase_fractions() == {}


class TestFailures:
    def test_rank_exception_reraised_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return True

        with pytest.raises(ReproError, match="rank 2 failed: ValueError: boom"):
            run_spmd(4, prog)

    def test_failure_during_collective_does_not_hang(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early exit")
            comm.allreduce(np.zeros(4))

        with pytest.raises(ReproError, match="rank 0 failed"):
            run_spmd(3, prog, timeout_s=10.0)

    def test_deadlock_times_out(self):
        def prog(comm):
            # both ranks receive first: classic deadlock
            comm.world.timeout_s = 0.2
            comm.recv(1 - comm.rank)

        with pytest.raises(ReproError):
            run_spmd(2, prog, timeout_s=5.0)


class TestDeterminism:
    def test_repeated_runs_identical(self):
        def prog(comm):
            total = comm.allreduce(np.array([1.0 * comm.rank]))
            comm.compute(0.01)
            return float(total[0])

        a = run_spmd(4, prog, IB_CLUSTER)
        b = run_spmd(4, prog, IB_CLUSTER)
        assert a.results == b.results
        assert a.times == b.times
