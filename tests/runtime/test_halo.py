"""Halo exchange correctness on partitioned meshes."""

import numpy as np
import pytest

from repro.mesh.grid import structured_grid
from repro.mesh.partition import build_partition_layout, partition_cells
from repro.runtime.executor import run_spmd
from repro.runtime.halo import HaloExchanger
from repro.runtime.netmodel import IB_CLUSTER
from repro.util.errors import ReproError


@pytest.mark.parametrize("nparts", [2, 3, 4])
@pytest.mark.parametrize("method", ["graph", "rcb"])
def test_ghosts_receive_true_neighbor_values(nparts, method):
    mesh = structured_grid((9, 7))
    layout = build_partition_layout(mesh, partition_cells(mesh, nparts, method=method))
    truth = np.arange(mesh.ncells, dtype=float) * 2.0 + 1.0

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        local = np.full(ex.n_owned + ex.n_ghost, -1.0)
        local[: ex.n_owned] = truth[layout.owned[comm.rank]]
        ex.update(comm, local)
        expected_ghosts = truth[layout.ghosts[comm.rank]]
        assert np.allclose(local[ex.n_owned :], expected_ghosts)
        return True

    assert all(run_spmd(nparts, prog, IB_CLUSTER).results)


def test_multicomponent_halo():
    mesh = structured_grid((6, 6))
    layout = build_partition_layout(mesh, partition_cells(mesh, 2))
    truth = np.stack([np.arange(mesh.ncells, dtype=float),
                      np.arange(mesh.ncells, dtype=float) ** 2])

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        local = np.zeros((2, ex.n_owned + ex.n_ghost))
        local[:, : ex.n_owned] = truth[:, layout.owned[comm.rank]]
        ex.update(comm, local)
        assert np.allclose(local[:, ex.n_owned :], truth[:, layout.ghosts[comm.rank]])
        return True

    assert all(run_spmd(2, prog, IB_CLUSTER).results)


def test_bytes_per_exchange():
    mesh = structured_grid((6, 6))
    layout = build_partition_layout(mesh, partition_cells(mesh, 2))
    ex = HaloExchanger(layout, 0)
    per_comp = sum(len(c) for c in layout.send_cells[0].values()) * 8
    assert ex.bytes_per_exchange() == per_comp
    assert ex.bytes_per_exchange(ncomp=5) == 5 * per_comp


def test_wrong_local_size_rejected():
    mesh = structured_grid((4, 4))
    layout = build_partition_layout(mesh, partition_cells(mesh, 2))

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        with pytest.raises(ReproError):
            ex.update(comm, np.zeros(3))
        # drain the channel so peers don't dangle: do a real update
        local = np.zeros(ex.n_owned + ex.n_ghost)
        ex.update(comm, local)
        return True

    assert all(run_spmd(2, prog, IB_CLUSTER).results)


# --------------------------------------------------------------------------
# edge cases the elastic runtime leans on (empty halos, repartitioning)
# --------------------------------------------------------------------------

def test_single_rank_layout_is_a_noop():
    """nparts=1: no ghosts, no sends — update must not touch the array."""
    mesh = structured_grid((5, 4))
    layout = build_partition_layout(mesh, partition_cells(mesh, 1))

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        assert ex.n_ghost == 0
        assert ex.neighbors == []
        assert ex.bytes_per_exchange() == 0
        local = np.arange(ex.n_owned, dtype=float)
        before = local.copy()
        ex.update(comm, local)
        assert np.array_equal(local, before)
        return True

    assert all(run_spmd(1, prog, IB_CLUSTER).results)


def test_non_adjacent_ranks_exchange_nothing():
    """On a 1D strip split three ways, the end ranks share no interface."""
    mesh = structured_grid((12,), [(0.0, 1.0)])
    layout = build_partition_layout(mesh, partition_cells(mesh, 3))

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        if comm.rank in (0, 2):
            assert sorted(ex.send_local) == [1]  # only the middle neighbour
        local = np.zeros(ex.n_owned + ex.n_ghost)
        local[: ex.n_owned] = 1.0 + comm.rank
        ex.update(comm, local)
        return True

    assert all(run_spmd(3, prog, IB_CLUSTER).results)


def test_reexchange_after_partition_change():
    """A migration installs a new layout; fresh exchangers must deliver
    correct ghosts for it — the elastic runtime's post-migration refresh."""
    mesh = structured_grid((9, 7))
    truth = np.linspace(0.0, 5.0, mesh.ncells)
    layouts = [
        build_partition_layout(mesh, partition_cells(mesh, 3)),
        build_partition_layout(mesh, partition_cells(mesh, 3, method="rcb")),
    ]

    def prog(comm):
        for layout in layouts:  # same ranks, different ownership
            ex = HaloExchanger(layout, comm.rank)
            local = np.full(ex.n_owned + ex.n_ghost, np.nan)
            local[: ex.n_owned] = truth[layout.owned[comm.rank]]
            ex.update(comm, local)
            assert np.allclose(local[ex.n_owned :],
                               truth[layout.ghosts[comm.rank]])
        return True

    assert all(run_spmd(3, prog, IB_CLUSTER).results)


def test_shrunk_world_reexchange():
    """After a rank loss the survivors re-partition and re-exchange."""
    mesh = structured_grid((8, 6))
    truth = np.arange(mesh.ncells, dtype=float)
    layout3 = build_partition_layout(mesh, partition_cells(mesh, 3))
    layout2 = build_partition_layout(mesh, partition_cells(mesh, 2))

    def prog3(comm):
        ex = HaloExchanger(layout3, comm.rank)
        local = np.zeros(ex.n_owned + ex.n_ghost)
        local[: ex.n_owned] = truth[layout3.owned[comm.rank]]
        ex.update(comm, local)
        return True

    def prog2(comm):
        ex = HaloExchanger(layout2, comm.rank)
        local = np.zeros(ex.n_owned + ex.n_ghost)
        local[: ex.n_owned] = truth[layout2.owned[comm.rank]]
        ex.update(comm, local)
        assert np.allclose(local[ex.n_owned :],
                           truth[layout2.ghosts[comm.rank]])
        return True

    assert all(run_spmd(3, prog3, IB_CLUSTER).results)
    assert all(run_spmd(2, prog2, IB_CLUSTER).results)
