"""Halo exchange correctness on partitioned meshes."""

import numpy as np
import pytest

from repro.mesh.grid import structured_grid
from repro.mesh.partition import build_partition_layout, partition_cells
from repro.runtime.executor import run_spmd
from repro.runtime.halo import HaloExchanger
from repro.runtime.netmodel import IB_CLUSTER
from repro.util.errors import ReproError


@pytest.mark.parametrize("nparts", [2, 3, 4])
@pytest.mark.parametrize("method", ["graph", "rcb"])
def test_ghosts_receive_true_neighbor_values(nparts, method):
    mesh = structured_grid((9, 7))
    layout = build_partition_layout(mesh, partition_cells(mesh, nparts, method=method))
    truth = np.arange(mesh.ncells, dtype=float) * 2.0 + 1.0

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        local = np.full(ex.n_owned + ex.n_ghost, -1.0)
        local[: ex.n_owned] = truth[layout.owned[comm.rank]]
        ex.update(comm, local)
        expected_ghosts = truth[layout.ghosts[comm.rank]]
        assert np.allclose(local[ex.n_owned :], expected_ghosts)
        return True

    assert all(run_spmd(nparts, prog, IB_CLUSTER).results)


def test_multicomponent_halo():
    mesh = structured_grid((6, 6))
    layout = build_partition_layout(mesh, partition_cells(mesh, 2))
    truth = np.stack([np.arange(mesh.ncells, dtype=float),
                      np.arange(mesh.ncells, dtype=float) ** 2])

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        local = np.zeros((2, ex.n_owned + ex.n_ghost))
        local[:, : ex.n_owned] = truth[:, layout.owned[comm.rank]]
        ex.update(comm, local)
        assert np.allclose(local[:, ex.n_owned :], truth[:, layout.ghosts[comm.rank]])
        return True

    assert all(run_spmd(2, prog, IB_CLUSTER).results)


def test_bytes_per_exchange():
    mesh = structured_grid((6, 6))
    layout = build_partition_layout(mesh, partition_cells(mesh, 2))
    ex = HaloExchanger(layout, 0)
    per_comp = sum(len(c) for c in layout.send_cells[0].values()) * 8
    assert ex.bytes_per_exchange() == per_comp
    assert ex.bytes_per_exchange(ncomp=5) == 5 * per_comp


def test_wrong_local_size_rejected():
    mesh = structured_grid((4, 4))
    layout = build_partition_layout(mesh, partition_cells(mesh, 2))

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        with pytest.raises(ReproError):
            ex.update(comm, np.zeros(3))
        # drain the channel so peers don't dangle: do a real update
        local = np.zeros(ex.n_owned + ex.n_ghost)
        ex.update(comm, local)
        return True

    assert all(run_spmd(2, prog, IB_CLUSTER).results)
