"""Property-based invariants of mesh partitioning and halo exchange.

Hypothesis drives mesh shapes, part counts and partitioning methods; the
invariants under test are the contracts the distributed targets build on:
every cell is owned by exactly one rank, ghost/send/recv structures are
mutually consistent, and a halo update delivers exactly the owner's values
into every ghost slot (the round-trip property).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.grid import structured_grid
from repro.mesh.partition import build_partition_layout, partition_cells
from repro.runtime.executor import run_spmd
from repro.runtime.halo import HaloExchanger
from repro.runtime.netmodel import IB_CLUSTER


@st.composite
def partitioned_meshes(draw):
    nx = draw(st.integers(min_value=2, max_value=8))
    ny = draw(st.integers(min_value=2, max_value=6))
    mesh = structured_grid((nx, ny))
    nparts = draw(st.integers(min_value=1, max_value=min(5, mesh.ncells)))
    method = draw(st.sampled_from(["graph", "rcb"]))
    return mesh, partition_cells(mesh, nparts, method=method)


@given(case=partitioned_meshes())
@settings(max_examples=40, deadline=None)
def test_every_cell_owned_by_exactly_one_rank(case):
    mesh, parts = case
    layout = build_partition_layout(mesh, parts)
    all_owned = np.concatenate(layout.owned)
    # a permutation of the global cell ids: total coverage, no double-owning
    assert len(all_owned) == mesh.ncells
    assert np.array_equal(np.sort(all_owned), np.arange(mesh.ncells))
    for p in range(layout.nparts):
        assert np.all(parts[layout.owned[p]] == p)
        # ghosts are never owned locally, and each ghost's owner is its part
        owned_set = set(layout.owned[p].tolist())
        for g in layout.ghosts[p]:
            assert int(g) not in owned_set
            assert int(parts[g]) != p


@given(case=partitioned_meshes())
@settings(max_examples=40, deadline=None)
def test_send_recv_structure_is_consistent(case):
    mesh, parts = case
    layout = build_partition_layout(mesh, parts)
    for p in range(layout.nparts):
        # what p receives from q is exactly what q sends to p, in order
        for q, cells in layout.recv_cells[p].items():
            assert np.array_equal(layout.send_cells[q][p], cells)
            assert np.all(parts[cells] == q)  # senders own what they send
        # the ghost list is exactly the union of the per-neighbour recvs
        from_recvs = sorted(
            int(c) for cells in layout.recv_cells[p].values() for c in cells
        )
        assert from_recvs == sorted(int(g) for g in layout.ghosts[p])


@given(case=partitioned_meshes(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_halo_update_roundtrips_ghost_values(case, seed):
    mesh, parts = case
    layout = build_partition_layout(mesh, parts)
    truth = np.random.default_rng(seed).normal(size=mesh.ncells)

    def prog(comm):
        ex = HaloExchanger(layout, comm.rank)
        local = np.full(ex.n_owned + ex.n_ghost, np.nan)
        local[: ex.n_owned] = truth[layout.owned[comm.rank]]
        ex.update(comm, local)
        assert np.array_equal(local[ex.n_owned:], truth[layout.ghosts[comm.rank]])
        assert np.array_equal(local[: ex.n_owned], truth[layout.owned[comm.rank]])
        return True

    assert all(run_spmd(layout.nparts, prog, IB_CLUSTER).results)
