"""Fault injector semantics and the comm layer's recovery protocol."""

import numpy as np
import pytest

from repro.runtime.comm import World
from repro.runtime.executor import run_spmd
from repro.runtime.faults import (
    FaultInjector,
    NULL_INJECTOR,
    fault_run,
    get_injector,
    parse_fault_spec,
    set_injector,
)
from repro.runtime.resilience import RetryPolicy, get_resilience_log
from repro.util.errors import CommFaultError, FaultSpecError


class TestSpecGrammar:
    def test_parses_rules_and_keys(self):
        rules = parse_fault_spec(
            "drop:rank=0,dest=1,tag=7,at=2;stall:rank=2,delay=5e-4;oom:device=gpu1,op=h2d"
        )
        assert [r.kind for r in rules] == ["drop", "stall", "oom"]
        assert (rules[0].rank, rules[0].dest, rules[0].tag, rules[0].at) == (0, 1, 7, 2)
        assert rules[1].delay_s == pytest.approx(5e-4)
        assert (rules[2].device, rules[2].op) == ("gpu1", "h2d")

    @pytest.mark.parametrize("spec", [
        "explode:rank=0",          # unknown kind
        "drop:rank",               # missing '='
        "drop:rank=zero",          # non-integer value
        "drop:sender=0",           # unknown key
        "drop:p=1.5",              # probability outside [0, 1]
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_describe_roundtrips_filters(self):
        (rule,) = parse_fault_spec("oom:device=gpu0,op=launch,at=3")
        assert rule.describe() == "oom:device=gpu0,op=launch,at=3"


class TestInjectorTriggering:
    def test_at_fires_on_nth_occurrence_only(self):
        inj = FaultInjector("drop:rank=0,dest=1,at=3")
        hits = [inj.message_fault(0, 1, 7) is not None for _ in range(5)]
        assert hits == [False, False, True, False, False]

    def test_filters_do_not_consume_occurrences(self):
        inj = FaultInjector("drop:rank=0,dest=1,at=1")
        assert inj.message_fault(1, 0, 7) is None  # wrong direction: no match
        assert inj.message_fault(0, 1, 7) is not None  # still the 1st occurrence

    def test_count_limits_firings(self):
        inj = FaultInjector("drop:rank=0,count=2")
        fired = sum(inj.message_fault(0, 1, 7) is not None for _ in range(6))
        assert fired == 2

    def test_count_zero_is_unlimited(self):
        inj = FaultInjector("drop:rank=0,count=0")
        assert all(inj.message_fault(0, 1, 7) is not None for _ in range(6))

    def test_probabilistic_rules_are_seed_deterministic(self):
        def decisions(seed):
            inj = FaultInjector("drop:p=0.5,count=0", seed=seed)
            return [inj.message_fault(0, 1, 7) is not None for _ in range(64)]

        assert decisions(11) == decisions(11)
        assert any(decisions(11)) and not all(decisions(11))

    def test_device_and_stall_queries(self):
        inj = FaultInjector("oom:device=gpu1,op=h2d;stall:rank=2,delay=3e-4")
        assert inj.device_fault("gpu0:A6000", "h2d") is None
        assert inj.device_fault("gpu1:A6000", "launch") is None
        assert inj.device_fault("gpu1:A6000", "h2d") == "oom"
        assert inj.stall_seconds(0) == 0.0
        assert inj.stall_seconds(2) == pytest.approx(3e-4)

    def test_state_roundtrip_resumes_rng_and_triggers(self):
        inj = FaultInjector("drop:p=0.5,count=0", seed=5)
        head = [inj.message_fault(0, 1, 7) is not None for _ in range(10)]
        snapshot = inj.state_dict()
        tail = [inj.message_fault(0, 1, 7) is not None for _ in range(20)]

        resumed = FaultInjector("drop:p=0.5,count=0", seed=5)
        resumed.load_state(snapshot)
        assert resumed.rules[0].occurrences == 10
        replay = [resumed.message_fault(0, 1, 7) is not None for _ in range(20)]
        assert replay == tail
        assert head  # silence unused warning-by-review: head exercised the RNG


class TestFaultRunContext:
    def test_installs_and_restores_injector(self):
        assert get_injector() is NULL_INJECTOR
        with fault_run("drop:rank=0", seed=1) as inj:
            assert get_injector() is inj
            assert inj.enabled
        assert get_injector() is NULL_INJECTOR

    def test_resets_resilience_log_by_default(self):
        get_resilience_log().record_retry()
        with fault_run(None):
            assert not get_resilience_log().has_events()

    def test_null_spec_keeps_injection_disabled(self):
        with fault_run(None):
            assert not get_injector().enabled


class TestCommRecovery:
    def payloads(self):
        return [np.full(4, 10.0 * (k + 1)) for k in range(3)]

    def run_pair(self, spec, seed=0):
        """Rank 0 streams three arrays to rank 1; return what rank 1 saw."""
        def prog(comm):
            if comm.rank == 0:
                for data in self.payloads():
                    comm.send(1, data)
                return None
            return [comm.recv(0)[0] for _ in range(3)]

        with fault_run(spec, seed=seed):
            received = run_spmd(2, prog).results[1]
            log = get_resilience_log()
            return received, log

    def test_dropped_message_is_redelivered_in_order(self):
        received, log = self.run_pair("drop:rank=0,dest=1,at=2")
        assert received == [10.0, 20.0, 30.0]
        assert log.injected == {"drop": 1}
        assert log.retries >= 1 and log.recovered >= 1

    def test_drop_of_first_message_survives_overtaking(self):
        # later sends overtake the lost seq 1; the reorder buffer must hold
        # them while the re-send fills the gap
        received, log = self.run_pair("drop:rank=0,dest=1,at=1")
        assert received == [10.0, 20.0, 30.0]
        assert log.recovered >= 1

    def test_duplicate_is_discarded_by_seq_dedup(self):
        received, log = self.run_pair("dup:rank=0,dest=1,at=1")
        assert received == [10.0, 20.0, 30.0]
        assert log.injected == {"dup": 1}
        assert log.duplicates_dropped >= 1

    def test_delay_charges_virtual_time_only(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(2))
                return 0.0
            comm.recv(0)
            return comm.clock.now()

        with fault_run("delay:rank=0,dest=1,at=1,delay=2e-3"):
            res = run_spmd(2, prog)
        assert res.results[1] >= 2e-3

    def test_stall_charges_the_stalled_rank(self):
        def prog(comm):
            comm.compute(1e-6)
            return comm.clock.now()

        with fault_run("stall:rank=1,at=1,delay=7e-4"):
            res = run_spmd(2, prog)
        assert res.results[0] < 1e-4  # only rank 1 stalls
        assert res.results[1] >= 7e-4

    def test_retry_budget_exhaustion_raises_typed_error(self):
        # injection enabled (slow path) but nothing is ever sent: the
        # receiver must give up after max_retries, not hang for the
        # world's 60 s deadlock guard
        world = World(2)
        comm = world.communicator(1)
        comm.retry_policy = RetryPolicy(max_retries=2, wall_timeout_s=0.005)
        with fault_run("drop:rank=9"):
            with pytest.raises(CommFaultError, match="retries"):
                comm.recv(0)

    def test_fault_free_runs_skip_the_retry_machinery(self):
        received, log = self.run_pair(None)
        assert received == [10.0, 20.0, 30.0]
        assert not log.has_events()
