"""Simulated communicator: point-to-point, collectives, virtual time."""

import numpy as np
import pytest

from repro.runtime.comm import ReduceOp, World
from repro.runtime.executor import run_spmd
from repro.runtime.netmodel import IB_CLUSTER, NetworkModel, ZERO_COST
from repro.util.errors import ReproError


class TestPointToPoint:
    def test_send_recv_payload(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(5.0))
                return None
            return comm.recv(0)

        res = run_spmd(2, prog)
        assert np.allclose(res.results[1], [0, 1, 2, 3, 4])

    def test_send_copies_payload(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.zeros(3)
                comm.send(1, data)
                data[:] = 9.0  # mutation after send must not leak
                return None
            return comm.recv(0)

        res = run_spmd(2, prog)
        assert np.allclose(res.results[1], 0.0)

    def test_tags_separate_channels(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        res = run_spmd(2, prog)
        assert res.results[1] == ("a", "b")

    def test_send_to_self_rejected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(0, 1.0)
            return True

        with pytest.raises(ReproError):
            run_spmd(2, prog)

    def test_recv_charges_transfer_time(self):
        net = NetworkModel("t", latency_s=1e-3, bandwidth_gbs=1.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(1000))
                return 0.0
            comm.recv(0)
            return comm.clock.now()

        res = run_spmd(2, prog, net)
        expected = 1e-3 + 8000 / 1e9
        assert res.results[1] == pytest.approx(expected)

    def test_exchange_symmetric(self):
        def prog(comm):
            other = 1 - comm.rank
            out = comm.exchange({other: np.full(3, float(comm.rank))})
            return float(out[other][0])

        res = run_spmd(2, prog)
        assert res.results == [1.0, 0.0]


class TestCollectives:
    def test_allreduce_sum(self):
        def prog(comm):
            return comm.allreduce(np.array([float(comm.rank + 1)]))

        res = run_spmd(4, prog)
        for r in res.results:
            assert np.allclose(r, [10.0])

    def test_allreduce_scalar(self):
        def prog(comm):
            return comm.allreduce(float(comm.rank))

        res = run_spmd(3, prog)
        assert res.results == [3.0, 3.0, 3.0]

    @pytest.mark.parametrize("op,expect", [(ReduceOp.MAX, 2.0), (ReduceOp.MIN, 0.0)])
    def test_allreduce_minmax(self, op, expect):
        def prog(comm):
            return comm.allreduce(float(comm.rank), op)

        assert run_spmd(3, prog).results == [expect] * 3

    def test_allreduce_cost_log_rounds(self):
        net = NetworkModel("t", latency_s=1e-3, bandwidth_gbs=1e6)

        def prog(comm):
            comm.allreduce(np.zeros(8))
            return comm.clock.now()

        res = run_spmd(8, prog, net)
        # ceil(log2(8)) = 3 rounds of ~latency
        assert res.results[0] == pytest.approx(3e-3, rel=0.1)

    def test_allreduce_waits_for_latest_entrant(self):
        def prog(comm):
            comm.compute(0.5 * comm.rank)
            comm.allreduce(np.zeros(1))
            return comm.clock.now()

        res = run_spmd(3, prog, ZERO_COST)
        assert all(t == pytest.approx(1.0) for t in res.results)

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank * 10)

        res = run_spmd(3, prog)
        assert res.results[0] == [0, 10, 20]

    def test_barrier_aligns_clocks(self):
        def prog(comm):
            comm.compute(comm.rank * 1.0)
            comm.barrier()
            return comm.clock.now()

        res = run_spmd(3, prog)
        assert all(t == pytest.approx(2.0) for t in res.results)


class TestAccounting:
    def test_compute_charges(self):
        def prog(comm):
            comm.compute(0.25, phase="solve")
            comm.compute(0.75, phase="solve")
            return comm.stats.phase_s["solve"]

        assert run_spmd(1, prog).results == [1.0]

    def test_negative_compute_rejected(self):
        def prog(comm):
            comm.compute(-1.0)

        with pytest.raises(ReproError):
            run_spmd(1, prog)

    def test_stats_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(100))
                return comm.stats.bytes_sent
            comm.recv(0)
            return 0

        assert run_spmd(2, prog).results[0] == 800

    def test_world_size_guard(self):
        with pytest.raises(ReproError):
            World(0)
        world = World(2)
        with pytest.raises(ReproError):
            world.communicator(5)
