"""Index spaces and cell fields (incl. hypothesis round-trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fvm.fields import CellField, IndexSpace
from repro.util.errors import DSLError


class TestIndexSpace:
    def test_ncomp(self):
        sp = IndexSpace(("d", "b"), (4, 3))
        assert sp.ncomp == 12

    def test_scalar_space(self):
        sp = IndexSpace.scalar()
        assert sp.ncomp == 1
        assert sp.flatten(()) == 0

    def test_flatten_row_major(self):
        sp = IndexSpace(("d", "b"), (4, 3))
        assert sp.flatten((0, 0)) == 0
        assert sp.flatten((0, 2)) == 2
        assert sp.flatten((1, 0)) == 3
        assert sp.flatten((3, 2)) == 11

    def test_unflatten(self):
        sp = IndexSpace(("d", "b"), (4, 3))
        assert sp.unflatten(7) == (2, 1)

    def test_axis_values(self):
        sp = IndexSpace(("d", "b"), (2, 3))
        assert sp.axis_values("b").tolist() == [0, 1, 2, 0, 1, 2]
        assert sp.axis_values("d").tolist() == [0, 0, 0, 1, 1, 1]

    def test_iter_indices_order(self):
        sp = IndexSpace(("i",), (3,))
        assert list(sp.iter_indices()) == [(0,), (1,), (2,)]

    def test_position_and_size(self):
        sp = IndexSpace(("d", "b"), (4, 3))
        assert sp.position("b") == 1
        assert sp.size("d") == 4
        with pytest.raises(DSLError):
            sp.position("q")

    @pytest.mark.parametrize(
        "names,sizes",
        [(("a", "a"), (2, 2)), (("a",), (0,)), (("a", "b"), (2,))],
    )
    def test_invalid_construction(self, names, sizes):
        with pytest.raises(DSLError):
            IndexSpace(names, sizes)

    def test_out_of_range(self):
        sp = IndexSpace(("d",), (3,))
        with pytest.raises(DSLError):
            sp.flatten((3,))
        with pytest.raises(DSLError):
            sp.unflatten(3)
        with pytest.raises(DSLError):
            sp.flatten((0, 0))


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_flatten_unflatten_roundtrip(sizes, data):
    names = tuple(f"i{k}" for k in range(len(sizes)))
    sp = IndexSpace(names, tuple(sizes))
    flat = data.draw(st.integers(min_value=0, max_value=sp.ncomp - 1))
    assert sp.flatten(sp.unflatten(flat)) == flat


@given(sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_axis_values_consistent_with_unflatten(sizes):
    names = tuple(f"i{k}" for k in range(len(sizes)))
    sp = IndexSpace(names, tuple(sizes))
    for name in names:
        pos = sp.position(name)
        vals = sp.axis_values(name)
        for flat in range(sp.ncomp):
            assert vals[flat] == sp.unflatten(flat)[pos]


class TestCellField:
    def test_shape_and_layout(self):
        f = CellField("I", IndexSpace(("d", "b"), (2, 3)), 10)
        assert f.data.shape == (6, 10)
        assert f.data.flags["C_CONTIGUOUS"]

    def test_scalar_field_has_leading_axis(self):
        f = CellField("u", IndexSpace.scalar(), 5)
        assert f.data.shape == (1, 5)
        assert f.component().shape == (5,)

    def test_component_view_is_view(self):
        f = CellField("I", IndexSpace(("d",), (3,)), 4)
        f.component(1)[:] = 9.0
        assert np.allclose(f.data[1], 9.0)

    def test_data_shape_check(self):
        with pytest.raises(DSLError):
            CellField("I", IndexSpace(("d",), (3,)), 4, data=np.zeros((2, 4)))

    def test_copy_independent(self):
        f = CellField("u", IndexSpace.scalar(), 3)
        g = f.copy()
        g.fill(1.0)
        assert np.allclose(f.data, 0.0)

    def test_nbytes(self):
        f = CellField("u", IndexSpace(("d",), (2,)), 8)
        assert f.nbytes() == 2 * 8 * 8
