"""Explicit steppers: exactness and convergence orders."""

import numpy as np
import pytest

from repro.fvm.timesteppers import RK2, RK4, ForwardEuler, make_stepper
from repro.util.errors import ConfigError


def integrate(stepper, u0, t_end, n):
    """du/dt = -u, exact solution u0 * exp(-t)."""
    dt = t_end / n
    u = np.array([u0])
    t = 0.0
    for _ in range(n):
        u = stepper.advance(u, t, dt, lambda uu, tt: -uu)
        t += dt
    return u[0]


def observed_order(stepper):
    exact = np.exp(-1.0)
    errors = []
    for n in (20, 40, 80):
        errors.append(abs(integrate(stepper, 1.0, 1.0, n) - exact))
    orders = [
        np.log2(errors[i] / errors[i + 1]) for i in range(len(errors) - 1)
    ]
    return np.mean(orders)


class TestOrders:
    def test_euler_first_order(self):
        assert observed_order(ForwardEuler()) == pytest.approx(1.0, abs=0.15)

    def test_rk2_second_order(self):
        assert observed_order(RK2()) == pytest.approx(2.0, abs=0.2)

    def test_rk4_fourth_order(self):
        assert observed_order(RK4()) == pytest.approx(4.0, abs=0.4)


class TestExactness:
    def test_euler_one_step_formula(self):
        u = np.array([2.0])
        out = ForwardEuler().advance(u, 0.0, 0.5, lambda uu, tt: 3.0 * np.ones_like(uu))
        assert out[0] == pytest.approx(3.5)

    def test_rk4_exact_for_cubic_time_polynomial(self):
        # du/dt = 3t^2 -> u(t) = t^3; RK4 integrates polynomials up to
        # degree 3 in time exactly
        u = np.array([0.0])
        out = RK4().advance(u, 0.0, 1.0, lambda uu, tt: np.array([3.0 * tt**2]))
        assert out[0] == pytest.approx(1.0, abs=1e-12)

    def test_time_passed_to_rhs(self):
        seen = []
        RK2().advance(np.zeros(1), 1.0, 0.2, lambda uu, tt: (seen.append(tt), uu)[1])
        assert seen == [1.0, 1.1]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("euler", ForwardEuler),
            ("EULER", ForwardEuler),
            ("euler_explicit", ForwardEuler),
            ("rk2", RK2),
            ("midpoint", RK2),
            ("rk4", RK4),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_stepper(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_stepper("leapfrog")

    def test_stage_counts(self):
        assert ForwardEuler().stages == 1
        assert RK2().stages == 2
        assert RK4().stages == 4
