"""FVGeometry: divergence operator and face gathers."""

import numpy as np
import pytest

from repro.fvm.geometry import FVGeometry
from repro.fvm import kernels
from repro.mesh.grid import structured_grid


@pytest.fixture
def geom():
    return FVGeometry(structured_grid((6, 5), [(0.0, 3.0), (0.0, 2.5)]))


class TestDivergence:
    def test_constant_flux_zero_divergence_interior(self, geom):
        """Discrete divergence theorem: a uniform vector field has zero
        divergence in every cell not touching the boundary."""
        vn = geom.normal @ np.array([1.0, 2.0])  # v.n per face
        div = geom.surface_divergence(vn)
        # interior cells = cells with no boundary face
        has_bdry = np.zeros(geom.ncells, dtype=bool)
        has_bdry[geom.owner[geom.bfaces]] = True
        assert np.allclose(div[~has_bdry], 0.0, atol=1e-12)

    def test_linear_field_unit_divergence(self, geom):
        """flux = (x, 0) evaluated at face centres: div == 1 exactly for
        uniform quads (the midpoint rule is exact for linear fields)."""
        vn = geom.center[:, 0] * geom.normal[:, 0]
        div = geom.surface_divergence(vn)
        assert np.allclose(div, 1.0, atol=1e-9)

    def test_multicomponent_shape(self, geom):
        flux = np.ones((7, geom.nfaces))
        div = geom.surface_divergence(flux)
        assert div.shape == (7, geom.ncells)

    def test_matches_manual_accumulation(self, geom):
        rng = np.random.default_rng(0)
        flux = rng.standard_normal(geom.nfaces)
        div = geom.surface_divergence(flux)
        manual = np.zeros(geom.ncells)
        np.add.at(manual, geom.owner, geom.area * flux)
        inter = geom.interior_mask
        np.add.at(manual, geom.neighbor[inter], -(geom.area * flux)[inter])
        manual *= geom.inv_volume
        assert np.allclose(div, manual)


class TestGathers:
    def test_sides_interior(self, geom):
        u = np.arange(geom.ncells, dtype=float)
        u1, u2 = geom.gather_sides(u)
        inter = geom.interior_mask
        assert np.allclose(u1[inter], u[geom.owner[inter]])
        assert np.allclose(u2[inter], u[geom.neighbor[inter]])

    def test_boundary_defaults_to_owner(self, geom):
        u = np.arange(geom.ncells, dtype=float)
        _, u2 = geom.gather_sides(u)
        b = geom.bfaces
        assert np.allclose(u2[b], u[geom.owner[b]])

    def test_ghost_override(self, geom):
        u = np.zeros(geom.ncells)
        ghost = np.full(geom.boundary_face_count(), 7.0)
        _, u2 = geom.gather_sides(u, ghost)
        assert np.allclose(u2[geom.bfaces], 7.0)
        assert np.allclose(u2[geom.interior_mask], 0.0)

    def test_multicomponent_gather(self, geom):
        u = np.tile(np.arange(geom.ncells, dtype=float), (3, 1))
        ghost = np.zeros((3, geom.boundary_face_count()))
        u1, u2 = geom.gather_sides(u, ghost)
        assert u1.shape == (3, geom.nfaces)
        assert np.allclose(u2[:, geom.bfaces], 0.0)

    def test_region_slots_consistent(self, geom):
        for r, faces in geom.region_faces.items():
            slots = geom.region_slots[r]
            assert np.array_equal(geom.bfaces[slots], faces)


class TestKernels:
    def test_upwind_positive_velocity_uses_owner(self):
        vn = np.array([2.0, -3.0])
        u1 = np.array([1.0, 1.0])
        u2 = np.array([10.0, 10.0])
        flux = kernels.upwind_flux(vn, u1, u2)
        assert np.allclose(flux, [2.0, -30.0])

    def test_central_flux(self):
        vn = np.array([2.0])
        assert kernels.central_flux(vn, np.array([1.0]), np.array([3.0]))[0] == 4.0

    def test_euler_update_matches_formula(self):
        u = np.array([1.0, 2.0])
        out = kernels.euler_update(u, 0.1, np.array([1.0, 1.0]), np.array([0.5, 0.5]))
        assert np.allclose(out, u + 0.1 * 0.5)

    def test_euler_update_inplace(self):
        u = np.array([1.0, 2.0])
        buf = np.empty_like(u)
        out = kernels.euler_update_inplace(buf, u, 0.1, np.ones(2), np.zeros(2))
        assert out is buf
        assert np.allclose(buf, u + 0.1)

    def test_axpy(self):
        y = np.ones(3)
        kernels.axpy(y, 2.0, np.arange(3.0))
        assert np.allclose(y, [1, 3, 5])

    def test_reduction_sum_weighted(self):
        v = np.arange(6.0).reshape(2, 3)
        out = kernels.reduction_sum(v, weights=np.array([1.0, 2.0]), axis=0)
        assert np.allclose(out, v[0] + 2 * v[1])

    def test_flop_counters_positive(self):
        assert kernels.flop_count_upwind(4, 100, 2) > 0
        assert kernels.flop_count_euler(4, 100) == 1200
