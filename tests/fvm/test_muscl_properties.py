"""Property-based tests on the MUSCL kernel's guarantees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fvm import kernels
from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import structured_grid


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    shape=st.tuples(st.integers(min_value=3, max_value=8),
                    st.integers(min_value=3, max_value=8)),
)
@settings(max_examples=30, deadline=None)
def test_reconstructed_face_values_stay_in_local_bounds(seed, shape):
    """Barth-Jespersen guarantee: every reconstructed face value lies inside
    the [min, max] of the contributing cell and its face neighbours."""
    geom = FVGeometry(structured_grid(shape))
    rng = np.random.default_rng(seed)
    u = rng.uniform(-5, 5, geom.ncells)
    ghost = u[geom.owner[geom.bfaces]]  # zero-gradient ghosts
    vn = np.ones(geom.nfaces)  # positive: upwind side is always the owner
    flux = kernels.muscl_flux(geom, vn, u, ghost)
    face_value = flux / vn  # owner-side reconstruction

    # per-cell neighbour bounds
    adj = geom.mesh.cell_neighbors()
    for f in range(geom.nfaces):
        c = int(geom.owner[f])
        candidates = [u[c]] + [u[nb] for nb in adj[c]]
        if geom.bface_slot[f] >= 0 or any(
            geom.bface_slot[ff] >= 0 for ff in geom.mesh.cell_faces(c)
        ):
            candidates.append(u[c])  # ghost equals owner (zero gradient)
        lo, hi = min(candidates), max(candidates)
        assert lo - 1e-12 <= face_value[f] <= hi + 1e-12


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_uniform_field_reconstructs_exactly(seed):
    geom = FVGeometry(structured_grid((6, 4)))
    rng = np.random.default_rng(seed)
    value = float(rng.uniform(-3, 3))
    u = np.full(geom.ncells, value)
    ghost = np.full(len(geom.bfaces), value)
    vn = rng.standard_normal(geom.nfaces)
    flux = kernels.muscl_flux(geom, vn, u, ghost)
    np.testing.assert_allclose(flux, vn * value, rtol=1e-13, atol=1e-13)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_linear_field_reconstructs_exactly_in_the_interior(seed):
    """MUSCL is exact for linear data away from the boundary (the limiter
    must not engage)."""
    geom = FVGeometry(structured_grid((8, 8)))
    rng = np.random.default_rng(seed)
    a, b = rng.uniform(-2, 2, 2)
    u = a * geom.cell_center[:, 0] + b * geom.cell_center[:, 1]
    ghost = a * geom.center[geom.bfaces, 0] + b * geom.center[geom.bfaces, 1]
    vn = np.ones(geom.nfaces)
    flux = kernels.muscl_flux(geom, vn, u, ghost)
    exact = a * geom.center[:, 0] + b * geom.center[:, 1]
    # interior faces whose both cells are interior cells
    owner_interior = np.zeros(geom.ncells, dtype=bool)
    owner_interior[:] = True
    owner_interior[geom.owner[geom.bfaces]] = False
    deep = geom.interior_mask.copy()
    deep &= owner_interior[geom.owner]
    deep &= owner_interior[geom.neighbor_safe]
    np.testing.assert_allclose(flux[deep], exact[deep], rtol=1e-10, atol=1e-12)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_multicomponent_matches_per_component(seed):
    geom = FVGeometry(structured_grid((5, 4)))
    rng = np.random.default_rng(seed)
    u = rng.uniform(-1, 1, (3, geom.ncells))
    ghost = u[:, geom.owner[geom.bfaces]]
    vn = rng.standard_normal((3, geom.nfaces))
    batched = kernels.muscl_flux(geom, vn, u, ghost)
    for c in range(3):
        single = kernels.muscl_flux(geom, vn[c], u[c], ghost[c])
        np.testing.assert_allclose(batched[c], single, rtol=1e-13, atol=1e-300)
