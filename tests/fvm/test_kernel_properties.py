"""Property-based tests on the FV kernels and the divergence operator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fvm import kernels
from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import structured_grid

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


@given(
    vn=st.lists(finite, min_size=4, max_size=12),
    u1=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=4, max_size=12),
    u2=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=4, max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_upwind_flux_selects_upstream_value(vn, u1, u2):
    n = min(len(vn), len(u1), len(u2))
    vn, u1, u2 = (np.array(v[:n]) for v in (vn, u1, u2))
    flux = kernels.upwind_flux(vn, u1, u2)
    for i in range(n):
        expected = vn[i] * (u1[i] if vn[i] > 0 else u2[i])
        assert flux[i] == expected


@given(
    vn=st.lists(finite, min_size=4, max_size=12),
    u=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
               min_size=4, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_upwind_consistency_with_uniform_state(vn, u):
    """With u1 == u2 == u the upwind and central fluxes coincide (flux
    consistency of the reconstruction)."""
    n = min(len(vn), len(u))
    vn, u = np.array(vn[:n]), np.array(u[:n])
    # atol covers denormal rounding (0.5 * denormal underflows to zero)
    np.testing.assert_allclose(
        kernels.upwind_flux(vn, u, u),
        kernels.central_flux(vn, u, u),
        rtol=1e-14,
        atol=1e-300,
    )


@given(
    shape=st.tuples(st.integers(min_value=2, max_value=7),
                    st.integers(min_value=2, max_value=7)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_divergence_telescopes_to_boundary_flux(shape, seed):
    """Volume-weighted divergence sums telescope: interior contributions
    cancel in pairs, leaving exactly the boundary flux (the discrete Gauss
    theorem the conservative update relies on)."""
    mesh = structured_grid(shape)
    geom = FVGeometry(mesh)
    rng = np.random.default_rng(seed)
    flux = rng.standard_normal(geom.nfaces)
    div = geom.surface_divergence(flux)
    total = float(div @ geom.volume)
    boundary = float((geom.area[geom.bfaces] * flux[geom.bfaces]).sum())
    assert np.isclose(total, boundary, rtol=1e-10, atol=1e-10)


@given(
    shape=st.tuples(st.integers(min_value=2, max_value=6),
                    st.integers(min_value=2, max_value=6)),
    a=finite,
    b=finite,
)
@settings(max_examples=25, deadline=None)
def test_divergence_is_linear(shape, a, b):
    mesh = structured_grid(shape)
    geom = FVGeometry(mesh)
    rng = np.random.default_rng(0)
    f1 = rng.standard_normal(geom.nfaces)
    f2 = rng.standard_normal(geom.nfaces)
    lhs = geom.surface_divergence(a * f1 + b * f2)
    rhs = a * geom.surface_divergence(f1) + b * geom.surface_divergence(f2)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_face_dist_positive_everywhere(seed):
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(2, 8)), int(rng.integers(2, 8)))
    geom = FVGeometry(structured_grid(shape))
    assert np.all(geom.face_dist > 0)
    # interior: exactly the centroid spacing of a uniform grid
    h = 1.0 / shape[0]
    inter_x = geom.interior_mask & (np.abs(geom.normal[:, 0]) > 0.5)
    assert np.allclose(geom.face_dist[inter_x], h, rtol=1e-12)
