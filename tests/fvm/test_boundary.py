"""Boundary-condition bookkeeping: ghosts, callbacks, symmetry, errors."""

import numpy as np
import pytest

from repro.fvm.boundary import (
    BCKind,
    BoundaryCondition,
    BoundarySet,
    BoundaryContext,
)
from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import structured_grid
from repro.util.errors import ConfigError


@pytest.fixture
def geom():
    return FVGeometry(structured_grid((4, 4)))


def full_set(geom, ncomp=1, overrides=None):
    overrides = overrides or {}
    bset = BoundarySet(geom, ncomp)
    for region in (1, 2, 3, 4):
        if region in overrides:
            bset.add(overrides[region])
        else:
            bset.add(BoundaryCondition(region=region, kind=BCKind.NEUMANN0))
    return bset


class TestConstruction:
    def test_dirichlet_requires_value(self):
        with pytest.raises(ConfigError):
            BoundaryCondition(region=1, kind=BCKind.DIRICHLET)

    def test_flux_requires_callback(self):
        with pytest.raises(ConfigError):
            BoundaryCondition(region=1, kind=BCKind.FLUX)

    def test_symmetry_requires_map(self):
        with pytest.raises(ConfigError):
            BoundaryCondition(region=1, kind=BCKind.SYMMETRY)

    def test_unknown_region_rejected(self, geom):
        bset = BoundarySet(geom, 1)
        with pytest.raises(ConfigError):
            bset.add(BoundaryCondition(region=9, kind=BCKind.NEUMANN0))

    def test_duplicate_region_rejected(self, geom):
        bset = BoundarySet(geom, 1)
        bset.add(BoundaryCondition(region=1, kind=BCKind.NEUMANN0))
        with pytest.raises(ConfigError):
            bset.add(BoundaryCondition(region=1, kind=BCKind.NEUMANN0))

    def test_check_complete(self, geom):
        bset = BoundarySet(geom, 1)
        bset.add(BoundaryCondition(region=1, kind=BCKind.NEUMANN0))
        with pytest.raises(ConfigError):
            bset.check_complete()

    def test_reflection_map_length_checked(self, geom):
        bset = BoundarySet(geom, 4)
        with pytest.raises(ConfigError):
            bset.add(
                BoundaryCondition(
                    region=1, kind=BCKind.SYMMETRY, reflection_map=np.array([0, 1])
                )
            )


class TestGhostValues:
    def test_dirichlet_scalar(self, geom):
        bset = full_set(
            geom,
            1,
            {1: BoundaryCondition(region=1, kind=BCKind.DIRICHLET, value=5.0)},
        )
        u = np.zeros((1, geom.ncells))
        ghost = bset.ghost_values(u)
        slots = geom.region_slots[1]
        assert np.allclose(ghost[:, slots], 5.0)

    def test_dirichlet_per_component(self, geom):
        vals = np.array([1.0, 2.0, 3.0])
        bset = full_set(
            geom,
            3,
            {2: BoundaryCondition(region=2, kind=BCKind.DIRICHLET, value=vals)},
        )
        u = np.zeros((3, geom.ncells))
        ghost = bset.ghost_values(u)
        slots = geom.region_slots[2]
        assert np.allclose(ghost[:, slots], vals[:, None])

    def test_neumann0_copies_owner(self, geom):
        bset = full_set(geom, 1)
        u = np.arange(geom.ncells, dtype=float)[None, :]
        ghost = bset.ghost_values(u)
        assert np.allclose(ghost[0], u[0, geom.owner[geom.bfaces]])

    def test_symmetry_permutes_components(self, geom):
        refl = np.array([1, 0], dtype=np.int64)
        bset = full_set(
            geom,
            2,
            {3: BoundaryCondition(region=3, kind=BCKind.SYMMETRY, reflection_map=refl)},
        )
        u = np.stack([np.full(geom.ncells, 10.0), np.full(geom.ncells, 20.0)])
        ghost = bset.ghost_values(u)
        slots = geom.region_slots[3]
        assert np.allclose(ghost[0, slots], 20.0)
        assert np.allclose(ghost[1, slots], 10.0)

    def test_ghost_callback(self, geom):
        def cb(ctx):
            return np.full((1, ctx.nfaces), 42.0)

        bset = full_set(
            geom,
            1,
            {4: BoundaryCondition(region=4, kind=BCKind.GHOST_CALLBACK, callback=cb)},
        )
        ghost = bset.ghost_values(np.zeros((1, geom.ncells)))
        assert np.allclose(ghost[:, geom.region_slots[4]], 42.0)

    def test_ghost_callback_shape_checked(self, geom):
        def bad(ctx):
            return np.zeros((2, ctx.nfaces))

        bset = full_set(
            geom,
            1,
            {4: BoundaryCondition(region=4, kind=BCKind.GHOST_CALLBACK, callback=bad)},
        )
        with pytest.raises(ConfigError):
            bset.ghost_values(np.zeros((1, geom.ncells)))


class TestFluxOverrides:
    def test_flux_callback_receives_context(self, geom):
        seen = {}

        def cb(ctx):
            seen["ctx"] = ctx
            return np.zeros((1, ctx.nfaces))

        bset = full_set(
            geom,
            1,
            {1: BoundaryCondition(region=1, kind=BCKind.FLUX, callback=cb)},
        )
        u = np.arange(geom.ncells, dtype=float)[None, :]
        out = bset.flux_overrides(u, time=1.5, dt=0.1, extra={"tag": 7})
        ctx = seen["ctx"]
        assert isinstance(ctx, BoundaryContext)
        assert ctx.time == 1.5
        assert ctx.dt == 0.1
        assert ctx.extra["tag"] == 7
        assert np.allclose(ctx.owner_values, u[:, ctx.owner_cells])
        assert len(out) == 1
        faces, vals = out[0]
        assert np.array_equal(faces, geom.region_faces[1])

    def test_no_flux_regions_empty(self, geom):
        bset = full_set(geom, 1)
        assert bset.flux_overrides(np.zeros((1, geom.ncells))) == []

    def test_flux_shape_checked(self, geom):
        def bad(ctx):
            return np.zeros((1, ctx.nfaces + 1))

        bset = full_set(
            geom,
            1,
            {1: BoundaryCondition(region=1, kind=BCKind.FLUX, callback=bad)},
        )
        with pytest.raises(ConfigError):
            bset.flux_overrides(np.zeros((1, geom.ncells)))

    def test_has_callbacks(self, geom):
        assert not full_set(geom, 1).has_callbacks()
        bset = full_set(
            geom,
            1,
            {1: BoundaryCondition(region=1, kind=BCKind.FLUX, callback=lambda c: np.zeros((1, c.nfaces)))},
        )
        assert bset.has_callbacks()
