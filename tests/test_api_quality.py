"""API quality gates: public items documented, modules importable, exports
resolvable (deliverable (e): doc comments on every public item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.symbolic",
    "repro.mesh",
    "repro.fvm",
    "repro.fem",
    "repro.ir",
    "repro.dsl",
    "repro.codegen",
    "repro.codegen.placement",
    "repro.gpu",
    "repro.runtime",
    "repro.bte",
    "repro.perfmodel",
]


def all_modules():
    names = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        names.append(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                names.append(f"{pkg_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports_and_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_dunder_all_entries_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    for name in getattr(pkg, "__all__", []):
        assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("pkg_name", [p for p in PACKAGES if p != "repro"])
def test_public_classes_and_functions_documented(pkg_name):
    pkg = importlib.import_module(pkg_name)
    undocumented = []
    for name in getattr(pkg, "__all__", []):
        obj = getattr(pkg, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"{pkg_name}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts[:2])
