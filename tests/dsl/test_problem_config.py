"""Problem configuration and validation."""

import numpy as np
import pytest

from repro.dsl.entities import VAR_ARRAY, CELL
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid
from repro.util.errors import ConfigError, DSLError


def minimal_problem() -> Problem:
    p = Problem("test")
    p.set_domain(2)
    p.set_steps(1e-3, 10)
    p.set_mesh(structured_grid((4, 4)))
    p.add_variable("u")
    p.add_coefficient("k", 1.0)
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.NEUMANN0)
    p.set_initial("u", 1.0)
    p.set_conservation_form("u", "-k*u")
    return p


class TestValidation:
    def test_minimal_valid(self):
        minimal_problem().validate()

    def test_missing_mesh(self):
        p = Problem("x")
        p.set_steps(1e-3, 10)
        p.add_variable("u")
        p.set_conservation_form("u", "-u")
        with pytest.raises(ConfigError, match="mesh"):
            p.validate()

    def test_missing_steps(self):
        p = minimal_problem()
        p.config.dt = 0.0
        with pytest.raises(ConfigError, match="set_steps"):
            p.validate()

    def test_missing_equation(self):
        p = Problem("x")
        p.set_domain(2)
        p.set_steps(1e-3, 10)
        p.set_mesh(structured_grid((4, 4)))
        with pytest.raises(ConfigError, match="conservation_form"):
            p.validate()

    def test_uncovered_boundary_region(self):
        p = Problem("x")
        p.set_domain(2)
        p.set_steps(1e-3, 10)
        p.set_mesh(structured_grid((4, 4)))
        p.add_variable("u")
        p.add_boundary("u", 1, BCKind.NEUMANN0)
        p.set_conservation_form("u", "-u")
        with pytest.raises(ConfigError, match="without conditions"):
            p.validate()

    def test_unknown_region_in_bc(self):
        p = minimal_problem()
        p.add_boundary("u", 9, BCKind.NEUMANN0)
        with pytest.raises(ConfigError, match="unknown regions"):
            p.validate()

    def test_mesh_dimension_mismatch(self):
        p = Problem("x")
        p.set_domain(2)
        with pytest.raises(ConfigError, match="dimension"):
            p.set_mesh(structured_grid((5,)))

    def test_solver_type_checked(self):
        p = minimal_problem()
        p.set_solver_type("DG")
        with pytest.raises(ConfigError, match="FV or FEM"):
            p.validate()

    def test_fem_requires_weak_form_input(self):
        p = minimal_problem()
        p.set_solver_type("FEM")
        with pytest.raises(ConfigError, match="weak_form"):
            p.validate()

    def test_band_partition_needs_index_of_unknown(self):
        p = minimal_problem()
        p.set_partitioning("bands", 2, index="b")
        with pytest.raises(ConfigError):
            p.validate()


class TestDeclarations:
    def test_duplicate_equation_rejected(self):
        p = minimal_problem()
        with pytest.raises(DSLError):
            p.set_conservation_form("u", "-u")

    def test_duplicate_boundary_rejected(self):
        p = minimal_problem()
        with pytest.raises(DSLError, match="already has a condition"):
            p.add_boundary("u", 1, BCKind.NEUMANN0)

    def test_unknown_variable_in_boundary(self):
        p = minimal_problem()
        with pytest.raises(DSLError):
            p.add_boundary("w", 1, BCKind.NEUMANN0)

    def test_boundary_kind_from_string(self):
        p = Problem("x")
        p.set_domain(2)
        p.set_mesh(structured_grid((3, 3)))
        p.add_variable("u")
        p.add_boundary("u", 1, "dirichlet", 2.0)
        assert p.boundaries[0].kind == BCKind.DIRICHLET

    def test_flux_boundary_requires_callback_entity(self):
        p = minimal_problem()
        with pytest.raises(DSLError, match="not an imported callback"):
            p.add_boundary("u", 1, BCKind.FLUX, "nothere(u, 3)")

    def test_symmetry_needs_map(self):
        p = minimal_problem()
        with pytest.raises(DSLError, match="reflection map"):
            p.add_boundary("u", 1, BCKind.SYMMETRY)

    def test_assembly_loops_must_include_cells(self):
        p = minimal_problem()
        with pytest.raises(DSLError, match="cell loop"):
            p.set_assembly_loops([])

    def test_assembly_loops_elements_alias(self):
        p = minimal_problem()
        p.set_assembly_loops(["elements"])
        assert p.config.assembly_order == ["cells"]

    def test_assembly_loops_unknown_index(self):
        p = minimal_problem()
        with pytest.raises(DSLError, match="unknown loop"):
            p.set_assembly_loops(["cells", "q"])

    def test_set_steps_guards(self):
        p = Problem("x")
        with pytest.raises(ConfigError):
            p.set_steps(-1.0, 5)
        with pytest.raises(ConfigError):
            p.set_steps(1e-3, 0)

    def test_solve_wrong_variable(self):
        p = minimal_problem()
        p.add_variable("w")
        with pytest.raises(DSLError, match="does not match the declared unknown"):
            p.solve("w")

    def test_enable_gpu_sets_flag(self):
        p = minimal_problem()
        p.enable_gpu()
        assert p.config.use_gpu
