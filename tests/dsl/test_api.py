"""Script-style DSL surface (the paper's input-deck flavour)."""

import numpy as np
import pytest

import repro.dsl as finch
from repro.mesh.grid import structured_grid
from repro.util.errors import ConfigError


@pytest.fixture(autouse=True)
def fresh_context():
    finch.finalize()
    yield
    finch.finalize()


class TestLifecycle:
    def test_commands_require_init(self):
        with pytest.raises(ConfigError, match="no problem initialised"):
            finch.domain(2)

    def test_init_returns_problem(self):
        p = finch.init_problem("demo")
        assert finch.current_problem() is p

    def test_finalize_clears(self):
        finch.init_problem("demo")
        finch.finalize()
        with pytest.raises(ConfigError):
            finch.current_problem()


class TestFullDeck:
    def test_quickstart_deck_runs(self):
        finch.init_problem("deck")
        finch.domain(2)
        finch.solver_type(finch.FV)
        finch.time_stepper(finch.EULER_EXPLICIT)
        finch.set_steps(1e-3, 20)
        finch.mesh(structured_grid((5, 5)))
        u = finch.variable("u")
        finch.coefficient("k", 2.0)
        for r in (1, 2, 3, 4):
            finch.boundary(u, r, finch.NEUMANN0)
        finch.initial(u, 1.0)
        finch.conservation_form(u, "-k*u")
        solver = finch.solve(u)
        expected = np.exp(-2.0 * 1e-3 * 20)
        assert solver.solution()[0, 0] == pytest.approx(expected, rel=1e-3)

    def test_generate_without_running(self):
        finch.init_problem("deck")
        finch.domain(1)
        finch.set_steps(1e-3, 5)
        finch.mesh(structured_grid((6,)))
        u = finch.variable("u")
        for r in (1, 2):
            finch.boundary(u, r, finch.NEUMANN0)
        finch.conservation_form(u, "-u")
        solver = finch.generate()
        assert "def step_once" in solver.source
        assert solver.state.step_index == 0

    def test_callback_function_decorator(self):
        finch.init_problem("deck")

        @finch.callback_function
        def myhook(ctx):
            return None

        assert finch.current_problem().entities.kind_of("myhook") == "callback"

    def test_custom_operator_via_api(self):
        finch.init_problem("deck")
        from repro.symbolic.expr import Mul, Num

        finch.custom_operator("half", lambda x: Mul(Num(0.5), x), arity=1)
        assert "half" in finch.current_problem().operators

    def test_use_cuda_alias(self):
        finch.init_problem("deck")
        finch.use_cuda()
        assert finch.current_problem().config.use_gpu

    def test_mesh_accepts_object(self):
        finch.init_problem("deck")
        finch.domain(2)
        m = finch.mesh(structured_grid((3, 3)))
        assert finch.current_problem().mesh is m

    def test_partitioning_command(self):
        finch.init_problem("deck")
        finch.partitioning("cells", 4)
        cfg = finch.current_problem().config
        assert cfg.partition_strategy == "cells"
        assert cfg.nparts == 4
