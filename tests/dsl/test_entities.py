"""Entity declarations and the collision-checked entity table."""

import numpy as np
import pytest

from repro.dsl.entities import (
    CELL,
    NODE,
    VAR_ARRAY,
    VAR_SCALAR,
    CallbackFunction,
    Coefficient,
    EntityTable,
    Index,
    Variable,
)
from repro.util.errors import DSLError


class TestIndex:
    def test_basic(self):
        d = Index("d", 1, 20)
        assert d.size == 20
        assert str(d) == "d"

    def test_empty_range(self):
        with pytest.raises(DSLError):
            Index("d", 2, 1)

    def test_bad_name(self):
        with pytest.raises(DSLError):
            Index("2d", 1, 3)


class TestVariable:
    def test_scalar(self):
        v = Variable("u")
        assert v.ncomp == 1
        assert v.space.ncomp == 1

    def test_array(self):
        d, b = Index("d", 1, 4), Index("b", 1, 3)
        v = Variable("I", VAR_ARRAY, CELL, (d, b))
        assert v.ncomp == 12
        assert v.index_names() == ("d", "b")

    def test_scalar_with_indices_rejected(self):
        d = Index("d", 1, 4)
        with pytest.raises(DSLError):
            Variable("u", VAR_SCALAR, CELL, (d,))

    def test_array_without_indices_rejected(self):
        with pytest.raises(DSLError):
            Variable("u", VAR_ARRAY, CELL, ())

    def test_bad_location(self):
        with pytest.raises(DSLError):
            Variable("u", VAR_SCALAR, "EDGE")


class TestCoefficient:
    def test_scalar_value(self):
        c = Coefficient("k", 2.5)
        assert not c.is_function
        assert float(c.value) == 2.5

    def test_array_value_needs_indices(self):
        with pytest.raises(DSLError):
            Coefficient("v", np.ones(3))

    def test_array_value_with_indices(self):
        b = Index("b", 1, 3)
        c = Coefficient("vg", np.array([1.0, 2.0, 3.0]), VAR_ARRAY, (b,))
        assert c.space.ncomp == 3

    def test_shape_mismatch(self):
        b = Index("b", 1, 3)
        with pytest.raises(DSLError):
            Coefficient("vg", np.ones(4), VAR_ARRAY, (b,))

    def test_function_value(self):
        c = Coefficient("q", lambda x: x[:, 0])
        assert c.is_function


class TestEntityTable:
    def test_kind_of(self):
        ents = EntityTable()
        d = ents.add_index(Index("d", 1, 2))
        ents.add_variable(Variable("I", VAR_ARRAY, CELL, (d,)))
        ents.add_coefficient(Coefficient("k", 1.0))
        ents.add_callback(CallbackFunction("hook", lambda: None))
        assert ents.kind_of("d") == "index"
        assert ents.kind_of("I") == "variable"
        assert ents.kind_of("k") == "coefficient"
        assert ents.kind_of("hook") == "callback"
        assert ents.kind_of("nope") is None

    def test_name_collisions_rejected(self):
        ents = EntityTable()
        ents.add_index(Index("d", 1, 2))
        with pytest.raises(DSLError):
            ents.add_variable(Variable("d"))
        with pytest.raises(DSLError):
            ents.add_coefficient(Coefficient("d", 1.0))

    def test_variable_with_undeclared_index(self):
        ents = EntityTable()
        d = Index("d", 1, 2)  # not added to the table
        with pytest.raises(DSLError):
            ents.add_variable(Variable("I", VAR_ARRAY, CELL, (d,)))

    def test_callback_must_be_callable(self):
        with pytest.raises(DSLError):
            CallbackFunction("bad", 42)
