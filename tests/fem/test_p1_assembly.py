"""P1 element data and operator assembly."""

import numpy as np
import pytest

from repro.fem.assemble import (
    assemble_advection,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    dirichlet_nodes,
    lumped_mass,
)
from repro.fem.p1 import build_p1
from repro.mesh.grid import structured_grid, triangulated_grid
from repro.util.errors import MeshError


@pytest.fixture
def p1_1d():
    return build_p1(structured_grid((8,)))


@pytest.fixture
def p1_2d():
    return build_p1(triangulated_grid((5, 4)))


class TestP1Geometry:
    def test_1d_gradients(self, p1_1d):
        h = 1.0 / 8
        assert np.allclose(p1_1d.volume, h)
        assert np.allclose(p1_1d.grads[:, 0, 0], -1.0 / h)
        assert np.allclose(p1_1d.grads[:, 1, 0], 1.0 / h)

    def test_2d_partition_of_unity_gradients(self, p1_2d):
        """Shape-function gradients of each element sum to zero."""
        s = p1_2d.grads.sum(axis=1)
        assert np.allclose(s, 0.0, atol=1e-12)

    def test_2d_areas(self, p1_2d):
        assert np.isclose(p1_2d.volume.sum(), 1.0)

    def test_linear_exactness_of_gradients(self, p1_2d):
        """grad(sum_i f(x_i) phi_i) equals grad f for linear f."""
        coords = p1_2d.mesh.nodes
        f = 3.0 * coords[:, 0] - 2.0 * coords[:, 1]
        g = np.einsum("eid,ei->ed", p1_2d.grads, f[p1_2d.elements])
        assert np.allclose(g[:, 0], 3.0, atol=1e-12)
        assert np.allclose(g[:, 1], -2.0, atol=1e-12)

    def test_quads_rejected(self):
        with pytest.raises(MeshError, match="simplex"):
            build_p1(structured_grid((3, 3)))

    def test_3d_rejected(self):
        with pytest.raises(MeshError):
            build_p1(structured_grid((2, 2, 2)))


class TestStiffness:
    def test_symmetric(self, p1_2d):
        K = assemble_stiffness(p1_2d)
        assert abs(K - K.T).max() < 1e-14

    def test_constants_in_nullspace(self, p1_2d):
        K = assemble_stiffness(p1_2d)
        ones = np.ones(p1_2d.nnodes)
        assert np.abs(K @ ones).max() < 1e-12

    def test_positive_semidefinite(self, p1_2d):
        K = assemble_stiffness(p1_2d).toarray()
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-12

    def test_energy_of_linear_field(self, p1_2d):
        """u = x: ∫|grad u|^2 = domain area."""
        K = assemble_stiffness(p1_2d)
        u = p1_2d.mesh.nodes[:, 0]
        assert u @ (K @ u) == pytest.approx(1.0, rel=1e-12)

    def test_coefficient_scales(self, p1_2d):
        K1 = assemble_stiffness(p1_2d)
        K3 = assemble_stiffness(p1_2d, 3.0)
        assert abs(K3 - 3 * K1).max() < 1e-12

    def test_1d_matches_finite_differences(self, p1_1d):
        """Interior rows of the 1-D P1 stiffness are the classic
        [-1, 2, -1]/h stencil."""
        K = assemble_stiffness(p1_1d).toarray()
        h = 1.0 / 8
        assert K[4, 3] == pytest.approx(-1 / h)
        assert K[4, 4] == pytest.approx(2 / h)
        assert K[4, 5] == pytest.approx(-1 / h)


class TestMass:
    def test_total_mass_is_domain_measure(self, p1_2d):
        M = assemble_mass(p1_2d)
        ones = np.ones(p1_2d.nnodes)
        assert ones @ (M @ ones) == pytest.approx(1.0, rel=1e-12)

    def test_lumped_equals_row_sums(self, p1_2d):
        M = assemble_mass(p1_2d)
        ml = lumped_mass(p1_2d)
        assert np.allclose(np.asarray(M.sum(axis=1)).ravel(), ml, rtol=1e-12)

    def test_lumped_positive(self, p1_2d):
        assert np.all(lumped_mass(p1_2d) > 0)


class TestAdvectionAndLoad:
    def test_advection_of_linear_field(self, p1_2d):
        """b.grad(x) = b_x: C @ x integrates b_x phi_i (lumped)."""
        C = assemble_advection(p1_2d, np.array([2.0, 0.0]))
        x = p1_2d.mesh.nodes[:, 0]
        ones = np.ones(p1_2d.nnodes)
        # total ∫ b.grad(x) dV = 2 * area
        assert ones @ (C @ x) == pytest.approx(2.0, rel=1e-12)

    def test_load_total(self, p1_2d):
        F = assemble_load(p1_2d, 5.0)
        assert F.sum() == pytest.approx(5.0, rel=1e-12)

    def test_load_function(self, p1_2d):
        F = assemble_load(p1_2d, lambda x: x[:, 0])
        # ∫ x dV over the unit square = 1/2, nodal quadrature is close
        assert F.sum() == pytest.approx(0.5, abs=0.02)


class TestDirichletNodes:
    def test_region_nodes(self, p1_2d):
        left = dirichlet_nodes(p1_2d, [1])
        assert np.allclose(p1_2d.mesh.nodes[left, 0], 0.0)

    def test_union(self, p1_2d):
        both = dirichlet_nodes(p1_2d, [1, 2])
        assert len(both) == 2 * (4 + 1)

    def test_unknown_region(self, p1_2d):
        with pytest.raises(MeshError):
            dirichlet_nodes(p1_2d, [9])
