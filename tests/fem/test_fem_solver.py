"""End-to-end FEM solves through the DSL (the multi-discretisation claim)."""

import numpy as np
import pytest

from repro.dsl.entities import NODE
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid, triangulated_grid
from repro.util.errors import CodegenError, ConfigError


def heat_problem_1d(n=32, D=0.7, t_end=0.02, source=None, dirichlet=(0.0, 0.0)):
    dt = 0.2 * (1.0 / n) ** 2 / D
    p = Problem("fem-heat-1d")
    p.set_domain(1)
    p.set_solver_type("FEM")
    p.set_steps(dt, int(round(t_end / dt)))
    p.set_mesh(structured_grid((n,)))
    p.add_variable("u", location=NODE)
    p.add_coefficient("k", D)
    p.add_boundary("u", 1, BCKind.DIRICHLET, dirichlet[0])
    p.add_boundary("u", 2, BCKind.DIRICHLET, dirichlet[1])
    p.set_initial("u", lambda x: np.sin(np.pi * x[:, 0]))
    expr = "-k*dot(grad(u), grad(v))"
    if source is not None:
        p.add_coefficient("f", source)
        expr += " + f*v"
    p.set_weak_form("u", expr)
    return p


class TestHeat1D:
    def test_sine_decay(self):
        D, t_end = 0.7, 0.02
        p = heat_problem_1d(D=D, t_end=t_end)
        solver = p.solve()
        assert solver.target_name == "fem"
        x = solver.state.mesh.nodes[:, 0]
        exact = np.exp(-D * np.pi**2 * t_end) * np.sin(np.pi * x)
        assert np.abs(solver.solution()[0] - exact).max() < 2e-3

    def test_spatial_convergence_second_order(self):
        D, t_end = 0.7, 0.01
        dt = 0.2 * (1.0 / 96) ** 2 / D
        errs = []
        for n in (8, 16, 32):
            p = heat_problem_1d(n=n, D=D, t_end=t_end)
            p.config.dt = dt
            p.config.nsteps = int(round(t_end / dt))
            solver = p.solve()
            x = solver.state.mesh.nodes[:, 0]
            exact = np.exp(-D * np.pi**2 * t_end) * np.sin(np.pi * x)
            errs.append(np.abs(solver.solution()[0] - exact).max())
        assert np.log2(errs[0] / errs[2]) / 2 > 1.8

    def test_manufactured_steady_state(self):
        """-(k u')' = f with f = k pi^2 sin(pi x): steady u = sin(pi x)."""
        D = 1.0
        p = heat_problem_1d(
            n=24, D=D, t_end=0.6,
            source=lambda x: D * np.pi**2 * np.sin(np.pi * x[:, 0]),
        )
        solver = p.solve()
        x = solver.state.mesh.nodes[:, 0]
        assert np.abs(solver.solution()[0] - np.sin(np.pi * x)).max() < 5e-3


class TestHeat2D:
    def test_steady_linear_ramp_on_triangles(self):
        p = Problem("fem-ramp")
        p.set_domain(2)
        p.set_solver_type("FEM")
        p.set_steps(2e-4, 8000)
        p.set_mesh(triangulated_grid((10, 6)))
        p.add_variable("u", location=NODE)
        p.add_coefficient("k", 1.0)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
        p.add_boundary("u", 2, BCKind.DIRICHLET, 1.0)
        # top/bottom omitted: natural (zero-flux) boundaries
        p.set_initial("u", 0.5)
        p.set_weak_form("u", "-k*dot(grad(u), grad(v))")
        solver = p.solve()
        x = solver.state.mesh.nodes[:, 0]
        assert np.abs(solver.solution()[0] - x).max() < 1e-5

    def test_product_mode_decay(self):
        D, t_end = 1.0, 0.01
        n = 16
        dt = 0.15 * (1.0 / n) ** 2 / D
        p = Problem("fem-mode")
        p.set_domain(2)
        p.set_solver_type("FEM")
        p.set_steps(dt, int(round(t_end / dt)))
        p.set_mesh(triangulated_grid((n, n)))
        p.add_variable("u", location=NODE)
        p.add_coefficient("k", D)
        for r in (1, 2, 3, 4):
            p.add_boundary("u", r, BCKind.DIRICHLET, 0.0)
        p.set_initial(
            "u", lambda c: np.sin(np.pi * c[:, 0]) * np.sin(np.pi * c[:, 1])
        )
        p.set_weak_form("u", "-k*dot(grad(u), grad(v))")
        solver = p.solve()
        c = solver.state.mesh.nodes
        exact = (np.exp(-2 * D * np.pi**2 * t_end)
                 * np.sin(np.pi * c[:, 0]) * np.sin(np.pi * c[:, 1]))
        assert np.abs(solver.solution()[0] - exact).max() < 0.02


class TestNeumannBoundary:
    def test_prescribed_flux_exact_steady_state(self):
        """-(k u')' = 0, u(0) = 0, k u'(1) = g  ->  u = (g/k) x, which P1
        reproduces exactly (the discrete steady state is nodal-exact)."""
        k, g, n = 2.0, 3.0, 16
        p = Problem("fem-neumann")
        p.set_domain(1)
        p.set_solver_type("FEM")
        p.set_steps(2e-4, 30000)
        p.set_mesh(structured_grid((n,)))
        p.add_variable("u", location=NODE)
        p.add_coefficient("k", k)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
        p.add_boundary("u", 2, BCKind.NEUMANN, g)
        p.set_initial("u", 0.0)
        p.set_weak_form("u", "-k*dot(grad(u), grad(v))")
        solver = p.solve()
        x = solver.state.mesh.nodes[:, 0]
        assert np.abs(solver.solution()[0] - (g / k) * x).max() < 1e-10
        assert "boundary load(region=2" in solver.source

    def test_2d_neumann_heating_raises_mean(self):
        p = Problem("fem-neumann-2d")
        p.set_domain(2)
        p.set_solver_type("FEM")
        p.set_steps(1e-4, 200)
        p.set_mesh(triangulated_grid((8, 8)))
        p.add_variable("u", location=NODE)
        p.add_coefficient("k", 1.0)
        p.add_boundary("u", 4, BCKind.NEUMANN, 5.0)  # influx at the top
        p.set_initial("u", 0.0)
        p.set_weak_form("u", "-k*dot(grad(u), grad(v))")
        solver = p.solve()
        u = solver.solution()[0]
        # pure influx with natural sides: the mean grows by g * wall length
        # * t / area = 5 * 1 * t
        t_end = p.config.dt * p.config.nsteps
        ml = solver.operators["lumped_mass"]
        mean = float((u * ml).sum() / ml.sum())
        assert mean == pytest.approx(5.0 * t_end, rel=1e-10)

    def test_fv_rejects_valued_neumann(self):
        from repro.dsl.problem import Problem as P

        p = P("fv-neumann")
        p.set_domain(1)
        p.set_steps(1e-3, 2)
        p.set_mesh(structured_grid((4,)))
        p.add_variable("u")
        p.add_coefficient("k", 1.0)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
        p.add_boundary("u", 2, BCKind.NEUMANN, 1.0)
        p.set_initial("u", 0.0)
        p.set_conservation_form("u", "surface(diffuse(k, u))")
        with pytest.raises(ConfigError, match="FEM"):
            p.generate()


class TestCrossDiscretisation:
    def test_fem_and_fvm_agree_on_heat(self):
        """The multi-discretisation claim: the same physics through the
        FEM and FV paths gives matching fields (compared at cell centroids
        via nodal interpolation)."""
        D, t_end, n = 0.7, 0.02, 32
        dt = 0.2 * (1.0 / n) ** 2 / D
        # FEM (nodal)
        fem = heat_problem_1d(n=n, D=D, t_end=t_end).solve()
        u_nodes = fem.solution()[0]
        u_mid_fem = 0.5 * (u_nodes[:-1] + u_nodes[1:])
        # FVM (cell-centred)
        p = Problem("fv-heat")
        p.set_domain(1)
        p.set_steps(dt, int(round(t_end / dt)))
        p.set_mesh(structured_grid((n,)))
        p.add_variable("u")
        p.add_coefficient("k", D)
        p.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
        p.add_boundary("u", 2, BCKind.DIRICHLET, 0.0)
        p.set_initial("u", lambda x: np.sin(np.pi * x[:, 0]))
        p.set_conservation_form("u", "surface(diffuse(k, u))")
        fvm = p.solve()
        # node ordering of structured_grid(1-D) is ascending in x
        assert np.abs(u_mid_fem - fvm.solution()[0]).max() < 3e-3


class TestGuards:
    def test_fem_requires_weak_form(self):
        p = heat_problem_1d()
        p.equation = None
        p.set_conservation_form("u", "-k*u")
        with pytest.raises(ConfigError, match="weak_form"):
            p.generate()

    def test_fv_rejects_weak_form(self):
        p = heat_problem_1d()
        p.set_solver_type("FV")
        with pytest.raises(ConfigError, match="conservation_form"):
            p.generate()

    def test_rk_rejected(self):
        p = heat_problem_1d()
        p.set_stepper("rk2")
        with pytest.raises(CodegenError, match="forward Euler"):
            p.generate()

    def test_indexed_unknown_rejected(self):
        p = Problem("fem-array")
        p.set_domain(1)
        p.set_solver_type("FEM")
        p.set_steps(1e-3, 1)
        p.set_mesh(structured_grid((4,)))
        d = p.add_index("d", (1, 2))
        from repro.dsl.entities import VAR_ARRAY

        p.add_variable("u", VAR_ARRAY, NODE, index=[d])
        p.set_weak_form("u", "u*v")
        with pytest.raises(ConfigError, match="scalar"):
            p.generate()

    def test_reserved_test_function_name(self):
        p = Problem("fem-v")
        p.set_domain(1)
        p.set_mesh(structured_grid((4,)))
        p.add_variable("u", location=NODE)
        p.add_variable("v")
        from repro.util.errors import DSLError

        with pytest.raises(DSLError, match="reserved"):
            p.set_weak_form("u", "u*v")

    def test_flux_bc_rejected(self):
        p = heat_problem_1d()
        p.boundaries = [b for b in p.boundaries if b.region != 2]
        p.add_boundary("u", 2, BCKind.SYMMETRY,
                       reflection_map=np.array([0]))
        with pytest.raises(CodegenError, match="DIRICHLET/NEUMANN0"):
            p.generate()
