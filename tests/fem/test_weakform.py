"""Weak-form classification (the paper's bilinear/linear groups)."""

import pytest

from repro.dsl.entities import NODE
from repro.dsl.problem import Problem
from repro.fem.weakform import lower_weak_form
from repro.mesh.grid import structured_grid
from repro.util.errors import DSLError


@pytest.fixture
def problem():
    p = Problem("wf")
    p.set_domain(1)
    p.set_mesh(structured_grid((4,)))
    p.add_variable("u", location=NODE)
    p.add_coefficient("k", 2.0)
    p.add_coefficient("c", 0.5)
    p.add_coefficient("f", lambda x: x[:, 0])
    return p


class TestClassification:
    def test_diffusion(self, problem):
        form = lower_weak_form(problem, "u", "-k*dot(grad(u), grad(v))")
        assert len(form.bilinear) == 1
        t = form.bilinear[0]
        assert t.kind == "stiffness"
        assert str(t.coefficient) == "-_k_1" or "k" in str(t.coefficient)

    def test_grad_order_irrelevant(self, problem):
        a = lower_weak_form(problem, "u", "-k*dot(grad(v), grad(u))")
        assert a.bilinear[0].kind == "stiffness"

    def test_reaction(self, problem):
        form = lower_weak_form(problem, "u", "-c*u*v")
        assert form.bilinear[0].kind == "mass"

    def test_load(self, problem):
        form = lower_weak_form(problem, "u", "f*v")
        assert len(form.linear) == 1
        assert form.linear[0].kind == "load"

    def test_advection(self, problem):
        problem.add_coefficient("bx", 1.0)
        form = lower_weak_form(problem, "u", "-dot([bx;bx], grad(u))*v")
        t = form.bilinear[0]
        assert t.kind == "advection"
        assert len(t.velocity) == 2

    def test_full_equation(self, problem):
        form = lower_weak_form(
            problem, "u", "-k*dot(grad(u), grad(v)) - c*u*v + f*v"
        )
        kinds = sorted(t.kind for t in form.bilinear)
        assert kinds == ["mass", "stiffness"]
        assert [t.kind for t in form.linear] == ["load"]

    def test_listing(self, problem):
        form = lower_weak_form(problem, "u", "-k*dot(grad(u), grad(v)) + f*v")
        text = form.listing()
        assert "Bilinear volume:" in text
        assert "Linear volume:" in text
        assert "stiffness" in text and "load" in text


class TestRejections:
    def test_missing_test_function(self, problem):
        with pytest.raises(DSLError, match="test function"):
            lower_weak_form(problem, "u", "-k*u")

    def test_unknown_symbol(self, problem):
        with pytest.raises(DSLError, match="unknown symbol"):
            lower_weak_form(problem, "u", "-qq*u*v")

    def test_unsupported_shape(self, problem):
        with pytest.raises(DSLError, match="unsupported term shape"):
            lower_weak_form(problem, "u", "u*u*v")
