"""The CI ``serve-smoke`` acceptance test.

8 concurrent requests — 4 identical, 4 sharing the same ``repro.cache/1``
signature with a different runtime binding — must trigger exactly ONE
codegen/compile, return bit-identical results matching direct
``Problem.solve()`` calls, and leave a cleanly scrapeable ``/metrics``
endpoint.  When ``REPRO_SERVE_SMOKE_EVENTS`` is set the structured event
log is written there (CI uploads it on failure).
"""

import os
import urllib.request
from contextlib import nullcontext

import numpy as np

from repro.obs.metrics import metrics_run
from repro.tune.cache import cache_scope
from tests.serve.conftest import make_problem


def _total(registry, name):
    counter = registry.counter(name)
    return sum(cell[0] for cell in counter.series().values())


def test_serve_smoke_eight_concurrent_one_compile():
    from repro.serve import serve_session

    events_path = os.environ.get("REPRO_SERVE_SMOKE_EVENTS")
    if events_path:
        from repro.obs.log import events_run

        events_ctx = events_run(events_path)
    else:
        events_ctx = nullcontext()

    with events_ctx, cache_scope() as cache, metrics_run() as metrics:
        with serve_session(workers=2, queue_max=64, port=0) as service:
            client = service.client
            client.hold()
            # 4 identical + 4 identical-signature/different-binding: one
            # compiled artifact serves all 8, two solves answer them
            tickets = [client.submit(make_problem(nsteps=3),
                                     tenant=f"t{i % 4}") for i in range(4)]
            tickets += [client.submit(make_problem(nsteps=5),
                                      tenant=f"t{i % 4}") for i in range(4)]
            client.release()
            results = [t.result(300) for t in tickets]
            doc = client.status()
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{service.http_port}/metrics",
                    timeout=30) as rsp:
                assert rsp.status == 200
                scrape = rsp.read().decode()

        # exactly one compile across all 8 requests
        assert cache.stats.builds == 1
        assert _total(metrics, "codegen_build_total") == 1
        assert _total(metrics, "codegen_compile_total") == 1

        # bit-identical to direct solves of the same problems
        direct3 = make_problem(nsteps=3).solve().solution()
        direct5 = make_problem(nsteps=5).solve().solution()

    group3, group5 = results[:4], results[4:]
    assert all(r is group3[0] for r in group3)
    assert all(r is group5[0] for r in group5)
    assert np.array_equal(group3[0].u, direct3)
    assert np.array_equal(group5[0].u, direct5)
    assert group3[0].cache_key == group5[0].cache_key
    assert group3[0].key != group5[0].key

    assert doc["counters"]["requests"] == 8
    assert doc["counters"]["deduped"] == 6
    assert doc["counters"]["completed"] == 2
    assert doc["counters"]["failed"] == 0

    # the scrape carries the service's own series
    for series in ("serve_requests_total", "serve_dedup_total",
                   "serve_jobs_total", "codegen_build_total"):
        assert series in scrape, f"{series} missing from /metrics"
