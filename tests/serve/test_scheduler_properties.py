"""Hypothesis property tests for the service's scheduling invariants.

Satellite coverage:

(a) dedup'd requests all receive the *same result object* — driven at the
    server layer with a stubbed executor and random arrival orders;
(b) per-tenant running quotas are never exceeded under random arrival /
    dispatch / completion interleavings of the pure ``SchedulerCore``;
(c) priority inversion is bounded — a batch is always taken from the
    highest-priority class holding an eligible job, FIFO within the
    class, and ``should_yield`` fires whenever an eligible higher-class
    job waits (so a high-priority job never sits behind more than the
    single batch item already in flight).
"""

from __future__ import annotations

import asyncio
import os
from functools import lru_cache

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ServiceConfig, SolverService, TenantQuota
from repro.serve.scheduler import Job, SchedulerCore
from repro.serve.schema import PRIORITIES, JobResult

# same CI profile contract as tests/ir/test_fuse_properties.py: pinned,
# derandomized examples so the serve-smoke job is reproducible
settings.register_profile("ci", derandomize=True, max_examples=60)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

TENANTS = ["alice", "bob", "carol"]

arrival = st.tuples(st.sampled_from(TENANTS), st.integers(0, 2))


def _new_core(workers, batch_max, caps):
    quotas = {t: TenantQuota(max_inflight=1000, max_running=caps[t])
              for t in TENANTS}
    return SchedulerCore(n_workers=workers, batch_max=batch_max,
                         quota_lookup=lambda t: quotas[t])


def _check_quotas(core, caps):
    running = core.running_jobs()
    by_tenant: dict[str, int] = {}
    for job in running:
        by_tenant[job.primary_tenant] = by_tenant.get(job.primary_tenant, 0) + 1
    for tenant, n in by_tenant.items():
        assert n <= caps[tenant], \
            f"tenant {tenant} has {n} running jobs (cap {caps[tenant]})"
        assert core.running_for(tenant) == n
    assert len(running) <= len(core.workers)


@given(
    arrivals=st.lists(arrival, min_size=1, max_size=24),
    workers=st.integers(1, 4),
    batch_max=st.integers(1, 4),
    caps=st.fixed_dictionaries({t: st.integers(1, 3) for t in TENANTS}),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_quotas_never_exceeded_under_random_interleavings(
        arrivals, workers, batch_max, caps, data):
    """(b) no interleaving of enqueue / dispatch / complete ever puts a
    tenant over its ``max_running`` cap, and every job still finishes."""
    core = _new_core(workers, batch_max, caps)
    pending = [Job(f"job{i}", None, "cpu", prio, tenant)
               for i, (tenant, prio) in enumerate(arrivals)]
    done = 0
    while pending or core.queued_total() or core.running_jobs():
        idle = core.idle_workers()
        dispatchable = bool(idle) and any(
            core._eligible(j, []) for j in core.queued_jobs())
        ops = []
        if pending:
            ops.append("enqueue")
        if dispatchable:
            ops.append("dispatch")
        if core.running_jobs():
            ops.append("complete")
        op = data.draw(st.sampled_from(ops), label="op") if len(ops) > 1 \
            else ops[0]
        if op == "enqueue":
            core.enqueue(pending.pop(0))
        elif op == "dispatch":
            batch = core.next_batch(idle[0])
            assert batch, "eligible job queued but no batch produced"
            # the worker loop runs batch items one at a time; model that
            # by running the head and requeueing the remainder
            core.mark_running(batch[0], idle[0])
            for job in reversed(batch[1:]):
                core.enqueue(job, front=True)
        else:
            victim = data.draw(st.sampled_from(core.running_jobs()),
                               label="complete")
            core.complete(victim)
            done += 1
        _check_quotas(core, caps)
    assert done == len(arrivals)


@given(
    arrivals=st.lists(arrival, min_size=1, max_size=20),
    batch_max=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_batches_come_from_best_eligible_class_in_fifo_order(
        arrivals, batch_max):
    """(c) ``next_batch`` always serves the highest-priority class with an
    eligible job, preserving arrival order within the class."""
    caps = {t: 2 for t in TENANTS}
    core = _new_core(2, batch_max, caps)
    jobs = [Job(f"job{i}", None, "cpu", prio, tenant)
            for i, (tenant, prio) in enumerate(arrivals)]
    seq = {job.key: i for i, job in enumerate(jobs)}
    for job in jobs:
        core.enqueue(job)
    while core.queued_total():
        queued = core.queued_jobs()
        eligible = [j for j in queued if core._eligible(j, [])]
        worker = core.idle_workers()[0]
        batch = core.next_batch(worker)
        if not eligible:
            assert batch == []
            break
        best = min(j.priority for j in eligible)
        assert batch, "an eligible job exists but no batch was produced"
        assert all(j.priority == best for j in batch), \
            "batch drawn from a lower class while a better one was eligible"
        assert len(batch) <= batch_max
        order = [seq[j.key] for j in batch]
        assert order == sorted(order), "FIFO broken within priority class"
        # run the batch to completion so the loop terminates
        for job in batch:
            core.mark_running(job, worker)
            core.complete(job)


@given(
    low_prio=st.integers(1, 2),
    n_low=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_priority_inversion_bounded_by_should_yield(low_prio, n_low):
    """(c) the moment an eligible high-priority job is queued, every
    lower class reports ``should_yield`` — so a worker mid-batch requeues
    its remaining low-priority items instead of starting them."""
    caps = {t: 2 for t in TENANTS}
    core = _new_core(1, 4, caps)
    worker = core.workers[0]
    lows = [Job(f"low{i}", None, "cpu", low_prio, "bob")
            for i in range(n_low)]
    for job in lows:
        core.enqueue(job)
    batch = core.next_batch(worker)
    core.mark_running(batch[0], worker)
    assert not core.should_yield(low_prio)
    high = Job("high0", None, "cpu", PRIORITIES["high"], "alice")
    core.enqueue(high)
    # an eligible high job waits: every lower class must now yield
    for lower in range(high.priority + 1, 3):
        assert core.should_yield(lower)
    core.complete(batch[0])
    nxt = core.next_batch(worker)
    assert nxt and nxt[0] is high, \
        "high-priority job waited behind a second low-priority batch"


@lru_cache(maxsize=4)
def _problem(nsteps: int):
    from tests.serve.conftest import make_problem

    return make_problem(nsteps=nsteps)


@given(
    requests=st.lists(
        st.tuples(st.integers(0, 1),            # which problem (job key)
                  st.sampled_from(TENANTS),
                  st.sampled_from(["high", "normal", "batch"])),
        min_size=2, max_size=10),
)
@settings(max_examples=10, deadline=None)
def test_deduped_requests_share_one_result_object(requests):
    """(a) whatever the arrival order, tenants and priorities, requests
    with the same job key resolve to the *same* ``JobResult`` object."""

    async def scenario():
        service = SolverService(ServiceConfig(
            workers=2, queue_max=1000, max_inflight=1000, max_running=4))
        # stub the executor-side solve: scheduling/dedup under test, not
        # the numerics (covered by the integration tests)
        service._execute_job = lambda job: JobResult(
            key=job.key, cache_key=job.cache_key, target=job.target,
            u=np.zeros(2), time=0.0, steps=1, digest=job.key, wall_s=0.0)
        await service.start()
        await service.hold_workers()
        futures, variants = [], []
        for variant, tenant, priority in requests:
            futures.append(await service.submit(
                _problem(nsteps=3 + variant), tenant=tenant,
                priority=priority))
            variants.append(variant)
        await service.release_workers()
        results = await asyncio.gather(*futures)
        await service.stop()
        return variants, results, dict(service.counters)

    variants, results, counters = asyncio.run(scenario())
    first: dict[int, JobResult] = {}
    for variant, result in zip(variants, results):
        assert result is first.setdefault(variant, result), \
            "coalesced requests received distinct result objects"
    # held burst: every submission past the first per job key coalesced
    assert counters["deduped"] == len(variants) - len(first)
    assert counters["completed"] == len(first)
