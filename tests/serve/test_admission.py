"""Admission control units: typed RPR-coded rejections and accounting."""

import pytest

from repro.serve import AdmissionController, TenantQuota
from repro.serve.schema import normalize_priority
from repro.util.errors import (
    AdmissionError,
    ConfigError,
    JobFailedError,
    QuotaExceededError,
    ReproError,
    ServeError,
)
from repro.verify.codes import CATALOGUE


def test_queue_full_raises_backpressure_error():
    ctl = AdmissionController(queue_max=2)
    ctl.admit("alice", queued_total=1, tenant_inflight=0)
    with pytest.raises(AdmissionError) as exc_info:
        ctl.admit("alice", queued_total=2, tenant_inflight=0)
    assert exc_info.value.code == "RPR900"
    assert exc_info.value.tenant == "alice"
    assert "backoff" in str(exc_info.value)


def test_tenant_over_quota_raises_typed_quota_error():
    ctl = AdmissionController(
        queue_max=64, quotas={"bob": TenantQuota(max_inflight=1)})
    ctl.admit("bob", queued_total=0, tenant_inflight=0)
    with pytest.raises(QuotaExceededError) as exc_info:
        ctl.admit("bob", queued_total=0, tenant_inflight=1)
    assert exc_info.value.code == "RPR901"
    assert exc_info.value.tenant == "bob"
    # other tenants are unaffected by bob's cap (default quota applies)
    ctl.admit("carol", queued_total=0, tenant_inflight=1)


def test_rejections_are_counted_per_code_and_tenant():
    ctl = AdmissionController(
        queue_max=1, quotas={"bob": TenantQuota(max_inflight=1)})
    for _ in range(3):
        with pytest.raises(AdmissionError):
            ctl.admit("alice", queued_total=1, tenant_inflight=0)
    with pytest.raises(QuotaExceededError):
        ctl.admit("bob", queued_total=0, tenant_inflight=5)
    assert ctl.rejected_total() == 4
    assert ctl.rejected_total("RPR900") == 3
    assert ctl.rejected_total("RPR901") == 1
    doc = ctl.as_dict()
    assert doc["rejected_by_code"] == {"RPR900": 3, "RPR901": 1}
    assert doc["recent_rejections"][-1]["tenant"] == "bob"
    assert doc["recent_rejections"][-1]["code"] == "RPR901"


def test_serve_error_hierarchy_and_default_codes():
    # quota errors are admission errors are serve errors are repro errors,
    # so one `except ServeError` catches every service-side rejection
    assert issubclass(QuotaExceededError, AdmissionError)
    assert issubclass(AdmissionError, ServeError)
    assert issubclass(JobFailedError, ServeError)
    assert issubclass(ServeError, ReproError)
    assert ServeError("x").code == "RPR903"
    assert AdmissionError("x").code == "RPR900"
    assert QuotaExceededError("x").code == "RPR901"
    assert JobFailedError("x").code == "RPR902"


def test_serve_codes_registered_in_catalogue():
    for code in ("RPR900", "RPR901", "RPR902", "RPR903"):
        assert code in CATALOGUE, f"{code} missing from diagnostics catalogue"
        assert CATALOGUE[code].layer == "serve"
        assert CATALOGUE[code].severity == "error"


def test_priority_normalization():
    assert normalize_priority("high") == 0
    assert normalize_priority("normal") == 1
    assert normalize_priority("batch") == 2
    assert normalize_priority(2) == 2
    with pytest.raises(ConfigError):
        normalize_priority("urgent")
    with pytest.raises(ConfigError):
        normalize_priority(7)
