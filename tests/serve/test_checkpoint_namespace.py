"""Regression: concurrent solves sharing one checkpoint dir must not
clobber each other's ``ckpt_step*.npz`` files (names carry only step and
rank).  The fix is the opt-in ``checkpoint_namespace`` extra; the solver
service always namespaces by job key.
"""

import numpy as np

from pathlib import Path

from repro.tune.cache import cache_scope
from tests.serve.conftest import make_problem


def _ckpts(directory):
    return sorted(p.name for p in directory.glob("ckpt_step*.npz"))


def test_unnamespaced_paths_unchanged(tmp_path):
    """Back-compat: without the namespace extra, checkpoints land exactly
    where the golden tests expect them."""
    with cache_scope():
        problem = make_problem(nsteps=3)
        problem.extra["checkpoint_every"] = 1
        problem.extra["checkpoint_dir"] = str(tmp_path)
        problem.solve()
    assert (tmp_path / "ckpt_step000001.npz").exists()
    assert len(_ckpts(tmp_path)) == 3


def test_auto_namespace_isolates_distinct_problems(tmp_path):
    """Two different problems pointed at the same --checkpoint-dir write
    into distinct signature-derived subdirectories."""
    with cache_scope():
        dirs = []
        for nx in (8, 6):
            problem = make_problem(nsteps=3, nx=nx)
            problem.extra["checkpoint_every"] = 1
            problem.extra["checkpoint_dir"] = str(tmp_path)
            problem.extra["checkpoint_namespace"] = "auto"
            solver = problem.generate()
            dirs.append(solver.state.checkpoint_dir)
            solver.run()
    assert dirs[0] != dirs[1]
    for d in dirs:
        sub = Path(d)
        assert sub.parent == tmp_path
        assert len(_ckpts(sub)) == 3
    # nothing leaked into the shared root
    assert _ckpts(tmp_path) == []


def test_explicit_namespace_used_verbatim_and_restorable(tmp_path):
    with cache_scope():
        problem = make_problem(nsteps=4)
        problem.extra["checkpoint_every"] = 1
        problem.extra["checkpoint_dir"] = str(tmp_path)
        problem.extra["checkpoint_namespace"] = "jobA"
        full = problem.solve().solution().copy()
        ckpt = tmp_path / "jobA" / "ckpt_step000002.npz"
        assert ckpt.exists()

        # resume from the namespaced file: bit-identical to the full run
        resumed = make_problem(nsteps=4)
        resumed.extra["restore_from"] = str(ckpt)
        solver = resumed.generate()
        solver.run(4 - solver.state.step_index)
        assert np.array_equal(solver.solution(), full)


def test_service_namespaces_checkpoints_by_job_key(tmp_path):
    """Two jobs served concurrently from one checkpoint root never share
    a directory: each writes under ``<root>/<job_key[:16]>/``."""
    from repro.serve import ServiceConfig, serve_session

    with cache_scope():
        config = ServiceConfig(workers=2, checkpoint_every=1,
                               checkpoint_dir=str(tmp_path))
        with serve_session(config) as service:
            client = service.client
            client.hold()
            t1 = client.submit(make_problem(nsteps=3, slow_s=0.01),
                               tenant="alice")
            t2 = client.submit(make_problem(nsteps=4, slow_s=0.01),
                               tenant="bob")
            client.release()
            r1, r2 = t1.result(120), t2.result(120)
    assert r1.key != r2.key
    for result, steps in ((r1, 3), (r2, 4)):
        sub = tmp_path / result.key[:16]
        assert len(_ckpts(sub)) == steps
    # the shared root itself stays clean
    assert _ckpts(tmp_path) == []
