"""The ``bte serve`` command (demo mode + status-document output)."""

import json

from repro.cli import main
from repro.tune.cache import cache_scope


def test_serve_demo_prints_dedup_and_warm_rates(capsys, tmp_path):
    status = tmp_path / "serve.json"
    with cache_scope():
        assert main(["serve", "--demo", "--tenants", "2", "--requests", "2",
                     "--nx", "6", "--steps", "3",
                     "--status-json", str(status)]) == 0
    out = capsys.readouterr().out
    assert "dedup rate" in out
    assert "warm-hit rate" in out
    assert "jobs solved" in out

    doc = json.loads(status.read_text())
    assert doc["schema"] == "repro.serve/1"
    assert doc["counters"]["requests"] == 4
    # 2 tenants x [steps, steps] -> one distinct problem repeated 4x,
    # plus zero failures or rejections in the demo
    assert doc["counters"]["failed"] == 0
    assert doc["counters"]["rejected"] == 0
    assert doc["counters"]["completed"] >= 1
    assert doc["counters"]["deduped"] + doc["counters"]["results_reused"] >= 1
    assert doc["cache"]["builds"] >= 1
    assert doc["tenants"]["tenant0"]["hashtree"]["root"]


def test_serve_quiet_idle_exits_cleanly(capsys):
    with cache_scope():
        assert main(["serve", "-q", "--for-seconds", "0"]) == 0
