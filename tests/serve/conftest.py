"""Shared helpers for the solver-service tests."""

from __future__ import annotations

import time

import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario


def make_problem(nsteps: int = 3, nx: int = 8, slow_s: float = 0.0):
    """The reduced hot-spot problem; ``slow_s`` adds a per-step sleep via a
    post-step callback (signature-neutral) so tests get a preemption
    window without a bigger mesh."""
    scenario = hotspot_scenario(nx=nx, ny=nx, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=nsteps)
    problem, _ = build_bte_problem(scenario)
    if slow_s:
        problem.add_post_step(lambda state: time.sleep(slow_s),
                              name="slow_step")
    return problem


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05):
    """Poll ``predicate`` until truthy; returns its value (fails the test
    on timeout)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    pytest.fail(f"condition not reached within {timeout_s}s")


@pytest.fixture
def problem_factory():
    return make_problem
