"""Integration tests for the solver service against real BTE solves.

These drive the acceptance criteria end to end: N identical concurrent
requests -> one compile, bit-identical results equal to a direct
``Problem.solve()``; preempted jobs resume bit-identically; rejections
are typed and surfaced in the status document.
"""

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.metrics import metrics_run
from repro.serve import ServiceConfig, SolverService, TenantQuota, serve_session
from repro.tune.cache import cache_scope
from repro.util.errors import (
    AdmissionError,
    QuotaExceededError,
    ServeError,
)
from tests.serve.conftest import make_problem, wait_until


def _total(registry, name):
    counter = registry.counter(name)
    return sum(cell[0] for cell in counter.series().values())


def test_eight_identical_requests_one_build_bit_identical():
    """The tentpole acceptance: 8 concurrent identical requests from 4
    tenants -> exactly one codegen/compile, one solve, one shared result
    object, bit-identical to a direct solve."""
    with cache_scope() as cache, metrics_run() as metrics:
        direct = make_problem().solve().solution().copy()
        builds_before = cache.stats.builds
        with serve_session(workers=2, queue_max=64) as service:
            client = service.client
            client.hold()  # stage the burst so every request overlaps
            tickets = [client.submit(make_problem(),
                                     tenant=f"tenant{i % 4}")
                       for i in range(8)]
            client.release()
            results = [t.result(120) for t in tickets]
            doc = client.status()

    assert all(r is results[0] for r in results), \
        "dedup'd requests must share one result object"
    assert np.array_equal(results[0].u, direct)
    # the direct solve built the artifact once; the service reused it and
    # never compiled again
    assert cache.stats.builds == builds_before == 1
    assert _total(metrics, "codegen_build_total") == 1
    assert _total(metrics, "codegen_compile_total") == 1
    assert doc["counters"]["requests"] == 8
    assert doc["counters"]["deduped"] == 7
    assert doc["counters"]["completed"] == 1
    assert len(doc["tenants"]) == 4


def test_result_reuse_and_tenant_hashtree():
    with cache_scope():
        with serve_session(workers=1) as service:
            client = service.client
            r1 = client.solve(make_problem(), tenant="alice")
            root1 = client.status()["tenants"]["alice"]["hashtree"]["root"]
            r2 = client.solve(make_problem(), tenant="alice")
            root2 = client.status()["tenants"]["alice"]["hashtree"]["root"]
            r3 = client.solve(make_problem(nsteps=5), tenant="alice")
            root3 = client.status()["tenants"]["alice"]["hashtree"]["root"]
            doc = client.status()
    # the repeat was served from the completed-result cache: same object
    assert r2 is r1
    assert doc["counters"]["results_reused"] == 1
    assert doc["counters"]["completed"] == 2
    # hashtree root is stable under reuse, changes when the answer set does
    assert root2 == root1
    assert root3 != root2
    assert r3.key != r1.key
    assert r3.cache_key == r1.cache_key  # same artifact, different binding


def test_quota_rejection_is_typed_and_in_status_doc():
    config = ServiceConfig(workers=1, queue_max=64,
                           quotas={"greedy": TenantQuota(max_inflight=2)})
    with cache_scope():
        with serve_session(config) as service:
            client = service.client
            client.hold()
            t1 = client.submit(make_problem(nsteps=3), tenant="greedy")
            t2 = client.submit(make_problem(nsteps=4), tenant="greedy")
            with pytest.raises(QuotaExceededError) as exc_info:
                client.submit(make_problem(nsteps=5),
                              tenant="greedy").result(30)
            # other tenants are isolated from greedy's cap
            t3 = client.submit(make_problem(nsteps=3), tenant="modest")
            client.release()
            for ticket in (t1, t2, t3):
                ticket.result(120)
            doc = client.status()
    assert exc_info.value.code == "RPR901"
    assert doc["admission"]["rejected_by_code"] == {"RPR901": 1}
    assert doc["tenants"]["greedy"]["rejected"] == 1
    assert doc["counters"]["rejected"] == 1


def test_queue_backpressure_rejects_with_rpr900():
    with cache_scope():
        with serve_session(workers=1, queue_max=1) as service:
            client = service.client
            client.hold()
            t1 = client.submit(make_problem(nsteps=3), tenant="a")
            with pytest.raises(AdmissionError) as exc_info:
                client.submit(make_problem(nsteps=4), tenant="b").result(30)
            # an identical request coalesces: no queue entry, no reject
            t2 = client.submit(make_problem(nsteps=3), tenant="c")
            client.release()
            r1, r2 = t1.result(120), t2.result(120)
            doc = client.status()
    assert exc_info.value.code == "RPR900"
    assert not isinstance(exc_info.value, QuotaExceededError)
    assert r2 is r1
    assert doc["admission"]["rejected_by_code"] == {"RPR900": 1}


def test_preempted_job_resumes_bit_identically():
    """Differential acceptance: checkpoint-preempt mid-solve, resume on a
    free worker, and the answer matches an uninterrupted direct solve."""
    nsteps = 8
    with cache_scope():
        direct = make_problem(nsteps=nsteps).solve().solution().copy()
        with serve_session(workers=2, checkpoint_every=0) as service:
            client = service.client
            ticket = client.submit(make_problem(nsteps=nsteps, slow_s=0.05),
                                   tenant="alice")
            preempted = wait_until(lambda: client.preempt(), timeout_s=10)
            result = ticket.result(120)
            doc = client.status()
    assert preempted == result.key
    assert result.preemptions >= 1
    assert result.steps == nsteps
    assert doc["counters"]["preemptions"] >= 1
    assert doc["counters"]["resumes"] >= 1
    assert np.array_equal(result.u, direct)


def test_worker_failure_retries_elsewhere_bit_identically():
    nsteps = 8
    with cache_scope():
        direct = make_problem(nsteps=nsteps).solve().solution().copy()
        with serve_session(workers=2) as service:
            client = service.client
            ticket = client.submit(make_problem(nsteps=nsteps, slow_s=0.05),
                                   tenant="alice")

            def running_worker():
                for worker in client.status()["workers"]:
                    if worker["job"] is not None:
                        return worker["id"] + 1  # truthy even for id 0
                return None

            wid = wait_until(running_worker, timeout_s=10) - 1
            client.fail_worker(wid)
            result = ticket.result(120)
            doc = client.status()
    assert result.attempts == 2
    assert doc["service"]["workers_alive"] == 1
    assert doc["counters"]["worker_failures"] == 1
    assert np.array_equal(result.u, direct)


def test_http_endpoints_scrape_cleanly():
    with cache_scope():
        with serve_session(workers=1, port=0) as service:
            client = service.client
            client.solve(make_problem(), tenant="alice")
            base = f"http://127.0.0.1:{service.http_port}"
            with urllib.request.urlopen(base + "/healthz", timeout=10) as rsp:
                assert rsp.status == 200
                assert rsp.read() == b"ok\n"
            with urllib.request.urlopen(base + "/metrics", timeout=10) as rsp:
                assert rsp.status == 200
                text = rsp.read().decode()
            with urllib.request.urlopen(base + "/status", timeout=10) as rsp:
                assert rsp.status == 200
                doc = json.loads(rsp.read().decode())
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(base + "/nope", timeout=10)
    assert "serve_requests_total" in text
    assert "serve_jobs_total" in text
    assert doc["schema"] == "repro.serve/1"
    assert doc["counters"]["completed"] == 1
    assert exc_info.value.code == 404


def test_stop_fails_pending_jobs_with_rpr903():
    with cache_scope():
        service = SolverService(ServiceConfig(workers=1))
        service.start_in_thread()
        client = service.client
        client.hold()
        ticket = client.submit(make_problem(), tenant="alice")
        service.stop_in_thread()
        with pytest.raises(ServeError) as exc_info:
            ticket.result(30)
        assert exc_info.value.code == "RPR903"
        # submitting to a stopped service is a typed error too
        with pytest.raises(ServeError):
            asyncio.run(service.submit(make_problem(), tenant="alice"))
