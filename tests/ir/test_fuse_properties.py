"""Property-based fusion equivalence: fused programs are bit-identical.

Hypothesis generates random well-typed expression trees over a fixed
symbol pool (the :mod:`tests.symbolic.test_parser_fuzz` idiom), compiles
each through :func:`repro.ir.fuse.compile_expr`, and executes the fused
program on both VM engines.  For every tree and every environment —
scalars, arrays, NaN/Inf payloads — the fused result must match
``evaluate()`` **bit for bit** (``tobytes()`` equality, not ``allclose``),
and when one side raises, the other must raise the same exception type.

The trees deliberately include the edge cases the fusion pass special-
cases: ``Pow`` with constant/dynamic/−1 exponents, ``Cmp`` embedded in
``Conditional``, registered ``Call`` functions, and pure-constant
subtrees (exercising the compile-time folder, which must fold with
exactly the runtime's semantics).
"""

from __future__ import annotations

import os
import warnings

import numpy as np
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.ir.fuse import compile_expr
from repro.codegen.vectorvm import VectorVM
from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import (
    Add,
    Call,
    Cmp,
    Conditional,
    Expr,
    Indexed,
    Mul,
    Num,
    Pow,
    Sym,
)

# CI runs with a pinned derandomised profile so golden failures reproduce
settings.register_profile("ci", derandomize=True, max_examples=60)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

LEAVES = (Sym("a"), Sym("b"), Sym("c"), Indexed("u", ("i",)))

_FUNCS_1 = ("abs", "sqrt", "exp", "cos", "tanh")
_FUNCS_2 = ("min", "max")


def leaf() -> st.SearchStrategy[Expr]:
    return st.one_of(
        st.sampled_from(LEAVES),
        st.integers(min_value=-4, max_value=4).map(Num),
        st.floats(
            min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False
        ).map(Num),
    )


def trees() -> st.SearchStrategy[Expr]:
    def compound(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        pair = st.tuples(children, children)
        return st.one_of(
            pair.map(lambda ab: Add(*ab)),
            st.tuples(children, children, children).map(lambda abc: Add(*abc)),
            pair.map(lambda ab: Mul(*ab)),
            # the pass's three power paths: recip, pow_const, dynamic pow
            children.map(lambda b: Pow(b, Num(-1))),
            st.tuples(children, st.sampled_from([-3, -2, 2, 3, 0.5])).map(
                lambda be: Pow(be[0], Num(be[1]))
            ),
            pair.map(lambda be: Pow(*be)),
            st.tuples(
                st.sampled_from((">", "<", ">=", "<=", "==", "!=")),
                children, children, children, children,
            ).map(lambda t: Conditional(Cmp(t[0], t[1], t[2]), t[3], t[4])),
            st.tuples(st.sampled_from(_FUNCS_1), children).map(
                lambda fa: Call(fa[0], fa[1])
            ),
            st.tuples(st.sampled_from(_FUNCS_2), children, children).map(
                lambda fab: Call(fab[0], fab[1], fab[2])
            ),
        )

    return st.recursive(leaf(), compound, max_leaves=14)


def scalar_envs() -> st.SearchStrategy[dict]:
    value = st.one_of(
        st.floats(min_value=-8.0, max_value=8.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from([0.0, -0.0, 1.0, -1.0]),
    )
    return st.fixed_dictionaries({str(s): value for s in LEAVES})


def array_envs(n: int = 7, special: bool = False) -> st.SearchStrategy[dict]:
    element = st.floats(
        min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False
    )
    if special:
        element = st.one_of(
            element,
            st.sampled_from([float("nan"), float("inf"), float("-inf"),
                             0.0, -0.0]),
        )
    array = st.lists(element, min_size=n, max_size=n).map(
        lambda vs: np.asarray(vs, dtype=np.float64)
    )
    return st.fixed_dictionaries({str(s): array for s in LEAVES})


def _outcome(fn):
    """Run ``fn``; normalise to (bit-pattern, None) or (None, error type)."""
    with warnings.catch_warnings(), np.errstate(all="ignore"):
        warnings.simplefilter("ignore")
        try:
            value = fn()
        except Exception as exc:  # noqa: BLE001 - compared by type below
            return None, type(exc)
    arr = np.asarray(value)
    return (arr.shape, arr.dtype.str, arr.tobytes()), None


def assert_fused_matches(expr: Expr, env: dict) -> None:
    program = compile_expr(expr, leaf_key=str)
    vm = VectorVM(program)
    slots = tuple(env[key] for key in program.slots)

    expected, expected_err = _outcome(lambda: evaluate(expr, env))
    for engine in (vm.run, vm.run_interpreted):
        got, got_err = _outcome(lambda: engine(*slots))
        assert got_err is expected_err, (
            f"{engine.__name__}: raised {got_err} vs evaluate's "
            f"{expected_err} for {expr}"
        )
        assert got == expected, (
            f"{engine.__name__}: bit mismatch for {expr}"
        )

    # repeat runs reuse VM scratch; the result must not drift
    if expected_err is None:
        again, again_err = _outcome(lambda: vm.run(*slots))
        assert again_err is None and again == expected, (
            f"scratch reuse changed the result for {expr}"
        )


@seed(20260808)
@given(expr=trees(), env=scalar_envs())
@settings(max_examples=150, deadline=None)
def test_fused_matches_evaluate_scalar(expr, env):
    assert_fused_matches(expr, env)


@seed(20260808)
@given(expr=trees(), env=array_envs())
@settings(max_examples=150, deadline=None)
def test_fused_matches_evaluate_array(expr, env):
    assert_fused_matches(expr, env)


@seed(20260808)
@given(expr=trees(), env=array_envs(special=True))
@settings(max_examples=150, deadline=None)
def test_fused_propagates_nan_inf(expr, env):
    """NaN payloads, signed zeros and infinities must propagate identically."""
    assert_fused_matches(expr, env)


@seed(20260808)
@given(expr=trees(), scalar=scalar_envs(), arrays=array_envs())
@settings(max_examples=75, deadline=None)
def test_fused_mixed_scalar_array_env(expr, scalar, arrays):
    """Half the leaves scalar, half arrays: broadcasting must match too."""
    env = dict(arrays)
    for i, s in enumerate(LEAVES):
        if i % 2 == 0:
            env[str(s)] = scalar[str(s)]
    assert_fused_matches(expr, env)


@seed(20260808)
@given(expr=trees(), env=array_envs())
@settings(max_examples=20, deadline=None)
def test_fused_large_arrays_inplace_path(expr, env):
    """Arrays >= the in-place threshold: the compiled ``out=`` scratch path
    engages (it is size-gated) and must still be bit-identical, including
    across repeated runs that overwrite adopted scratch.  Small generated
    arrays are tiled up past the threshold to keep strategy inputs small."""
    from repro.codegen.vectorvm import _MIN_INPLACE

    reps = _MIN_INPLACE // 7 + 1
    env = {key: np.tile(value, reps) for key, value in env.items()}
    assert_fused_matches(expr, env)


@seed(20260808)
@given(env=array_envs())
@settings(max_examples=30, deadline=None)
def test_conditional_array_condition_uses_where(env):
    a, b = Sym("a"), Sym("b")
    expr = Conditional(Cmp(">", a, b), Mul(a, Num(2)), Mul(b, Num(-1)))
    assert_fused_matches(expr, env)


@seed(20260808)
@given(env=scalar_envs())
@settings(max_examples=30, deadline=None)
def test_conditional_scalar_condition_branches(env):
    a, b = Sym("a"), Sym("b")
    expr = Conditional(Cmp("<=", a, b), Add(a, b), Add(a, Mul(b, Num(-1))))
    assert_fused_matches(expr, env)
