"""Unit tests for the fusion pass and the vector VM.

The property suite (:mod:`tests.ir.test_fuse_properties`) holds fused
execution bit-identical to ``evaluate()``; these tests pin down the
compiler's *structural* promises — register recycling, CSE via
hash-consing, compile-time constant folding with runtime semantics, the
int/float constant distinction, mode validation — and the VM's error
paths and specialisation cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.vectorvm import _CODE_CACHE, VectorVM, install_vms
from repro.ir.fuse import (
    MAX_REGISTERS,
    FusedProgram,
    UnfusableError,
    compile_expr,
    compile_terms,
    fusion_mode,
    fusion_summary,
    node_leaf_key,
)
from repro.symbolic.evaluate import evaluate
from repro.symbolic.expr import Add, Call, Cmp, Conditional, Mul, Num, Pow, Sym
from repro.util.errors import CodegenError

A, B, C = Sym("a"), Sym("b"), Sym("c")


def run_all(expr, env):
    program = compile_expr(expr, leaf_key=str)
    vm = VectorVM(program)
    slots = tuple(env[k] for k in program.slots)
    return program, vm.run(*slots), vm.run_interpreted(*slots)


# --------------------------------------------------------------- compiler
def test_register_recycling_bounds_the_file():
    # a deep left chain: a + a + ... needs only 2 registers however long
    expr = A
    for _ in range(40):
        expr = Add(expr, A)
    program = compile_expr(expr, leaf_key=str)
    assert program.n_registers == 2
    assert program.stats["temporaries_eliminated"] > 0


def test_register_pressure_overflow_is_unfusable():
    # a full binary tree of depth n needs ~n live registers; force overflow.
    # (Add/Mul auto-flatten to n-ary left-folds, so build the tree from
    # binary calls, which cannot flatten.)
    def tree(depth, i=0):
        if depth == 0:
            return Sym(f"s{i}")
        return Call("max", tree(depth - 1, 2 * i + 1), tree(depth - 1, 2 * i + 2))

    with pytest.raises(UnfusableError):
        compile_expr(tree(8), leaf_key=str, max_registers=4)
    # the default file is wide enough for the same tree
    compile_expr(tree(8), leaf_key=str, max_registers=MAX_REGISTERS)


def test_cse_shares_hash_consed_subtrees():
    # max(a,b) appears three times but is computed once (hash-consed memo)
    common = Call("max", A, B)
    expr = Add(Mul(common, common), common)
    program = compile_expr(expr, leaf_key=str)
    assert program.stats["cse_hits"] >= 2
    calls = [i for i in program.instructions if i.op == "call"]
    assert len(calls) == 1


def test_constant_folding_matches_runtime_fold_order():
    expr = Mul(Add(Num(1), Num(2), Num(3)), A)
    program = compile_expr(expr, leaf_key=str)
    assert program.stats["constants_folded"] == 1
    consts = [i.imm for i in program.instructions if i.op == "const"]
    assert consts == [6]


def test_constant_folding_leaves_runtime_errors_in_place():
    # 0 ** -1 must raise at run time, not at compile time
    expr = Add(Pow(Num(0), Num(-1)), A)
    program = compile_expr(expr, leaf_key=str)
    vm = VectorVM(program)
    with pytest.raises(ZeroDivisionError):
        vm.run(*(1.0 for _ in program.slots))


def test_int_and_float_constants_never_alias():
    # a**2 (int) and a**2.0 (float) can differ bitwise for array bases;
    # the constant pool must keep them distinct
    expr = Add(Pow(A, Num(2)), Mul(Pow(A, Num(2.0)), B))
    program = compile_expr(expr, leaf_key=str)
    exps = [i.imm for i in program.instructions if i.op == "pow_const"]
    assert 2 in exps and 2.0 in exps
    assert any(type(e) is int for e in exps)


def test_reciprocal_lowering():
    program = compile_expr(Pow(A, Num(-1)), leaf_key=str)
    assert [i.op for i in program.instructions] == ["load", "recip"]
    vm = VectorVM(program)
    assert vm.run(4.0) == 0.25


def test_empty_statement_is_unfusable():
    with pytest.raises(UnfusableError):
        compile_terms([], leaf_key=str)


def test_unregistered_function_is_unfusable():
    with pytest.raises(UnfusableError):
        compile_expr(Call("no_such_fn", A), leaf_key=str)


def test_terms_sum_left_to_right_like_emission():
    env = {"a": 0.1, "b": 0.2, "c": 0.3}
    program = compile_terms([A, B, C], leaf_key=str)
    vm = VectorVM(program)
    got = vm.run(*(env[k] for k in program.slots))
    assert got == (0.1 + 0.2) + 0.3


def test_node_leaf_key_disambiguates_distinct_nodes():
    key = node_leaf_key()
    k1, k2 = key(A), key(B)
    assert k1 != k2
    assert key(A) == k1  # stable per node


def test_fusion_mode_validation():
    assert fusion_mode(None) == "off"
    assert fusion_mode({}) == "off"
    assert fusion_mode({"fusion": "AUTO"}) == "auto"
    assert fusion_mode({"fusion": "on"}) == "on"
    with pytest.raises(CodegenError):
        fusion_mode({"fusion": "fast"})


def test_fusion_summary_shape():
    program = compile_expr(Add(A, B), leaf_key=str)
    info = fusion_summary("auto", {"surface": program})
    assert info["mode"] == "auto"
    stats = info["programs"]["surface"]
    for key in ("n_instructions", "n_registers", "n_slots",
                "temporaries_eliminated", "cse_hits", "constants_folded"):
        assert key in stats


def test_disassembly_is_stable_and_roundtrips_stats():
    expr = Add(Mul(A, B), Pow(C, Num(-1)))
    program = compile_expr(expr, leaf_key=str)
    text = program.disassemble()
    assert text.startswith("; fused vector program (repro.fuse/1)")
    assert f"ret r{program.out_reg}" in text
    for i, key in enumerate(program.slots):
        assert f"slot s{i} = {key}" in text
    # deterministic: recompiling the same tree gives the same text
    assert compile_expr(expr, leaf_key=str).disassemble() == text


# --------------------------------------------------------------------- VM
def test_vm_rejects_wrong_slot_count():
    program = compile_expr(Add(A, B), leaf_key=str)
    vm = VectorVM(program)
    with pytest.raises(CodegenError):
        vm.run(1.0)
    with pytest.raises(CodegenError):
        vm.run_interpreted(1.0, 2.0, 3.0)


def test_vm_rejects_unregistered_call_at_bind():
    program = FusedProgram(
        slots=("a",),
        instructions=(
            # hand-built program calling a function absent from the registry
            *compile_expr(A, leaf_key=str).instructions,
        ),
        n_registers=1,
        out_reg=0,
    )
    bogus = FusedProgram(
        slots=program.slots,
        instructions=program.instructions[:1] + (
            type(program.instructions[0])("call", 0, (0,), "missing_fn"),
        ),
        n_registers=1,
        out_reg=0,
    )
    with pytest.raises(CodegenError):
        VectorVM(bogus)


def test_vm_functions_override_snapshot():
    program = compile_expr(Call("abs", A), leaf_key=str)
    vm = VectorVM(program, functions={"abs": lambda x: x * 10})
    assert vm.run(-3.0) == -30.0  # override wins over np.abs


def test_specialisation_cache_reuses_compiled_code():
    expr = Add(Mul(A, B), C)
    vm1 = VectorVM(compile_expr(expr, leaf_key=str))
    before = len(_CODE_CACHE)
    vm2 = VectorVM(compile_expr(expr, leaf_key=str))
    assert len(_CODE_CACHE) == before  # same source, no recompile
    assert vm1.source == vm2.source
    assert vm1.run(1.0, 2.0, 3.0) == vm2.run(1.0, 2.0, 3.0) == 5.0


def test_engines_agree_on_scratch_reuse_across_shapes():
    # same VM run on different shapes in sequence: scratch from the first
    # shape must not leak into the second
    expr = Add(Mul(A, B), B)
    program = compile_expr(expr, leaf_key=str)
    vm = VectorVM(program)
    big = np.linspace(0.0, 1.0, 5000)
    small = np.arange(3, dtype=np.float64)
    for env in ({"a": big, "b": big * 2}, {"a": small, "b": small},
                {"a": big, "b": 2.0}, {"a": 0.5, "b": small}):
        slots = tuple(env[k] for k in program.slots)
        expected = evaluate(expr, env)
        got_fast = np.copy(vm.run(*slots))
        got_interp = np.copy(vm.run_interpreted(*slots))
        np.testing.assert_array_equal(got_fast, expected)
        np.testing.assert_array_equal(got_interp, expected)


def test_conditional_compiles_to_where():
    expr = Conditional(Cmp(">", A, Num(0)), A, Mul(A, Num(-1)))
    program = compile_expr(expr, leaf_key=str)
    ops = [i.op for i in program.instructions]
    assert "cmp" in ops and "where" in ops
    vm = VectorVM(program)
    arr = np.array([-2.0, 3.0, -0.5])
    np.testing.assert_array_equal(vm.run(arr), np.abs(arr))


def test_install_vms_binds_per_program():
    env: dict = {}
    programs = {
        "surface": compile_expr(Add(A, B), leaf_key=str),
        "volume": compile_expr(Mul(A, B), leaf_key=str),
    }
    install_vms(env, programs)
    assert set(env) == {"VM_SURFACE", "VM_VOLUME"}
    assert env["VM_SURFACE"].run(2.0, 3.0) == 5.0
    assert env["VM_VOLUME"].run(2.0, 3.0) == 6.0
    install_vms(env, None)  # no programs: no-op
