"""Frozen-format tests: the printed pipeline stages are pinned verbatim.

The substring checks elsewhere allow drift; these freeze the *exact*
canonical strings for the paper's Section II example so any formatting or
ordering change to the printer/simplifier is a conscious decision.
"""

from repro.ir.lowering import euler_form, expand, lower_conservation_form
from repro.symbolic.parser import parse
from repro.symbolic.simplify import simplify

SOURCE = "-k*u - surface(upwind(b, u))"

EXPANDED = (
    "-TIMEDERIVATIVE*_u_1"
    "-_k_1*_u_1"
    "-SURFACE*conditional(_b_1*NORMAL_1 > 0, "
    "_b_1*NORMAL_1*CELL1_u_1, _b_1*NORMAL_1*CELL2_u_1)"
)

LHS_VOLUME = "-_u_1"
RHS_VOLUME = ["_u_1", "-_k_1*_u_1*dt"]
RHS_SURFACE = (
    "-dt*conditional(_b_1*NORMAL_1 > 0, "
    "_b_1*NORMAL_1*CELL1_u_1, _b_1*NORMAL_1*CELL2_u_1)"
)
VOLUME_TERM = "-_k_1*_u_1"
SURFACE_TERM = (
    "-conditional(_b_1*NORMAL_1 > 0, "
    "_b_1*NORMAL_1*CELL1_u_1, _b_1*NORMAL_1*CELL2_u_1)"
)


def test_expanded_representation_exact(scalar_entities):
    ents, u = scalar_entities
    assert str(simplify(expand(parse(SOURCE), u, ents))) == EXPANDED


def test_classified_groups_exact(scalar_entities):
    ents, u = scalar_entities
    _, form = lower_conservation_form(SOURCE, u, ents)
    assert [str(t) for t in form.lhs_volume] == [LHS_VOLUME]
    assert sorted(str(t) for t in form.rhs_volume) == sorted(RHS_VOLUME)
    assert [str(t) for t in form.rhs_surface] == [RHS_SURFACE]
    assert [str(t) for t in form.volume_terms] == [VOLUME_TERM]
    assert [str(t) for t in form.surface_terms] == [SURFACE_TERM]


def test_stage_strings_are_reproducible(scalar_entities):
    ents, u = scalar_entities
    a = str(simplify(euler_form(expand(parse(SOURCE), u, ents), u)))
    b = str(simplify(euler_form(expand(parse(SOURCE), u, ents), u)))
    assert a == b
