"""DOT export of the IR graph."""

import pytest

from repro.bte.problem import build_bte_problem
from repro.ir.build import build_ir
from repro.ir.dot import to_dot
from repro.ir.lowering import lower_conservation_form


@pytest.fixture
def bte_ir(tiny_scenario):
    problem, _ = build_bte_problem(tiny_scenario)
    _, form = lower_conservation_form(
        problem.equation.source, problem.unknown, problem.entities, problem.operators
    )
    return build_ir(problem, form, flavor="gpu")


def test_dot_is_valid_digraph(bte_ir):
    dot = to_dot(bte_ir)
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    # balanced braces and one edge per child relationship
    assert dot.count("{") == dot.count("}")
    assert "->" in dot


def test_dot_marks_node_kinds(bte_ir):
    dot = to_dot(bte_ir)
    assert "box3d" in dot  # kernel launch
    assert "parallelogram" in dot  # transfers
    assert "component" in dot  # CPU callback

def test_dot_escapes_quotes():
    from repro.ir.nodes import Comment

    dot = to_dot(Comment(text='say "hello"'))
    assert '\\"hello\\"' in dot


def test_dot_node_count_matches_tree(bte_ir):
    def count(node):
        return 1 + sum(count(c) for c in node.children())

    dot = to_dot(bte_ir)
    n_nodes = sum(1 for ln in dot.splitlines() if "[label=" in ln)
    assert n_nodes == count(bte_ir)
