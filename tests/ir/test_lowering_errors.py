"""Lowering must reject malformed equations with clear errors."""

import pytest

from repro.dsl.entities import Coefficient, EntityTable, Index, Variable, VAR_ARRAY, CELL
from repro.ir.lowering import expand, lower_conservation_form
from repro.symbolic.parser import parse
from repro.util.errors import DSLError


class TestEntityResolution:
    def test_unknown_symbol(self, scalar_entities):
        ents, u = scalar_entities
        with pytest.raises(DSLError, match="unknown symbol"):
            expand(parse("-q*u"), u, ents)

    def test_unknown_function(self, scalar_entities):
        ents, u = scalar_entities
        with pytest.raises(DSLError, match="neither a registered"):
            expand(parse("mystery(u)"), u, ents)

    def test_indexed_entity_referenced_bare(self, bte_entities):
        ents, I = bte_entities
        with pytest.raises(DSLError, match="must be referenced as"):
            expand(parse("-I"), I, ents)

    def test_wrong_index_count(self, bte_entities):
        ents, I = bte_entities
        with pytest.raises(DSLError, match="expected 2 indices"):
            expand(parse("-I[d]"), I, ents)

    def test_wrong_index_name(self, bte_entities):
        ents, I = bte_entities
        with pytest.raises(DSLError, match="does not match declared"):
            expand(parse("-I[b,d]"), I, ents)

    def test_unknown_indexed_base(self, bte_entities):
        ents, I = bte_entities
        with pytest.raises(DSLError, match="unknown indexed entity"):
            expand(parse("-Q[d]"), I, ents)

    def test_callback_referenced_not_called(self):
        ents = EntityTable()
        u = ents.add_variable(Variable("u"))
        ents.add_callback.__self__  # noqa: B018 - quieten linters about unused
        from repro.dsl.entities import CallbackFunction

        ents.add_callback(CallbackFunction("hook", lambda: None))
        with pytest.raises(DSLError, match="must be called"):
            expand(parse("-hook*u"), u, ents)

    def test_nested_surface_rejected(self, scalar_entities):
        ents, u = scalar_entities
        with pytest.raises(DSLError, match="nested surface"):
            expand(parse("surface(surface(u))"), u, ents)


class TestClassificationGuards:
    def test_equation_without_unknown_time_term_impossible(self, scalar_entities):
        # the time derivative is attached automatically, so every lowered
        # equation has exactly one; this asserts the well-formed path
        ents, u = scalar_entities
        _, form = lower_conservation_form("-k*u", u, ents)
        assert len(form.lhs_volume) == 1

    def test_surface_unknown_without_reconstruction_fails_at_emit(self, scalar_entities):
        # lowering itself allows it; the emitter rejects it (covered in
        # codegen tests); here: the classified surface term keeps raw u
        ents, u = scalar_entities
        _, form = lower_conservation_form("-surface(u*b)", u, ents)
        assert len(form.surface_terms) == 1
