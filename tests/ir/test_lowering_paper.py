"""The lowering pipeline must reproduce the paper's Section II listings."""

import pytest

from repro.ir.lowering import (
    classify,
    expand,
    lower_conservation_form,
    render_stage_listing,
)
from repro.symbolic.parser import parse
from repro.symbolic.simplify import simplify


class TestScalarExample:
    """conservationForm(u, "-k*u - surface(upwind(b, u))")."""

    SOURCE = "-k*u - surface(upwind(b, u))"

    def test_expanded_representation(self, scalar_entities):
        ents, u = scalar_entities
        expanded = simplify(expand(parse(self.SOURCE), u, ents))
        text = str(expanded)
        # the paper's expanded symbolic representation, term by term
        assert text.startswith("-TIMEDERIVATIVE*_u_1")
        assert "-_k_1*_u_1" in text
        assert "SURFACE*conditional(" in text
        assert "_b_1*NORMAL_1" in text
        assert "CELL1_u_1" in text and "CELL2_u_1" in text

    def test_classified_groups(self, scalar_entities):
        ents, u = scalar_entities
        expanded, form = lower_conservation_form(self.SOURCE, u, ents)
        # LHS volume: -_u_1
        assert [str(t) for t in form.lhs_volume] == ["-_u_1"]
        # RHS volume: _u_1 - dt*_k_1*_u_1 (u0 carried by Euler + source)
        rhs_vol = sorted(str(t) for t in form.rhs_volume)
        assert "_u_1" in rhs_vol
        assert any("dt" in t and "_k_1" in t for t in rhs_vol)
        # RHS surface: -dt*conditional(...)
        assert len(form.rhs_surface) == 1
        s = str(form.rhs_surface[0])
        assert s.startswith("-") and "dt" in s and "conditional(" in s
        assert "SURFACE" not in s  # marker stripped in the classified group

    def test_semidiscrete_terms(self, scalar_entities):
        ents, u = scalar_entities
        _, form = lower_conservation_form(self.SOURCE, u, ents)
        assert [str(t) for t in form.volume_terms] == ["-_k_1*_u_1"]
        assert len(form.surface_terms) == 1
        assert "dt" not in str(form.surface_terms[0])

    def test_stage_listing_renders(self, scalar_entities):
        ents, u = scalar_entities
        expanded, form = lower_conservation_form(self.SOURCE, u, ents)
        listing = render_stage_listing(expanded, form, u)
        assert "LHS volume:" in listing
        assert "RHS volume:" in listing
        assert "RHS surface:" in listing
        assert "_u_1 = _u_1" in listing  # the Euler update line carries u0


class TestBTEExample:
    SOURCE = (
        "(Io[b] - I[d,b]) / beta[b] - "
        "surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
    )

    def test_expanded(self, bte_entities):
        ents, I = bte_entities
        expanded = simplify(expand(parse(self.SOURCE), I, ents))
        text = str(expanded)
        assert text.startswith("-TIMEDERIVATIVE*I[d,b]")
        assert "NORMAL_1" in text and "NORMAL_2" in text
        assert "CELL1_I[d,b]" in text and "CELL2_I[d,b]" in text

    def test_classified(self, bte_entities):
        ents, I = bte_entities
        _, form = lower_conservation_form(self.SOURCE, I, ents)
        assert [str(t) for t in form.lhs_volume] == ["-I[d,b]"]
        vols = [str(t) for t in form.volume_terms]
        assert any("Io[b]" in t for t in vols)
        assert any(t.startswith("-I[d,b]") for t in vols)
        assert len(form.surface_terms) == 1
        assert "vg[b]" in str(form.surface_terms[0])

    def test_volume_terms_have_no_face_values(self, bte_entities):
        ents, I = bte_entities
        _, form = lower_conservation_form(self.SOURCE, I, ents)
        for t in form.volume_terms:
            assert "CELL1" not in str(t) and "CELL2" not in str(t)

    def test_no_callbacks_detected(self, bte_entities):
        ents, I = bte_entities
        _, form = lower_conservation_form(self.SOURCE, I, ents)
        assert form.callbacks_used == []
