"""IR construction for the three generation flavours."""

import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.ir.build import build_ir
from repro.ir.lowering import lower_conservation_form
from repro.ir.nodes import (
    AssemblyLoops,
    CallbackCall,
    ComputeGhosts,
    DeviceSync,
    DeviceTransfer,
    GlobalReduction,
    HaloExchange,
    IRProgram,
    KernelLaunch,
    print_ir,
)


@pytest.fixture
def bte_problem_and_form(tiny_scenario):
    problem, _ = build_bte_problem(tiny_scenario)
    _, form = lower_conservation_form(
        problem.equation.source, problem.unknown, problem.entities, problem.operators
    )
    return problem, form


def nodes_of_type(root, cls):
    out = []

    def walk(n):
        if isinstance(n, cls):
            out.append(n)
        for c in n.children():
            walk(c)

    walk(root)
    return out


class TestCPUFlavour:
    def test_structure(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        ir = build_ir(problem, form, flavor="cpu")
        assert isinstance(ir, IRProgram)
        loops = nodes_of_type(ir, AssemblyLoops)
        assert len(loops) == 1
        assert loops[0].order == ["cells"]
        assert nodes_of_type(ir, ComputeGhosts)
        assert not nodes_of_type(ir, KernelLaunch)
        assert not nodes_of_type(ir, HaloExchange)

    def test_post_step_callback_present(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        ir = build_ir(problem, form, flavor="cpu")
        calls = nodes_of_type(ir, CallbackCall)
        assert any(c.name == "temperature_update" for c in calls)

    def test_assembly_order_respected(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        problem.set_assembly_loops(["b", "cells", "d"])
        ir = build_ir(problem, form, flavor="cpu")
        assert nodes_of_type(ir, AssemblyLoops)[0].order == ["b", "cells", "d"]


class TestDistributedFlavour:
    def test_cell_partition_has_halo(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        problem.set_partitioning("cells", 4)
        ir = build_ir(problem, form, flavor="distributed")
        assert nodes_of_type(ir, HaloExchange)
        assert not nodes_of_type(ir, GlobalReduction)

    def test_band_partition_has_reduction_not_halo(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        problem.set_partitioning("bands", 3, index="b")
        ir = build_ir(problem, form, flavor="distributed")
        assert not nodes_of_type(ir, HaloExchange)
        assert nodes_of_type(ir, GlobalReduction)


class TestGPUFlavour:
    def test_kernel_launch_and_transfers(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        ir = build_ir(problem, form, flavor="gpu")
        launches = nodes_of_type(ir, KernelLaunch)
        assert len(launches) == 1
        assert launches[0].asynchronous
        assert nodes_of_type(ir, DeviceSync)
        transfers = nodes_of_type(ir, DeviceTransfer)
        directions = {t.direction for t in transfers}
        assert directions == {"d2h", "h2d"}

    def test_post_step_mutations_go_back_to_device(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        ir = build_ir(problem, form, flavor="gpu")
        h2d = [t for t in nodes_of_type(ir, DeviceTransfer) if t.direction == "h2d"]
        arrays = set(sum((t.arrays for t in h2d), []))
        assert {"Io", "beta"} <= arrays


class TestPrinting:
    def test_print_ir_is_indented_text(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        text = print_ir(build_ir(problem, form, flavor="gpu"))
        assert "program" in text
        assert "launch I_interior_step [async]" in text
        assert "for step = 1:" in text

    def test_unknown_flavour_rejected(self, bte_problem_and_form):
        problem, form = bte_problem_and_form
        from repro.util.errors import CodegenError

        with pytest.raises(CodegenError):
            build_ir(problem, form, flavor="tpu")
