"""Golden fused-program fixtures for two representative kernels.

The fusion pass must be deterministic and stable: the same physics must
compile to the same bytecode, instruction for instruction, register for
register.  These tests disassemble the fused programs of the paper's
hotspot problem — the interior advection kernel (``surface``) and the
BTE scattering/relaxation term (``volume``) — and compare against
committed ``.fuseasm`` fixtures (the stable text format defined by
:meth:`repro.ir.fuse.FusedProgram.disassemble`).

A diff here means the compiler's output changed.  If the change is
intentional (better allocation, new folding), regenerate the fixtures::

    PYTHONPATH=src python tests/ir/test_fuse_golden.py --regen
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

DATA = Path(__file__).parent / "data"

GOLDENS = {
    "surface": DATA / "hotspot_interior.fuseasm",
    "volume": DATA / "bte_scattering.fuseasm",
}


def hotspot_programs():
    from repro.bte.problem import build_bte_problem, hotspot_scenario
    from repro.codegen import make_target

    scenario = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=2)
    problem, _ = build_bte_problem(scenario)
    problem.extra["fusion"] = "on"
    artifact = make_target("cpu").build_artifact(problem)
    return artifact.static_env["FUSED_PROGRAMS"]


@pytest.fixture(scope="module")
def programs():
    return hotspot_programs()


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_disassembly_matches_golden(programs, name):
    assert name in programs, f"hotspot problem no longer fuses {name!r}"
    got = programs[name].disassemble()
    expected = GOLDENS[name].read_text()
    assert got == expected, (
        f"fused {name} program drifted from {GOLDENS[name].name}; "
        "if intentional, regenerate with "
        "`python tests/ir/test_fuse_golden.py --regen`\n"
        f"--- expected ---\n{expected}\n--- got ---\n{got}"
    )


def test_goldens_are_wellformed():
    for name, path in GOLDENS.items():
        text = path.read_text()
        assert text.startswith("; fused vector program (repro.fuse/1)"), name
        assert text.rstrip().splitlines()[-1].startswith("ret r"), name


def test_fixture_set_matches_fused_programs(programs):
    # every golden has a live program; new fused statements in the hotspot
    # problem should gain fixtures (or this inventory updated) on purpose
    assert set(GOLDENS) <= set(programs)


if __name__ == "__main__" and "--regen" in sys.argv:
    for name, path in GOLDENS.items():
        path.write_text(hotspot_programs()[name].disassemble())
        print(f"regenerated {path}")
