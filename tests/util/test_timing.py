"""Clocks and timers."""

import pytest

from repro.util.timing import Timer, TimerRegistry, VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now() == 2.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_only_moves_forward(self):
        c = VirtualClock(5.0)
        c.advance_to(3.0)
        assert c.now() == 5.0
        c.advance_to(7.0)
        assert c.now() == 7.0

    def test_reset(self):
        c = VirtualClock(9.0)
        c.reset()
        assert c.now() == 0.0


class TestTimerRegistry:
    def test_records_named_timers(self):
        reg = TimerRegistry()
        with reg.time("solve"):
            pass
        with reg.time("solve"):
            pass
        assert reg.stats["solve"].count == 2
        assert reg.total("solve") >= 0.0

    def test_fractions_sum_to_one(self):
        reg = TimerRegistry(clock=VirtualClock())
        reg.record("a", 3.0)
        reg.record("b", 1.0)
        fr = reg.fractions()
        assert fr["a"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert TimerRegistry().fractions() == {}

    def test_total_of_unknown_timer_is_zero(self):
        assert TimerRegistry().total("nothing") == 0.0

    def test_stats_minmax_mean(self):
        reg = TimerRegistry()
        reg.record("x", 1.0)
        reg.record("x", 3.0)
        s = reg.stats["x"]
        assert s.min == 1.0 and s.max == 3.0 and s.mean == 2.0

    def test_report_renders(self):
        reg = TimerRegistry()
        reg.record("solve", 0.5)
        assert "solve" in reg.report()

    def test_reset(self):
        reg = TimerRegistry()
        reg.record("x", 1.0)
        reg.reset()
        assert reg.stats == {}

    def test_timer_exposes_elapsed(self):
        reg = TimerRegistry()
        with reg.time("t") as t:
            pass
        assert t.elapsed >= 0.0

    def test_wall_clock_monotonic(self):
        c = WallClock()
        a = c.now()
        b = c.now()
        assert b >= a

    def test_stats_as_dict_is_json_safe(self):
        import json

        from repro.util.timing import TimerStats

        s = TimerStats("empty")
        d = s.as_dict()
        assert d["min"] == 0.0  # not inf: the timer never fired
        assert d["count"] == 0
        json.dumps(d)

    def test_registry_as_dict_sorted(self):
        reg = TimerRegistry()
        reg.record("b", 1.0)
        reg.record("a", 2.0)
        d = reg.as_dict()
        assert list(d) == ["a", "b"]
        assert d["a"]["total"] == pytest.approx(2.0)
        assert d["a"]["min"] == pytest.approx(2.0)
