"""Reservoir sampling, percentiles, and TimerStats' p50/p95."""

import pytest

from repro.util.stats import RESERVOIR_SIZE, Reservoir, percentile
from repro.util.timing import TimerRegistry


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_sample(self):
        assert percentile([3.0], 50.0) == 3.0
        assert percentile([3.0], 95.0) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_extremes(self):
        xs = [float(i) for i in range(11)]
        assert percentile(xs, 0.0) == 0.0
        assert percentile(xs, 100.0) == 10.0


class TestReservoir:
    def test_exact_below_capacity(self):
        r = Reservoir()
        for i in range(100):
            r.add(float(i))
        assert r.percentile(50.0) == pytest.approx(49.5)

    def test_bounded_memory_above_capacity(self):
        r = Reservoir()
        for i in range(RESERVOIR_SIZE * 8):
            r.add(float(i))
        assert len(r.samples) <= RESERVOIR_SIZE
        # decimated stream still spans the distribution
        n = RESERVOIR_SIZE * 8
        assert r.percentile(50.0) == pytest.approx(n / 2, rel=0.1)
        assert r.percentile(95.0) == pytest.approx(0.95 * n, rel=0.1)


class TestTimerPercentiles:
    def test_p50_p95_in_as_dict(self):
        timers = TimerRegistry()
        for i in range(1, 21):
            timers.record("solve", i * 1e-3)
        stats = timers.stats["solve"]
        assert stats.p50 == pytest.approx(10.5e-3, rel=1e-6)
        assert stats.p95 <= stats.max
        assert stats.p50 <= stats.p95
        d = stats.as_dict()
        assert d["p50"] == stats.p50
        assert d["p95"] == stats.p95

    def test_empty_timer_percentiles_are_zero(self):
        from repro.util.timing import TimerStats

        stats = TimerStats("never")
        assert stats.p50 == 0.0
        assert stats.p95 == 0.0
