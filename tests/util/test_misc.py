"""Misc helpers and the error hierarchy."""

import numpy as np
import pytest

from repro.util.errors import (
    CodegenError,
    ConfigError,
    DSLError,
    MeshError,
    ReproError,
    SolverError,
)
from repro.util.logging import get_logger, set_verbosity
from repro.util.misc import check_finite, human_bytes, human_time, ordered_unique, pairwise


class TestOrderedUnique:
    def test_preserves_first_seen_order(self):
        assert ordered_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_empty(self):
        assert ordered_unique([]) == []

    def test_strings(self):
        assert ordered_unique("abcab") == ["a", "b", "c"]


class TestPairwise:
    def test_pairs(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]

    def test_short_sequences(self):
        assert list(pairwise([1])) == []
        assert list(pairwise([])) == []


class TestHumanFormatting:
    @pytest.mark.parametrize(
        "n,expect",
        [(12, "12 B"), (3.2e3, "3.20 kB"), (3.2e9, "3.20 GB"), (1.5e13, "15.00 TB")],
    )
    def test_bytes(self, n, expect):
        assert human_bytes(n) == expect

    @pytest.mark.parametrize(
        "t,fragment",
        [(5e-9, "ns"), (5e-6, "us"), (5e-3, "ms"), (5.0, "s"), (300.0, "min"), (9000.0, "h")],
    )
    def test_time(self, t, fragment):
        assert fragment in human_time(t)


class TestCheckFinite:
    def test_passes_finite(self):
        arr = np.ones((2, 3))
        assert check_finite("x", arr) is arr

    def test_reports_nan_location(self):
        arr = np.zeros((2, 3))
        arr[1, 2] = np.nan
        with pytest.raises(SolverError, match=r"'u' at index \(1, 2\)"):
            check_finite("u", arr)

    def test_reports_inf(self):
        with pytest.raises(SolverError):
            check_finite("x", np.array([np.inf]))


class TestErrors:
    @pytest.mark.parametrize(
        "cls", [DSLError, CodegenError, MeshError, SolverError, ConfigError]
    )
    def test_all_subclass_root(self, cls):
        assert issubclass(cls, ReproError)
        with pytest.raises(ReproError):
            raise cls("boom")


class TestLogging:
    def test_namespaced_logger(self):
        assert get_logger("codegen").name == "repro.codegen"
        assert get_logger("repro.mesh").name == "repro.mesh"

    def test_set_verbosity_accepts_names(self):
        set_verbosity("DEBUG")
        import logging

        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)
