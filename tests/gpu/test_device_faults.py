"""Typed device faults: genuine OOM, injected OOM/kernel faults, residency."""

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.gpu.kernel import Kernel
from repro.gpu.spec import A6000, LAPTOP_GPU
from repro.runtime.faults import fault_run
from repro.runtime.resilience import get_resilience_log
from repro.util.errors import (
    CodegenError,
    DeviceOOMError,
    DeviceResidencyError,
    KernelFaultError,
)


def noop_kernel():
    def body(x):
        x[...] = 1.0

    return Kernel("noop", body, flops_per_thread=1, bytes_per_thread=8)


class TestTypedOOM:
    def test_over_allocation_raises_typed_oom(self):
        dev = Device(LAPTOP_GPU)  # 4 GB
        with pytest.raises(DeviceOOMError, match="out of memory"):
            dev.alloc("big", np.zeros(int(5e9 // 8)))

    def test_typed_oom_is_still_a_codegen_error(self):
        # callers that catch the historical CodegenError keep working
        assert issubclass(DeviceOOMError, CodegenError)
        assert issubclass(KernelFaultError, CodegenError)
        assert issubclass(DeviceResidencyError, CodegenError)


class TestResidencyGuard:
    def test_d2h_of_host_dirty_buffer_raises(self):
        dev = Device(A6000)
        dev.alloc("x", np.arange(4.0))
        dev.mark_host_dirty("x")
        with pytest.raises(DeviceResidencyError, match="x"):
            dev.d2h("x")

    def test_h2d_restores_residency(self):
        dev = Device(A6000)
        dev.alloc("x", np.arange(4.0))
        dev.mark_host_dirty("x")
        dev.h2d("x", np.full(4, 7.0))
        arr, _ = dev.d2h("x")
        assert np.allclose(arr, 7.0)

    def test_unknown_buffer_still_a_codegen_error(self):
        dev = Device(A6000)
        with pytest.raises(CodegenError):
            dev.mark_host_dirty("ghost")


class TestInjectedDeviceFaults:
    def test_injected_alloc_oom(self):
        with fault_run("oom:device=gpu0,op=alloc,at=1"):
            dev = Device(A6000, name="gpu0")
            with pytest.raises(DeviceOOMError, match="injected"):
                dev.alloc("x", np.zeros(8))
            assert get_resilience_log().injected == {"oom": 1}

    def test_injected_h2d_oom(self):
        with fault_run("oom:device=gpu0,op=h2d,at=1"):
            dev = Device(A6000, name="gpu0")
            dev.alloc("x", np.zeros(8))  # op filter: alloc is untouched
            with pytest.raises(DeviceOOMError):
                dev.h2d("x", np.ones(8))

    def test_injected_kernel_fault_on_launch(self):
        with fault_run("kernel:device=gpu0,op=launch,at=1"):
            dev = Device(A6000, name="gpu0")
            dev.alloc("x", np.zeros(64))
            with pytest.raises(KernelFaultError, match="noop"):
                dev.launch(noop_kernel(), 64, dev.buffers["x"].array)

    def test_device_name_substring_match(self):
        with fault_run("oom:device=gpu1,op=alloc,at=1"):
            dev0 = Device(A6000, name="gpu0:NVIDIA RTX A6000")
            dev1 = Device(A6000, name="gpu1:NVIDIA RTX A6000")
            dev0.alloc("x", np.zeros(8))  # other device: unaffected
            with pytest.raises(DeviceOOMError):
                dev1.alloc("x", np.zeros(8))

    def test_no_injection_outside_fault_run(self):
        dev = Device(A6000, name="gpu0")
        dev.alloc("x", np.zeros(8))
        dev.h2d("x", np.ones(8))
        dev.launch(noop_kernel(), 64, np.zeros(64))
