"""Profiler aggregation: per-kernel filtering, table, transfer accounting."""

import pytest

from repro.gpu.kernel import Kernel, model_launch
from repro.gpu.profiler import Profiler
from repro.gpu.spec import A6000


def _launch(prof, name, n_threads=1_000_000):
    kernel = Kernel(name, lambda: None, flops_per_thread=100.0,
                    bytes_per_thread=48.0)
    rec = model_launch(A6000, kernel, n_threads)
    prof.record_launch(rec)
    return rec


class TestReportFiltering:
    def test_kernel_filter_selects_matching_launches(self):
        prof = Profiler(A6000)
        _launch(prof, "interior")
        _launch(prof, "interior")
        _launch(prof, "reduce", n_threads=10_000)
        assert prof.report().n_launches == 3
        assert prof.report(kernel="interior").n_launches == 2
        assert prof.report(kernel="reduce").n_launches == 1

    def test_unknown_kernel_yields_zero_metrics(self):
        prof = Profiler(A6000)
        _launch(prof, "interior")
        rep = prof.report(kernel="nope")
        assert rep.n_launches == 0
        assert rep.busy_time == 0.0
        assert rep.sm_utilization == 0.0
        assert rep.flop_fraction_of_peak == 0.0

    def test_filtered_totals_sum_launches(self):
        prof = Profiler(A6000)
        a = _launch(prof, "interior")
        b = _launch(prof, "interior")
        rep = prof.report(kernel="interior")
        assert rep.total_flops == pytest.approx(a.total_flops + b.total_flops)
        assert rep.busy_time == pytest.approx(a.exec_time + b.exec_time)


class TestReportTable:
    def test_table_lines_and_alignment(self):
        prof = Profiler(A6000)
        _launch(prof, "interior")
        lines = prof.report().table().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("SM utilization")
        assert "% of peak" in lines[2]
        # all separators aligned at the same column
        assert len({ln.index("|") for ln in lines}) == 1

    def test_fractions_capped_at_100_percent(self):
        prof = Profiler(A6000)
        _launch(prof, "interior")
        rep = prof.report()
        assert rep.sm_utilization <= 1.0
        assert rep.memory_throughput_fraction <= 1.0
        assert rep.flop_fraction_of_peak <= 1.0


class TestTransfers:
    def test_transfer_summary_per_direction(self):
        prof = Profiler(A6000)
        prof.record_transfer(1000, 1e-5, kind="h2d")
        prof.record_transfer(2000, 2e-5, kind="h2d")
        prof.record_transfer(500, 5e-6, kind="d2h")
        s = prof.transfer_summary()
        assert s["count"] == 3
        assert s["total_bytes"] == 3500
        assert s["h2d"]["count"] == 2 and s["h2d"]["bytes"] == 3000
        assert s["d2h"]["count"] == 1 and s["d2h"]["time_s"] == pytest.approx(5e-6)

    def test_reset_clears_everything(self):
        prof = Profiler(A6000)
        _launch(prof, "interior")
        prof.record_transfer(1000, 1e-5)
        prof.reset()
        assert prof.report().n_launches == 0
        assert prof.transfer_summary()["count"] == 0
        assert prof.transfer_bytes == 0.0

class TestKernelRows:
    def test_rows_group_by_kernel_in_first_launch_order(self):
        prof = Profiler(A6000)
        a1 = _launch(prof, "interior")
        _launch(prof, "reduce", n_threads=10_000)
        a2 = _launch(prof, "interior")
        rows = prof.kernel_rows()
        assert [r["name"] for r in rows] == ["interior", "reduce"]
        row = rows[0]
        assert row["count"] == 2
        assert row["self_s"] == pytest.approx(a1.duration + a2.duration)
        assert row["exec_s"] == pytest.approx(a1.exec_time + a2.exec_time)
        assert row["launch_latency_s"] == pytest.approx(
            row["self_s"] - row["exec_s"])
        assert row["mean_s"] == pytest.approx(row["self_s"] / 2)

    def test_roofline_attribution_columns(self):
        prof = Profiler(A6000)
        rec = _launch(prof, "interior")
        (row,) = prof.kernel_rows()
        assert row["intensity_flop_per_byte"] == pytest.approx(
            rec.total_flops / rec.total_bytes)
        assert row["ridge_flop_per_byte"] == pytest.approx(
            A6000.fp64_peak_flops() / A6000.dram_bw_bytes())
        # 100/48 flop/byte on an fp64-weak part: compute-bound
        assert row["bound"] == "compute"
        for key in ("flop_fraction_of_peak", "memory_throughput_fraction",
                    "sm_utilization"):
            assert 0.0 <= row[key] <= 1.0

    def test_no_launches_no_rows(self):
        assert Profiler(A6000).kernel_rows() == []
