"""Roofline timing model and profiler metrics."""

import numpy as np
import pytest

from repro.gpu.kernel import Kernel, model_launch
from repro.gpu.profiler import Profiler
from repro.gpu.spec import A6000, LAPTOP_GPU
from repro.util.errors import CodegenError


def kernel(flops=100.0, nbytes=8.0):
    return Kernel("k", lambda: None, flops_per_thread=flops, bytes_per_thread=nbytes)


class TestModelLaunch:
    def test_compute_bound_detection(self):
        rec = model_launch(A6000, kernel(flops=10000, nbytes=8), 10_000_000)
        assert rec.bound == "compute"
        assert rec.flop_time > rec.mem_time

    def test_memory_bound_detection(self):
        rec = model_launch(A6000, kernel(flops=1, nbytes=1000), 10_000_000)
        assert rec.bound == "memory"

    def test_time_scales_linearly_with_threads_when_saturated(self):
        r1 = model_launch(A6000, kernel(), 10_000_000)
        r2 = model_launch(A6000, kernel(), 20_000_000)
        assert r2.exec_time == pytest.approx(2 * r1.exec_time, rel=0.05)

    def test_small_launch_pays_occupancy(self):
        tiny = model_launch(A6000, kernel(), 1000)
        assert tiny.occupancy < 0.05
        # per-thread cost is far worse than on a saturated launch
        big = model_launch(A6000, kernel(), 10_000_000)
        assert tiny.exec_time / 1000 > big.exec_time / 10_000_000

    def test_full_occupancy_for_big_launch(self):
        rec = model_launch(A6000, kernel(), 10_000_000)
        assert rec.occupancy == pytest.approx(1.0)
        assert rec.tail_efficiency > 0.9

    def test_launch_latency_separate(self):
        rec = model_launch(A6000, kernel(), 1_000_000)
        assert rec.duration == pytest.approx(rec.launch_latency + rec.exec_time)

    def test_faster_device_is_faster(self):
        slow = model_launch(LAPTOP_GPU, kernel(flops=1000, nbytes=8), 1_000_000)
        fast = model_launch(A6000, kernel(flops=1000, nbytes=8), 1_000_000)
        assert fast.exec_time < slow.exec_time

    def test_invalid_inputs(self):
        with pytest.raises(CodegenError):
            model_launch(A6000, kernel(), 0)
        with pytest.raises(CodegenError):
            model_launch(A6000, kernel(), 100, block=-32)
        with pytest.raises(CodegenError):
            Kernel("bad", lambda: None, flops_per_thread=-1, bytes_per_thread=0)


class TestProfilerMetrics:
    def test_compute_bound_flop_fraction_near_issue_efficiency(self):
        """A saturated compute-bound kernel sustains ~issue_efficiency of
        peak — the regime behind the paper's measured 49 % of DP peak."""
        prof = Profiler(A6000)
        prof.record_launch(model_launch(A6000, kernel(flops=9400, nbytes=2400), 15_840_000))
        rep = prof.report()
        assert rep.flop_fraction_of_peak == pytest.approx(
            A6000.issue_efficiency, rel=0.1
        )
        # memory throughput fraction is low for a compute-bound kernel
        assert 0.05 < rep.memory_throughput_fraction < 0.2
        assert rep.sm_utilization > 0.8

    def test_report_filters_by_kernel_name(self):
        prof = Profiler(A6000)
        prof.record_launch(model_launch(A6000, kernel(), 1_000_000))
        other = Kernel("other", lambda: None, flops_per_thread=5, bytes_per_thread=5)
        prof.record_launch(model_launch(A6000, other, 1_000_000))
        assert prof.report("other").n_launches == 1
        assert prof.report().n_launches == 2

    def test_empty_report_zero(self):
        rep = Profiler(A6000).report()
        assert rep.busy_time == 0.0
        assert rep.flop_fraction_of_peak == 0.0

    def test_table_format(self):
        prof = Profiler(A6000)
        prof.record_launch(model_launch(A6000, kernel(flops=9400, nbytes=2400), 15_840_000))
        table = prof.report().table()
        assert "SM utilization" in table
        assert "memory throughput" in table
        assert "% of peak" in table

    def test_reset(self):
        prof = Profiler(A6000)
        prof.record_launch(model_launch(A6000, kernel(), 1000))
        prof.record_transfer(100, 1e-6)
        prof.reset()
        assert prof.report().n_launches == 0
        assert prof.transfer_bytes == 0
