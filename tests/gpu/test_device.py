"""Simulated GPU device: memory, transfers, async launch semantics."""

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.gpu.kernel import Kernel
from repro.gpu.spec import A100, A6000, LAPTOP_GPU
from repro.util.errors import CodegenError


def saxpy_kernel():
    def body(x, y):
        y[...] = 2.0 * x + 1.0

    return Kernel("saxpy", body, flops_per_thread=2, bytes_per_thread=24)


class TestMemory:
    def test_alloc_copies(self):
        dev = Device(LAPTOP_GPU)
        host = np.arange(10.0)
        buf = dev.alloc("x", host)
        host[0] = 99.0
        assert buf.array[0] == 0.0  # device copy is independent

    def test_duplicate_name_rejected(self):
        dev = Device(LAPTOP_GPU)
        dev.alloc("x", np.zeros(4))
        with pytest.raises(CodegenError):
            dev.alloc("x", np.zeros(4))

    def test_oom(self):
        dev = Device(LAPTOP_GPU)  # 4 GB
        with pytest.raises(CodegenError, match="out of memory"):
            dev.alloc("big", np.zeros(int(5e9 // 8)))

    def test_free_releases(self):
        dev = Device(LAPTOP_GPU)
        dev.alloc("x", np.zeros(1000))
        used = dev.allocated_bytes
        dev.free("x")
        assert dev.allocated_bytes == used - 8000

    def test_h2d_shape_check(self):
        dev = Device(LAPTOP_GPU)
        dev.alloc("x", np.zeros(4))
        with pytest.raises(CodegenError, match="shape"):
            dev.h2d("x", np.zeros(5))

    def test_d2h_returns_copy_and_time(self):
        dev = Device(LAPTOP_GPU)
        dev.alloc("x", np.arange(4.0))
        arr, end = dev.d2h("x")
        assert np.allclose(arr, [0, 1, 2, 3])
        assert end > 0.0

    def test_unknown_buffer(self):
        dev = Device(LAPTOP_GPU)
        with pytest.raises(CodegenError):
            dev.d2h("ghost")


class TestTransfersTiming:
    def test_transfer_time_latency_plus_bandwidth(self):
        dev = Device(LAPTOP_GPU)
        n = 1_000_000
        dev.alloc_empty("x", (n,))
        start = dev.transfer_clock.now()
        end = dev.h2d("x", np.zeros(n))
        expected = LAPTOP_GPU.pcie_latency_s + n * 8 / LAPTOP_GPU.pcie_bw_bytes()
        assert end - start == pytest.approx(expected)

    def test_profiler_accumulates_transfers(self):
        dev = Device(LAPTOP_GPU)
        dev.alloc("x", np.zeros(1000))
        dev.d2h("x")
        rep = dev.profiler.report()
        assert rep.transfer_bytes == 2 * 8000


class TestLaunchSemantics:
    def test_kernel_executes_body(self):
        dev = Device(A6000)
        x = np.arange(100.0)
        dev.alloc("x", x)
        dev.alloc_empty("y", (100,))
        dev.launch(saxpy_kernel(), 100, dev.buffers["x"].array, dev.buffers["y"].array)
        assert np.allclose(dev.buffers["y"].array, 2 * x + 1)

    def test_async_launch_does_not_block_host(self):
        dev = Device(A6000)
        dev.alloc_empty("y", (1000,))
        dev.alloc("x", np.zeros(1000))
        rec = dev.launch(
            saxpy_kernel(), 1000, dev.buffers["x"].array, dev.buffers["y"].array,
            host_time=1.0,
        )
        assert rec.start == 1.0  # kernel cannot start before issued
        # host may proceed; synchronise joins timelines
        assert dev.synchronize(host_time=1.0) >= rec.end

    def test_synchronize_takes_max_of_timelines(self):
        dev = Device(A6000)
        assert dev.synchronize(host_time=5.0) == 5.0

    def test_block_must_be_warp_multiple(self):
        dev = Device(A6000)
        dev.alloc("x", np.zeros(10))
        dev.alloc_empty("y", (10,))
        with pytest.raises(CodegenError, match="warp"):
            dev.launch(saxpy_kernel(), 10, dev.buffers["x"].array,
                       dev.buffers["y"].array, block=100)

    def test_stream_records(self):
        dev = Device(A6000)
        dev.alloc("x", np.zeros(10))
        dev.alloc_empty("y", (10,))
        dev.launch(saxpy_kernel(), 10, dev.buffers["x"].array, dev.buffers["y"].array)
        assert len(dev.default_stream.records) == 1
        assert dev.default_stream.records[0].kernel == "saxpy"

    def test_reset_timelines(self):
        dev = Device(A6000)
        dev.alloc("x", np.zeros(10))
        dev.reset_timelines()
        assert dev.transfer_clock.now() == 0.0


class TestSpecs:
    def test_a6000_fp64_is_fraction_of_fp32(self):
        assert A6000.fp64_peak_gflops == pytest.approx(A6000.fp32_peak_gflops / 64, rel=1e-3)

    def test_a100_has_strong_fp64(self):
        assert A100.fp64_peak_gflops > A6000.fp64_peak_gflops

    def test_max_resident_threads(self):
        assert A6000.max_resident_threads() == 84 * 1536
