"""SPMD schedule verification: symmetry, simulation, deadlock diagnosis."""

from repro.verify import (
    CollectiveOp,
    RecvOp,
    SendOp,
    check_halo_symmetry,
    halo_programs,
    simulate_schedule,
    verify_halo_layout,
    verify_solver_schedule,
)


def symmetric_layout():
    """Two ranks exchanging a 3-cell halo in both directions."""
    send = [{1: [4, 5, 6]}, {0: [0, 1, 2]}]
    recv = [{1: [7, 8, 9]}, {0: [3, 4, 5]}]
    return send, recv


class TestHaloSymmetry:
    def test_symmetric_layout_is_clean(self):
        send, recv = symmetric_layout()
        report = check_halo_symmetry(send, recv)
        assert not report.diagnostics, [d.render() for d in report.diagnostics]

    def test_send_without_recv_trips_rpr210(self):
        send, recv = symmetric_layout()
        del recv[1][0]  # rank 1 no longer expects rank 0's halo
        report = check_halo_symmetry(send, recv)
        assert "RPR210" in report.codes()

    def test_recv_without_send_trips_rpr211(self):
        send, recv = symmetric_layout()
        del send[0][1]  # rank 0 no longer sends to rank 1
        report = check_halo_symmetry(send, recv)
        assert "RPR211" in report.codes()

    def test_width_mismatch_trips_rpr213(self):
        send, recv = symmetric_layout()
        recv[1][0] = [3, 4]  # rank 1 expects 2 cells, rank 0 sends 3
        report = check_halo_symmetry(send, recv)
        assert "RPR213" in report.codes()

    def test_out_of_range_peer_trips_rpr211(self):
        send, recv = symmetric_layout()
        recv[0][9] = [1]  # rank 9 does not exist
        report = check_halo_symmetry(send, recv)
        assert "RPR211" in report.codes()


class TestSimulation:
    def test_generated_programs_complete(self):
        send, recv = symmetric_layout()
        programs = halo_programs(send, recv, nsteps=3, collectives=1)
        report = simulate_schedule(programs)
        assert not report.diagnostics, [d.render() for d in report.diagnostics]

    def test_unreceived_message_trips_rpr210(self):
        programs = [[SendOp(dst=1, tag=7)], []]
        report = simulate_schedule(programs)
        assert "RPR210" in report.codes()

    def test_unsatisfiable_recv_trips_rpr211(self):
        programs = [[RecvOp(src=1, tag=7)], []]
        report = simulate_schedule(programs)
        assert "RPR211" in report.codes()

    def test_misordered_sends_trip_rpr212(self):
        # both ranks block on their recv with the matching send behind it
        programs = [
            [RecvOp(src=1, tag=7), SendOp(dst=1, tag=7)],
            [RecvOp(src=0, tag=7), SendOp(dst=0, tag=7)],
        ]
        report = simulate_schedule(programs)
        assert "RPR212" in report.codes()
        assert "RPR211" not in report.codes()

    def test_collective_kind_mismatch_trips_rpr214(self):
        programs = [
            [CollectiveOp(kind="allreduce", tag=0)],
            [CollectiveOp(kind="allreduce", tag=1)],
        ]
        report = simulate_schedule(programs)
        assert "RPR214" in report.codes()

    def test_rank_skipping_collective_trips_rpr214(self):
        programs = [[CollectiveOp(kind="allreduce", tag=0)], []]
        report = simulate_schedule(programs)
        assert "RPR214" in report.codes()

    def test_tag_mismatch_on_recv_trips(self):
        programs = [
            [SendOp(dst=1, tag=1)],
            [RecvOp(src=0, tag=2)],
        ]
        report = simulate_schedule(programs)
        assert report.has_errors  # wrong-tag recv can never be satisfied


class TestVerifyLayout:
    def test_symmetry_errors_short_circuit_simulation(self):
        send, recv = symmetric_layout()
        del send[0][1]

        class Layout:
            send_cells = send
            recv_cells = recv
            nparts = 2

        report = verify_halo_layout(Layout())
        assert set(report.codes()) == {"RPR211"}


class TestRealDistributedSolver:
    def test_two_rank_solver_schedule_is_clean(self):
        from repro.bte.problem import build_bte_problem, hotspot_scenario

        sc = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=2,
                              dt=1e-12, nsteps=2)
        p, _ = build_bte_problem(sc)
        p.set_partitioning("cells", 2)
        solver = p.generate()
        assert getattr(solver, "layout", None) is not None
        report = verify_solver_schedule(solver)
        assert not report.diagnostics, [d.render() for d in report.diagnostics]

    def test_serial_solver_is_a_noop(self):
        class Solver:
            layout = None

        assert not verify_solver_schedule(Solver()).diagnostics
