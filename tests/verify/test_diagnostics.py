"""Diagnostic records, the RPR catalogue, and caret rendering."""

import pytest

from repro.symbolic.parser import parse
from repro.util.errors import MeshError, ParseError, ReproError, caret_block
from repro.verify import CATALOGUE, describe, render_catalogue
from repro.verify.diagnostics import Diagnostic, DiagnosticReport


class TestCatalogue:
    def test_every_code_well_formed(self):
        for code, info in CATALOGUE.items():
            assert code == info.code
            assert code.startswith("RPR") and len(code) == 6
            assert info.layer
            assert info.title
            assert info.severity in ("error", "warning", "info")

    def test_describe_known_and_unknown(self):
        assert describe("RPR121").layer == "dsl"
        assert describe("RPR999").title  # unknown codes get a placeholder

    def test_render_catalogue_lists_everything(self):
        text = render_catalogue()
        for code in CATALOGUE:
            assert code in text

    def test_error_default_codes_are_catalogued(self):
        # every ReproError subclass default code must exist in the catalogue
        def subclasses(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from subclasses(sub)

        for cls in {ReproError, *subclasses(ReproError)}:
            assert cls.default_code in CATALOGUE, cls.__name__

    def test_documented_in_architecture_md(self):
        from pathlib import Path

        doc = Path(__file__).parents[2] / "docs" / "architecture.md"
        text = doc.read_text()
        missing = [code for code in CATALOGUE if code not in text]
        assert not missing, f"codes absent from docs/architecture.md: {missing}"


class TestDiagnostic:
    def test_from_code_takes_catalogue_defaults(self):
        d = Diagnostic.from_code("RPR303", "drifted", step=3)
        assert d.severity == "warning"
        assert d.layer == "runtime"
        assert d.where == {"step": 3}

    def test_from_error_uses_exception_code(self):
        d = Diagnostic.from_error(MeshError("bad mesh", code="RPR501"))
        assert d.code == "RPR501"
        assert d.message == "bad mesh"

    def test_render_includes_provenance(self):
        d = Diagnostic.from_code("RPR301", "u went non-finite",
                                 step=7, rank=1)
        text = d.render()
        assert "RPR301" in text and "step=7" in text and "rank=1" in text

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="RPR000", message="x", severity="fatal")


class TestReport:
    def test_summary_and_sorting(self):
        r = DiagnosticReport()
        r.checks_run = 2
        assert r.summary() == "OK (2 check(s), no findings)"
        r.add(Diagnostic.from_code("RPR304", "w"))  # warning
        r.add(Diagnostic.from_code("RPR101", "e"))  # error
        assert r.summary() == "1 error(s), 1 warning(s)"
        assert [d.code for d in r.sorted()] == ["RPR101", "RPR304"]
        assert r.has_errors

    def test_to_dict_schema(self):
        r = DiagnosticReport()
        r.add(Diagnostic.from_code("RPR121", "m", region=4))
        doc = r.to_dict()
        assert doc["schema"] == "repro.diagnostics/1"
        assert doc["errors"] == 1
        assert doc["diagnostics"][0]["where"] == {"region": 4}


class TestCaretRendering:
    def test_single_line_caret(self):
        err = ParseError("unexpected token", source="a + * b", position=4)
        text = str(err)
        lines = text.splitlines()
        assert lines[1] == "  a + * b"
        assert lines[2] == "      ^"

    def test_multi_line_caret_points_into_right_line(self):
        src = "first line\nsecond line has the error here\nthird"
        pos = src.index("error")
        err = ParseError("bad", source=src, position=pos)
        lines = str(err).splitlines()
        # only the offending line is shown, labelled with its number,
        # and the caret column is measured from that line's start
        assert lines[1] == "  line 2: second line has the error here"
        caret_col = lines[2].index("^")
        assert lines[1][caret_col:caret_col + 5] == "error"

    def test_multi_line_parse_error_end_to_end(self):
        src = "u\n+ surface(upwind(b, u)\n+ q"  # unclosed call
        with pytest.raises(ParseError) as ei:
            parse(src)
        assert "line" in str(ei.value)  # the caret block names a line

    def test_caret_block_empty_for_no_position(self):
        assert caret_block("abc", -1) == ""
        assert caret_block("", 2) == ""
