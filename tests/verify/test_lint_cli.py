"""``bte lint`` end-to-end: script linting, exit codes, error rendering."""

import json
import textwrap

import pytest

from repro.cli import _render_error, bte_main, main
from repro.util.errors import MeshError, ParseError
from repro.verify import get_sanitizer, lint_script


CLEAN_SCRIPT = textwrap.dedent("""\
    import numpy as np
    from repro.dsl.problem import Problem
    from repro.fvm.boundary import BCKind
    from repro.mesh.grid import structured_grid

    p = Problem("lintable")
    p.set_domain(2)
    p.set_steps(1e-4, 4)
    p.set_mesh(structured_grid((6, 6)))
    p.add_variable("u")
    p.add_coefficient("D", 0.5)
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.DIRICHLET, 0.0)
    p.set_initial("u", 0.0)
    p.set_conservation_form("u", "surface(diffuse(D, u))")
    p.solve()
""")


@pytest.fixture(autouse=True)
def fresh_sanitizer():
    san = get_sanitizer()
    san.reset()
    san.enabled = False
    san.was_active = False
    yield


def write_script(tmp_path, body, name="script.py"):
    path = tmp_path / name
    path.write_text(body)
    return str(path)


class TestLintScript:
    def test_clean_script_passes(self, tmp_path):
        res = lint_script(write_script(tmp_path, CLEAN_SCRIPT))
        assert res.ok, res.render_text()
        assert res.problems_checked == 1

    def test_solve_is_intercepted_not_run(self, tmp_path):
        # lint must stop at the first solve(), not execute the time loop
        script = CLEAN_SCRIPT + "\nraise SystemExit('past solve!')\n"
        res = lint_script(write_script(tmp_path, script))
        assert res.ok, res.render_text()

    def test_unknown_symbol_is_reported(self, tmp_path):
        bad = CLEAN_SCRIPT.replace('"surface(diffuse(D, u))"',
                                   '"surface(diffuse(D, u)) + qqq"')
        res = lint_script(write_script(tmp_path, bad))
        assert not res.ok
        assert "RPR101" in res.report.codes()

    def test_crashing_script_reports_rpr000(self, tmp_path):
        res = lint_script(write_script(tmp_path, "1 / 0\n"))
        assert not res.ok
        assert "RPR000" in res.report.codes()

    def test_typed_error_keeps_its_code(self, tmp_path):
        script = ("from repro.util.errors import MeshError\n"
                  "raise MeshError('truncated', code='RPR501')\n")
        res = lint_script(write_script(tmp_path, script))
        assert not res.ok
        assert "RPR501" in res.report.codes()


class TestCliExitCodes:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        path = write_script(tmp_path, CLEAN_SCRIPT)
        assert main(["lint", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bad_script_exits_one(self, tmp_path, capsys):
        bad = CLEAN_SCRIPT.replace('"surface(diffuse(D, u))"',
                                   '"surface(wizardry(D, u))"')
        path = write_script(tmp_path, bad)
        assert main(["lint", path]) == 1
        captured = capsys.readouterr()
        assert "RPR102" in captured.out
        assert "failed lint" in captured.err

    def test_no_scripts_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "no scripts" in capsys.readouterr().err

    def test_missing_script_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/x.py"]) == 2
        assert "no such script" in capsys.readouterr().err

    def test_codes_catalogue(self, capsys):
        assert main(["lint", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "RPR301" in out and "RPR121" in out

    def test_json_report(self, tmp_path, capsys):
        path = write_script(tmp_path, CLEAN_SCRIPT)
        out = tmp_path / "lint.json"
        assert main(["lint", path, "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.lint/1"
        assert doc["scripts"][0]["ok"] is True

    def test_bte_alias_passes_lint_through(self, capsys):
        assert bte_main(["lint", "--codes"]) == 0
        assert "RPR301" in capsys.readouterr().out


class TestErrorRendering:
    def test_one_line_format(self):
        text = _render_error(MeshError("file truncated", code="RPR502"))
        assert text == "error RPR502: file truncated"

    def test_caret_block_preserved(self):
        err = ParseError("unexpected token", source="a + * b", position=4)
        text = _render_error(err)
        lines = text.splitlines()
        assert lines[0].startswith("error RPR100: unexpected token")
        assert "^" in lines[-1]

    def test_cli_renders_repro_error_cleanly(self, capsys):
        # a ReproError escaping a command becomes a one-line stderr
        # diagnostic with a nonzero exit, not a traceback
        rc = main(["pipeline", "u + * q"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error RPR" in captured.err
        assert "re-run with -v" in captured.err

    def test_verbose_reraises_for_traceback(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            main(["-v", "pipeline", "u + * q"])
