"""Static DSL/IR mutation tests: every corruption trips its documented code."""

import numpy as np

from repro.dsl.entities import VAR_ARRAY
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid
from repro.verify import check_problem


def make_problem(n: int = 6, equation: str = "surface(diffuse(D, u))") -> Problem:
    """A clean 2-D diffusion problem covering all four boundary regions."""
    p = Problem("verify-fixture")
    p.set_domain(2)
    p.set_steps(1e-4, 4)
    p.set_mesh(structured_grid((n, n)))
    p.add_variable("u")
    p.add_coefficient("D", 0.5)
    for region in (1, 2, 3, 4):
        p.add_boundary("u", region, BCKind.DIRICHLET, 0.0)
    p.set_initial("u", lambda x: np.sin(np.pi * x[:, 0]))
    p.set_conservation_form("u", equation)
    return p


def make_banded_problem(equation: str, nparts: int = 1) -> Problem:
    """Like :func:`make_problem` but the unknown carries a band index."""
    p = Problem("verify-banded")
    p.set_domain(2)
    p.set_steps(1e-4, 4)
    p.set_mesh(structured_grid((6, 6)))
    b = p.add_index("b", (0, 2))
    p.add_variable("I", VAR_ARRAY, index=[b])
    p.add_coefficient("D", 0.5)
    for region in (1, 2, 3, 4):
        p.add_boundary("I", region, BCKind.DIRICHLET, 0.0)
    p.set_conservation_form("I", equation)
    if nparts > 1:
        p.set_partitioning("bands", nparts, index="b")
    return p


class TestCleanProblem:
    def test_no_findings(self):
        report = check_problem(make_problem())
        assert not report.diagnostics, [d.render() for d in report.diagnostics]
        assert report.checks_run > 5


class TestBoundaryMutations:
    def test_dropped_bc_trips_rpr121(self):
        p = make_problem()
        p.boundaries[:] = [b for b in p.boundaries if b.region != 3]
        report = check_problem(p)
        assert "RPR121" in report.codes()
        diag = next(d for d in report.diagnostics if d.code == "RPR121")
        assert diag.where["region"] == 3

    def test_unknown_region_trips_rpr122(self):
        p = make_problem()
        p.boundaries[0].region = 99
        report = check_problem(p)
        codes = report.codes()
        assert "RPR122" in codes  # region 99 does not exist
        assert "RPR121" in codes  # ...and region 1 lost its condition

    def test_duplicate_bc_trips_rpr123(self):
        p = make_problem()
        p.boundaries.append(p.boundaries[0])
        assert "RPR123" in check_problem(p).codes()

    def test_dirichlet_without_value_trips_rpr124(self):
        p = make_problem()
        p.boundaries[0].value = None
        assert "RPR124" in check_problem(p).codes()


class TestExpressionMutations:
    def test_unknown_symbol_trips_rpr101_with_caret(self):
        p = make_problem(equation="surface(diffuse(D, u)) + qqq")
        report = check_problem(p)
        diag = next(d for d in report.diagnostics if d.code == "RPR101")
        assert "qqq" in diag.message
        assert diag.source and diag.position == diag.source.index("qqq")

    def test_unknown_function_trips_rpr102(self):
        p = make_problem(equation="surface(wizardry(D, u))")
        assert "RPR102" in check_problem(p).codes()

    def test_nested_surface_trips_rpr107(self):
        p = make_problem(
            equation="surface(diffuse(D, u) + surface(diffuse(D, u)))")
        assert "RPR107" in check_problem(p).codes()

    def test_unknown_absent_warns_rpr109(self):
        p = make_problem(equation="-D")
        report = check_problem(p)
        assert "RPR109" in [d.code for d in report.warnings]

    def test_missing_equation_trips_rpr110(self):
        p = Problem("no-eq")
        p.set_domain(2)
        p.set_steps(1e-4, 4)
        p.set_mesh(structured_grid((4, 4)))
        p.add_variable("u")
        assert "RPR110" in check_problem(p).codes()

    def test_indexed_entity_referenced_bare_trips_rpr105(self):
        p = make_banded_problem("-D*I")
        assert "RPR105" in check_problem(p).codes()

    def test_wrong_index_trips_rpr104(self):
        p = make_banded_problem("-D*I[z9]")
        assert "RPR104" in check_problem(p).codes()


class TestConfigMutations:
    def test_missing_steps_trips_rpr132(self):
        p = make_problem()
        p.config.dt = 0.0
        assert "RPR132" in check_problem(p).codes()

    def test_mesh_dimension_mismatch_trips_rpr133(self):
        p = make_problem()
        p.config.dimension = 3
        assert "RPR133" in check_problem(p).codes()

    def test_bad_assembly_order_trips_rpr130(self):
        p = make_problem()
        p.config.assembly_order = ["cells", "cells"]
        assert "RPR130" in check_problem(p).codes()

    def test_assembly_loop_over_missing_index_trips_rpr130(self):
        p = make_problem()
        p.config.assembly_order = ["bogus_index", "cells"]
        assert "RPR130" in check_problem(p).codes()

    def test_partition_index_not_declared_trips_rpr131(self):
        p = make_problem()
        p.config.partition_strategy = "bands"
        p.config.nparts = 2
        p.config.partition_index = "b"
        assert "RPR131" in check_problem(p).codes()

    def test_more_ranks_than_bands_warns_rpr131(self):
        p = make_banded_problem("-D*I[b]", nparts=8)
        report = check_problem(p)
        assert "RPR131" in [d.code for d in report.warnings]
        assert not report.has_errors, [d.render() for d in report.errors]
