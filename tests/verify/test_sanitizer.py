"""Runtime sanitizer: provenance, checksums, and bit-identical guarantees."""

import numpy as np
import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.verify import SanitizerError, get_sanitizer, sanitize_run
from repro.verify.sanitizer import sanitizer_section


@pytest.fixture(autouse=True)
def fresh_sanitizer():
    san = get_sanitizer()
    san.reset()
    san.enabled = False
    san.was_active = False
    yield
    san.reset()
    san.enabled = False
    san.was_active = False


def tiny():
    return hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2,
                            dt=1e-12, nsteps=3)


def poison(state):
    state.u[0, 0] = np.nan


class TestNanGuards:
    def test_nan_injection_raises_with_provenance(self):
        p, _ = build_bte_problem(tiny())
        p.add_post_step(poison, name="poison")
        with sanitize_run():
            with pytest.raises(SanitizerError) as ei:
                p.solve()
        assert ei.value.code == "RPR301"
        assert "step" in str(ei.value)
        san = get_sanitizer()
        diag = next(d for d in san.report.diagnostics if d.code == "RPR301")
        assert diag.where["index"] == (0, 0)
        assert diag.where["step"] == 1  # poisoned after the first step

    def test_clean_run_has_no_findings(self):
        p, _ = build_bte_problem(tiny())
        with sanitize_run():
            p.solve()
        san = get_sanitizer()
        assert not san.has_findings()
        assert san.checks > 0
        assert "OK" in san.summary()

    def test_disabled_sanitizer_ignores_nan(self):
        from repro.util.errors import SolverError

        p, _ = build_bte_problem(tiny())
        p.add_post_step(poison, name="poison")
        # without --sanitize only the legacy end-of-run health check fires,
        # with no per-step provenance and no sanitizer finding
        with pytest.raises(SolverError) as ei:
            p.solve()
        assert not isinstance(ei.value, SanitizerError)
        assert not get_sanitizer().has_findings()

    def test_kernel_output_guard_trips_rpr306(self):
        with sanitize_run() as san:
            with pytest.raises(SanitizerError) as ei:
                san.check_kernel_output("bte_step", np.array([1.0, np.inf]))
        assert ei.value.code == "RPR306"

    def test_check_array_reports_first_bad_index(self):
        with sanitize_run() as san:
            a = np.zeros((3, 4))
            a[2, 1] = np.inf
            assert san.check_array("a", a, fatal=False) is False
        diag = san.report.diagnostics[0]
        assert diag.where["index"] == (2, 1)


class TestHaloChecksums:
    def test_tampered_payload_trips_rpr302(self):
        data = np.arange(8, dtype=np.float64)
        with sanitize_run() as san:
            san.note_sent(0, 1, 7, 0, data)
            tampered = data.copy()
            tampered[3] += 1e-9
            with pytest.raises(SanitizerError) as ei:
                san.check_received(0, 1, 7, 0, tampered)
        assert ei.value.code == "RPR302"
        assert "RPR302" in san.report.codes()

    def test_intact_payload_is_clean(self):
        data = np.arange(8, dtype=np.float64)
        with sanitize_run() as san:
            san.note_sent(0, 1, 7, 0, data)
            san.check_received(0, 1, 7, 0, data.copy())
        assert not san.has_findings()

    def test_two_rank_run_verifies_all_halos(self):
        sc = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=2,
                              dt=1e-12, nsteps=2)
        p, _ = build_bte_problem(sc)
        p.set_partitioning("cells", 2)
        with sanitize_run():
            p.solve()
        san = get_sanitizer()
        assert not san.has_findings(), san.summary()
        assert san.checks > 0


class TestBitIdentical:
    """--sanitize must never change results: all checks are read-only."""

    def _pair(self, configure=None, scenario=None):
        sol = []
        for sanitized in (False, True):
            p, _ = build_bte_problem(scenario or tiny())
            if configure:
                configure(p)
            if sanitized:
                with sanitize_run():
                    s = p.solve()
            else:
                s = p.solve()
            sol.append(s.solution().copy())
        return sol

    def test_serial_identical(self):
        a, b = self._pair()
        assert np.array_equal(a, b)

    def test_gpu_identical(self):
        def cfg(p):
            p.enable_gpu()
            p.extra["gpu_force_offload"] = True

        a, b = self._pair(configure=cfg)
        assert np.array_equal(a, b)

    def test_distributed_identical(self):
        sc = hotspot_scenario(nx=8, ny=8, ndirs=4, n_freq_bands=2,
                              dt=1e-12, nsteps=2)
        a, b = self._pair(configure=lambda p: p.set_partitioning("cells", 2),
                          scenario=sc)
        assert np.array_equal(a, b)


class TestReportSection:
    def test_section_none_when_never_active(self):
        assert sanitizer_section() is None

    def test_section_after_sanitized_run(self):
        p, _ = build_bte_problem(tiny())
        with sanitize_run():
            p.solve()
        doc = sanitizer_section()
        assert doc is not None
        assert doc["schema"] == "repro.diagnostics/1"
        assert doc["enabled"] is False  # run finished
        assert doc["checks_run"] > 0

    def test_run_report_embeds_diagnostics(self):
        from repro.obs.report import build_run_report

        p, _ = build_bte_problem(tiny())
        with sanitize_run():
            solver = p.solve()
        report = build_run_report(solver, args=None)
        doc = report.to_dict()
        assert doc["diagnostics"]["schema"] == "repro.diagnostics/1"

    def test_run_report_omits_diagnostics_without_sanitize(self):
        from repro.obs.report import build_run_report

        p, _ = build_bte_problem(tiny())
        solver = p.solve()
        report = build_run_report(solver, args=None)
        assert report.to_dict().get("diagnostics") is None


class TestFEM:
    def test_fem_state_sanitizes(self):
        from repro.dsl.entities import NODE
        from repro.dsl.problem import Problem
        from repro.fvm.boundary import BCKind
        from repro.mesh.grid import triangulated_grid

        p = Problem("fem-sanitize")
        p.set_domain(2)
        p.set_solver_type("FEM")
        p.set_steps(1e-4, 3)
        p.set_mesh(triangulated_grid((6, 6)))
        p.add_variable("u", location=NODE)
        p.add_coefficient("k", 1.0)
        for r in (1, 2, 3, 4):
            p.add_boundary("u", r, BCKind.DIRICHLET, 0.0)
        p.set_initial("u", 0.0)
        p.set_weak_form("u", "-k*dot(grad(u), grad(v))")
        with sanitize_run():
            p.solve()
        san = get_sanitizer()
        assert san.checks > 0
        assert not san.has_findings(), san.summary()
