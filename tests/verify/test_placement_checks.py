"""Placement & transfer-plan mutation tests against the real GPU solver."""

import pytest

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.codegen.placement.graph import Task, TaskGraph
from repro.codegen.placement.optimizer import PlacementPlan
from repro.codegen.placement.transfers import ArrayUse
from repro.verify import (
    check_hazards,
    check_placement,
    check_transfers,
    verify_solver,
    verify_solver_placement,
)


def gpu_solver():
    sc = hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2,
                          dt=1e-12, nsteps=2)
    p, _ = build_bte_problem(sc)
    p.enable_gpu()
    p.extra["gpu_force_offload"] = True
    return p.generate()


def make_plan(device, graph, **kw):
    return PlacementPlan(device=device, objective_seconds=0.0,
                         cut_edges=[], bytes_moved_per_step=0.0,
                         graph=graph, **kw)


class TestRealSolver:
    def test_generated_gpu_solver_verifies_clean(self):
        report = verify_solver(gpu_solver())
        assert not report.diagnostics, [d.render() for d in report.diagnostics]

    def test_missing_per_step_h2d_trips_rpr201(self):
        solver = gpu_solver()
        solver.transfer_plan.h2d_each_step.remove("u")
        report = verify_solver_placement(solver)
        assert "RPR201" in report.codes()
        diag = next(d for d in report.diagnostics if d.code == "RPR201")
        assert diag.where["array"] == "u"

    def test_missing_static_h2d_trips_rpr201(self):
        solver = gpu_solver()
        solver.transfer_plan.static_h2d.remove("geometry")
        report = verify_solver_placement(solver)
        assert "RPR201" in report.codes()

    def test_missing_d2h_trips_rpr202(self):
        solver = gpu_solver()
        solver.transfer_plan.d2h_each_step.remove("u")
        report = verify_solver_placement(solver)
        assert "RPR202" in report.codes()

    def test_undescribed_array_in_plan_trips_rpr207(self):
        solver = gpu_solver()
        solver.transfer_plan.h2d_each_step.append("phantom")
        report = verify_solver_placement(solver)
        assert "RPR207" in report.codes()

    def test_unknown_task_assignment_trips_rpr206(self):
        solver = gpu_solver()
        solver.placement.device["bogus"] = "gpu"
        report = verify_solver_placement(solver)
        assert "RPR206" in report.codes()

    def test_pinned_task_moved_trips_rpr205(self):
        solver = gpu_solver()
        # boundary callbacks are pinned to the CPU (paper Sec. I)
        solver.placement.device["boundary_callbacks"] = "gpu"
        report = verify_solver_placement(solver)
        assert "RPR205" in report.codes()


class TestSyntheticHazards:
    def _two_task_graph(self, edge: bool):
        g = TaskGraph()
        g.add_task(Task("a", cost_cpu=1.0, cost_gpu=1.0))
        g.add_task(Task("b", cost_cpu=1.0, cost_gpu=1.0))
        if edge:
            g.add_edge("a", "b", 8.0)
        return g

    def test_unordered_double_write_trips_rpr203(self):
        g = self._two_task_graph(edge=False)
        plan = make_plan({"a": "cpu", "b": "cpu"}, g)
        arrays = [ArrayUse("buf", 8.0, writers=("a", "b"))]
        report = check_hazards(plan, arrays)
        assert "RPR203" in report.codes()

    def test_ordered_double_write_is_clean(self):
        g = self._two_task_graph(edge=True)
        plan = make_plan({"a": "cpu", "b": "cpu"}, g)
        arrays = [ArrayUse("buf", 8.0, writers=("a", "b"))]
        assert not check_hazards(plan, arrays).diagnostics

    def test_cross_device_overlap_race_trips_rpr204(self):
        g = self._two_task_graph(edge=False)
        plan = make_plan({"a": "gpu", "b": "cpu"}, g)
        arrays = [ArrayUse("buf", 8.0, readers=("b",), writers=("a",))]
        report = check_hazards(plan, arrays)
        assert "RPR204" in report.codes()

    def test_double_buffered_array_is_exempt(self):
        g = self._two_task_graph(edge=False)
        plan = make_plan({"a": "gpu", "b": "cpu"}, g)
        arrays = [ArrayUse("buf", 8.0, readers=("b",), writers=("a",),
                           double_buffered=True)]
        assert not check_hazards(plan, arrays).diagnostics

    def test_array_referencing_unknown_task_trips_rpr206(self):
        g = self._two_task_graph(edge=False)
        plan = make_plan({"a": "cpu", "b": "cpu"}, g)
        arrays = [ArrayUse("buf", 8.0, writers=("ghost",))]
        report = check_hazards(plan, arrays)
        assert "RPR206" in report.codes()

    def test_pinned_violation_trips_rpr205(self):
        g = TaskGraph()
        g.add_task(Task("cb", cost_cpu=1.0, cost_gpu=1.0, pinned="cpu"))
        plan = make_plan({"cb": "gpu"}, g)
        report = check_placement(plan)
        assert "RPR205" in report.codes()

    def test_gpu_task_without_gpu_cost_trips_rpr205(self):
        g = TaskGraph()
        g.add_task(Task("k", cost_cpu=1.0))  # cost_gpu defaults to inf
        plan = make_plan({"k": "gpu"}, g)
        report = check_placement(plan)
        assert "RPR205" in report.codes()

    def test_cyclic_graph_counts_as_ordered(self):
        # pathological, but the verifier must not hang or false-positive
        g = self._two_task_graph(edge=True)
        g.add_edge("b", "a", 8.0)
        plan = make_plan({"a": "cpu", "b": "gpu"}, g)
        arrays = [ArrayUse("buf", 8.0, readers=("b",), writers=("a",))]
        assert not check_hazards(plan, arrays).diagnostics


class TestSolverWithoutAttachments:
    def test_cpu_solver_verifies_trivially(self):
        sc = hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2,
                              dt=1e-12, nsteps=2)
        p, _ = build_bte_problem(sc)
        solver = p.generate()
        report = verify_solver(solver)
        assert not report.diagnostics
