"""Shared fixtures: small meshes, entity tables, reduced BTE scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bte.angular import uniform_directions_2d
from repro.bte.dispersion import silicon_bands
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario, hotspot_scenario
from repro.dsl.entities import (
    CELL,
    VAR_ARRAY,
    Coefficient,
    EntityTable,
    Index,
    Variable,
)
from repro.fvm.geometry import FVGeometry
from repro.mesh.grid import structured_grid


@pytest.fixture
def mesh2d():
    """8x6 uniform quad mesh on [0,2]x[0,1.5]."""
    return structured_grid((8, 6), [(0.0, 2.0), (0.0, 1.5)])


@pytest.fixture
def mesh2d_square():
    return structured_grid((10, 10))


@pytest.fixture
def mesh1d():
    return structured_grid((12,), [(0.0, 1.0)])


@pytest.fixture
def mesh3d():
    return structured_grid((4, 3, 2), [(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)])


@pytest.fixture
def geom2d(mesh2d):
    return FVGeometry(mesh2d)


@pytest.fixture
def scalar_entities():
    """Entity table of the paper's Sec. II example: -k*u - surface(upwind(b, u))."""
    ents = EntityTable()
    u = ents.add_variable(Variable("u"))
    ents.add_coefficient(Coefficient("k", 2.0))
    ents.add_coefficient(Coefficient("b", 1.0))
    return ents, u


@pytest.fixture
def bte_entities():
    """Entity table shaped like the BTE deck (small index ranges)."""
    ents = EntityTable()
    d = ents.add_index(Index("d", 1, 4))
    b = ents.add_index(Index("b", 1, 3))
    I = ents.add_variable(Variable("I", VAR_ARRAY, CELL, (d, b)))
    ents.add_variable(Variable("Io", VAR_ARRAY, CELL, (b,)))
    ents.add_variable(Variable("beta", VAR_ARRAY, CELL, (b,)))
    ents.add_coefficient(Coefficient("Sx", np.linspace(-1, 1, 4), VAR_ARRAY, (d,)))
    ents.add_coefficient(Coefficient("Sy", np.linspace(1, -1, 4), VAR_ARRAY, (d,)))
    ents.add_coefficient(Coefficient("vg", np.array([1.0, 2.0, 3.0]), VAR_ARRAY, (b,)))
    return ents, I


@pytest.fixture
def tiny_scenario() -> BTEScenario:
    """A BTE configuration small enough for per-test solves (<1 s)."""
    return hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=5, dt=1e-12, nsteps=5)


@pytest.fixture
def small_model() -> BTEModel:
    return BTEModel(bands=silicon_bands(5), directions=uniform_directions_2d(8))


@pytest.fixture
def paper_bands():
    """The full 40-frequency-band silicon discretisation (session-cached)."""
    return silicon_bands(40)
