"""Property sweep: the generated solver matches the hand-written reference
on randomly drawn scenarios (the paper's verification, fuzzed)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bte.problem import build_bte_problem, hotspot_scenario
from repro.bte.reference import ReferenceBTESolver


@given(
    nx=st.integers(min_value=4, max_value=10),
    ny=st.integers(min_value=4, max_value=10),
    ndirs=st.sampled_from([4, 8, 12]),
    nbands=st.integers(min_value=1, max_value=6),
    nsteps=st.integers(min_value=1, max_value=8),
    hot_frac=st.floats(min_value=0.2, max_value=0.8),
)
@settings(max_examples=15, deadline=None)
def test_generated_matches_reference_on_random_scenarios(
    nx, ny, ndirs, nbands, nsteps, hot_frac
):
    scenario = hotspot_scenario(nx=nx, ny=ny, ndirs=ndirs,
                                n_freq_bands=nbands, dt=1e-12, nsteps=nsteps)
    scenario.sigma = 200e-6
    scenario.hot_center_frac = hot_frac
    problem, model = build_bte_problem(scenario)
    solver = problem.solve()
    ref = ReferenceBTESolver(scenario, model)
    ref.run()
    scale = max(np.abs(ref.intensity_dsl_layout()).max(), 1.0)
    assert (
        np.abs(solver.solution() - ref.intensity_dsl_layout()).max()
        <= 1e-11 * scale
    )
    assert np.allclose(solver.state.extra["T"], ref.T, atol=1e-8)
