"""Transport-physics sanity checks on the full DSL-generated BTE solver."""

import numpy as np
import pytest

from repro.bte.angular import uniform_directions_2d
from repro.bte.dispersion import silicon_bands
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario, build_bte_problem


class TestFrontPropagation:
    def test_thermal_front_travels_at_group_velocity(self):
        """Heat from a suddenly-hot wall cannot outrun the fastest phonons:
        after time t the disturbance must sit inside x < vg_max * t (plus a
        cell of numerical smear), and should reach a decent fraction of it."""
        model = BTEModel(bands=silicon_bands(4),
                         directions=uniform_directions_2d(12))
        L = 2e-6
        nx = 40
        vg_max = float(model.bands.vg.max())
        dt = 0.3 * (L / nx) / vg_max
        nsteps = 60
        scenario = BTEScenario(
            name="front", nx=nx, ny=2, lx=L, ly=L / 10,
            ndirs=12, n_freq_bands=4, dt=dt, nsteps=nsteps,
            T0=300.0, T_hot=330.0, sigma=1e3,
            hot_regions=(1,), cold_regions=(2,), symmetry_regions=(3, 4),
        )
        problem, _ = build_bte_problem(scenario, model=model)
        solver = problem.solve()
        T = solver.state.extra["T"].reshape(2, nx)[0]
        x = np.linspace(L / nx / 2, L - L / nx / 2, nx)
        # threshold well above the first-order scheme's exponential smear
        # tail but far below the ~20 K front amplitude
        reached = x[T > 300.0 + 0.05]
        front = reached.max() if len(reached) else 0.0
        ballistic_reach = vg_max * nsteps * dt
        assert front <= ballistic_reach + 3 * L / nx
        assert front >= 0.3 * min(ballistic_reach, L)

    def test_hot_wall_only_adds_energy(self):
        """With one hot wall and the rest symmetric, total energy is
        non-decreasing every step (flux can only enter)."""
        model = BTEModel(bands=silicon_bands(4),
                         directions=uniform_directions_2d(8))
        scenario = BTEScenario(
            name="input", nx=8, ny=8, ndirs=8, n_freq_bands=4,
            dt=1e-12, nsteps=1, T0=300.0, T_hot=320.0, sigma=1e3,
            hot_regions=(4,), cold_regions=(), symmetry_regions=(1, 2, 3),
        )
        problem, _ = build_bte_problem(scenario, model=model)
        solver = problem.generate()
        V = solver.state.geom.volume
        energies = [float(model.energy_from_intensity(solver.state.u) @ V)]
        for _ in range(25):
            solver.run(1)
            energies.append(float(model.energy_from_intensity(solver.state.u) @ V))
        diffs = np.diff(energies)
        assert np.all(diffs >= -1e-12 * abs(energies[0]))
        assert energies[-1] > energies[0]

    def test_cold_wall_only_removes_energy(self):
        """Mirror case: start hotter than the single cold wall."""
        model = BTEModel(bands=silicon_bands(4),
                         directions=uniform_directions_2d(8))
        scenario = BTEScenario(
            name="drain", nx=8, ny=8, ndirs=8, n_freq_bands=4,
            dt=1e-12, nsteps=1, T0=320.0, T_hot=320.0, sigma=1e3,
            hot_regions=(), cold_regions=(3,), symmetry_regions=(1, 2, 4),
        )
        # cold wall sits at scenario.T0? No: the cold wall uses T0 — so
        # bump the *initial* state above it instead
        problem, model = build_bte_problem(scenario, model=model)
        # cold wall at 320 but initial state hotter: override the initials
        hot_init = model.initial_intensity(340.0)
        problem.initial_values["I"] = hot_init
        problem.extra["T0"] = 340.0
        from repro.bte.equilibrium import equilibrium_intensity
        from repro.bte.scattering import relaxation_times

        problem.initial_values["Io"] = equilibrium_intensity(model.bands, 340.0)
        problem.initial_values["beta"] = relaxation_times(model.bands, 340.0)
        solver = problem.generate()
        V = solver.state.geom.volume
        e0 = float(model.energy_from_intensity(solver.state.u) @ V)
        solver.run(25)
        e1 = float(model.energy_from_intensity(solver.state.u) @ V)
        assert e1 < e0


class TestSpecularWalls:
    def test_tangential_flux_preserved_at_symmetry_wall(self):
        """A specular wall reverses only the normal flux component; a
        beam sliding along the wall keeps doing so."""
        model = BTEModel(bands=silicon_bands(2),
                         directions=uniform_directions_2d(8))
        scenario = BTEScenario(
            name="slide", nx=8, ny=8, ndirs=8, n_freq_bands=2,
            dt=1e-12, nsteps=10, T0=300.0, T_hot=300.0, sigma=1e3,
            hot_regions=(4,), cold_regions=(3,), symmetry_regions=(1, 2),
        )
        problem, _ = build_bte_problem(scenario, model=model)
        solver = problem.generate()
        state = solver.state
        # overload one direction with extra phonons moving in +y (sliding
        # along the left/right symmetry walls)
        d_up = int(np.argmax(model.dirs.sy))
        state.u[model.comp_dir == d_up] *= 1.1
        model.temperature_update(state)
        q0 = model.heat_flux(state.u)
        solver.run(5)
        q1 = model.heat_flux(state.u)
        # the y-flux may decay by relaxation/outflow but must not flip
        assert np.sign(q1[1].mean()) == np.sign(q0[1].mean())

    def test_closed_symmetric_box_preserves_detailed_mirror_symmetry(self):
        """A field prepared mirror-symmetric in x stays mirror-symmetric
        under evolution in an all-specular box."""
        model = BTEModel(bands=silicon_bands(2),
                         directions=uniform_directions_2d(8))
        scenario = BTEScenario(
            name="mirror", nx=8, ny=4, ndirs=8, n_freq_bands=2,
            dt=1e-12, nsteps=1, T0=300.0, T_hot=300.0, sigma=1e3,
            hot_regions=(), cold_regions=(), symmetry_regions=(1, 2, 3, 4),
        )
        problem, _ = build_bte_problem(scenario, model=model)
        solver = problem.generate()
        state = solver.state
        # mirror-symmetric temperature bump in the middle
        x = state.mesh.cell_centroids[:, 0]
        bump = 1.0 + 0.01 * np.exp(-(((x - 0.5 * scenario.lx) / (0.2 * scenario.lx)) ** 2))
        state.u *= bump[None, :]
        model.temperature_update(state)
        solver.run(20)
        T = state.extra["T"].reshape(4, 8)
        assert np.allclose(T, T[:, ::-1], rtol=1e-10)
