"""Generated DSL solver vs the hand-written reference (paper Sec. III-E:
"Our solutions matched theirs") plus physical invariants."""

import numpy as np
import pytest

from repro.bte.problem import BTEScenario, build_bte_problem, hotspot_scenario
from repro.bte.reference import ReferenceBTESolver


class TestAgreement:
    def test_intensity_and_temperature_agree(self, tiny_scenario):
        problem, model = build_bte_problem(tiny_scenario)
        solver = problem.solve()
        ref = ReferenceBTESolver(tiny_scenario, model)
        ref.run()
        scale = np.abs(ref.intensity_dsl_layout()).max()
        assert (
            np.abs(solver.solution() - ref.intensity_dsl_layout()).max()
            < 1e-12 * scale
        )
        assert np.allclose(solver.state.extra["T"], ref.T, atol=1e-10)

    def test_agreement_holds_over_longer_run(self):
        sc = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4, dt=1e-12, nsteps=40)
        problem, model = build_bte_problem(sc)
        solver = problem.solve()
        ref = ReferenceBTESolver(sc, model)
        ref.run()
        scale = np.abs(ref.intensity_dsl_layout()).max()
        assert (
            np.abs(solver.solution() - ref.intensity_dsl_layout()).max()
            < 1e-10 * scale
        )

    def test_agreement_on_corner_scenario(self):
        from repro.bte.problem import corner_source_scenario

        sc = corner_source_scenario(nx=12, ny=6, ndirs=8, n_freq_bands=4,
                                    dt=1e-12, nsteps=10)
        problem, model = build_bte_problem(sc)
        solver = problem.solve()
        ref = ReferenceBTESolver(sc, model)
        ref.run()
        scale = np.abs(ref.intensity_dsl_layout()).max()
        assert (
            np.abs(solver.solution() - ref.intensity_dsl_layout()).max()
            < 1e-10 * scale
        )


class TestPhysicalInvariants:
    def test_uniform_equilibrium_is_steady(self):
        """With every wall at T0 the equilibrium state must not drift."""
        sc = BTEScenario(
            name="steady", nx=6, ny=6, ndirs=8, n_freq_bands=4,
            dt=1e-12, nsteps=20, T_hot=300.0, T0=300.0,
        )
        problem, model = build_bte_problem(sc)
        solver = problem.solve()
        T = solver.state.extra["T"]
        assert np.allclose(T, 300.0, atol=1e-9)

    def test_hot_wall_heats_domain(self):
        # widen the hot spot so a coarse 8x8 grid actually samples it
        sc = hotspot_scenario(nx=8, ny=8, ndirs=8, n_freq_bands=4, dt=1e-12, nsteps=30)
        sc.sigma = 150e-6
        problem, model = build_bte_problem(sc)
        solver = problem.solve()
        T = solver.state.extra["T"]
        assert T.max() > 300.0
        assert T.min() >= 300.0 - 1e-6

    def test_heat_enters_near_the_hot_spot(self):
        sc = hotspot_scenario(nx=16, ny=16, ndirs=8, n_freq_bands=4, dt=1e-12, nsteps=30)
        problem, model = build_bte_problem(sc)
        solver = problem.solve()
        T = solver.state.extra["T"]
        mesh = solver.state.mesh
        x, y = mesh.cell_centroids[:, 0], mesh.cell_centroids[:, 1]
        hottest = int(np.argmax(T))
        # hottest cell sits against the top wall, near the centre in x
        assert y[hottest] > 0.8 * sc.ly
        assert abs(x[hottest] - 0.5 * sc.lx) < 0.2 * sc.lx

    def test_interior_step_conserves_energy_without_walls(self):
        """Relaxation + transport conserve total energy when the domain has
        no energy exchange with the outside (all-symmetric box)."""
        sc = BTEScenario(
            name="closed", nx=6, ny=6, ndirs=8, n_freq_bands=4,
            dt=1e-12, nsteps=15, T0=300.0, T_hot=300.0,
            cold_regions=(), hot_regions=(),
            symmetry_regions=(1, 2, 3, 4),
        )
        problem, model = build_bte_problem(sc)
        # start from a perturbed (non-equilibrium) state; refresh the
        # closure fields (Io, beta) as the real loop would have
        solver = problem.generate()
        state = solver.state
        rng = np.random.default_rng(0)
        state.u = state.u * (1.0 + 0.05 * rng.random(state.u.shape))
        model.temperature_update(state)
        V = state.geom.volume
        E0 = float((model.energy_from_intensity(state.u) * V).sum())
        solver.run()
        E1 = float((model.energy_from_intensity(state.u) * V).sum())
        assert E1 == pytest.approx(E0, rel=1e-9)

    def test_relaxation_drives_isotropy(self):
        """In a closed box an anisotropic perturbation relaxes toward the
        direction-independent equilibrium."""
        sc = BTEScenario(
            name="relax", nx=4, ny=4, ndirs=8, n_freq_bands=4,
            dt=1e-12, nsteps=1, T0=300.0, T_hot=300.0,
            cold_regions=(), hot_regions=(), symmetry_regions=(1, 2, 3, 4),
        )
        problem, model = build_bte_problem(sc)
        solver = problem.generate()
        state = solver.state

        def anisotropy():
            per_dir = state.u.reshape(model.dirs.ndirs, model.bands.nbands, -1)
            return float(np.std(per_dir, axis=0).max())

        # perturb one direction in the softest (longest-tau) band
        state.u[0] *= 1.01
        # refresh Io/beta from the perturbed field, as the real loop would
        model.temperature_update(state)
        a0 = anisotropy()
        solver.run(200)
        assert anisotropy() < a0
