"""Gray (single-band) BTE and the ballistic transport limit.

With one spectral band (``silicon_bands(1)``) the model reduces to the
classic gray BTE.  In a slab much thinner than the phonon mean free path
(Kn >> 1) transport is ballistic: phonons fly wall to wall without
scattering, and the steady interior settles at the Casimir equilibrium —
the energy density is the average of the two wall equilibria, *not* the
linear Fourier profile (the physical regime that motivates the paper's
Sec. I).
"""

import numpy as np
import pytest

from repro.bte import constants as C
from repro.bte.angular import uniform_directions_2d
from repro.bte.dispersion import silicon_bands
from repro.bte.equilibrium import total_energy_density
from repro.bte.model import BTEModel
from repro.bte.problem import BTEScenario, build_bte_problem
from repro.bte.scattering import relaxation_times


@pytest.fixture(scope="module")
def gray_model():
    return BTEModel(bands=silicon_bands(1), directions=uniform_directions_2d(16))


class TestGrayReduction:
    def test_single_polarised_band(self, gray_model):
        assert gray_model.bands.nbands == 1
        assert gray_model.bands.branch == ["LA"]

    def test_mean_free_path_scale(self, gray_model):
        """The gray silicon mean free path at 300 K is O(100 nm) — the
        paper's Sec. I quotes ~300 nm for the dominant carriers."""
        vg = float(gray_model.bands.vg[0])
        tau = float(relaxation_times(gray_model.bands, 300.0)[0])
        mfp = vg * tau
        assert 1e-8 < mfp < 1e-6

    def test_gray_problem_runs_through_dsl(self, gray_model):
        scenario = BTEScenario(
            name="gray", nx=8, ny=8, ndirs=16, n_freq_bands=1,
            dt=1e-12, nsteps=5,
        )
        problem, _ = build_bte_problem(scenario, model=gray_model)
        solver = problem.solve()
        assert solver.state.extra["T"].shape == (64,)


class TestBallisticLimit:
    def test_casimir_interior_equilibrium(self, gray_model):
        """Slab of 50 nm << mfp (~1.4 um at 100 K) between 95 K and 105 K
        walls: the steady interior settles at the Casimir equilibrium with
        large temperature slips at both walls — NOT the Fourier linear
        profile."""
        T1, T2 = 105.0, 95.0
        L = 50e-9
        scenario = BTEScenario(
            name="ballistic-slab", nx=16, ny=2, lx=L, ly=L / 8,
            ndirs=16, n_freq_bands=1,
            dt=2e-13, nsteps=600,  # CFL-safe; several wall-to-wall flights
            T0=T2, T_hot=T1, sigma=1e3,  # huge sigma => uniform hot wall
            cold_regions=(2,), hot_regions=(1,), symmetry_regions=(3, 4),
        )
        problem, model = build_bte_problem(scenario, model=gray_model)
        solver = problem.solve()
        T = solver.state.extra["T"]

        bands = gray_model.bands
        e_casimir = 0.5 * (
            total_energy_density(bands, T1) + total_energy_density(bands, T2)
        )
        e_mid = total_energy_density(bands, float(np.median(T)))
        # interior sits at the Casimir plateau within a few percent
        assert e_mid == pytest.approx(e_casimir, rel=0.05)
        # the plateau is nearly flat: the drop across the interior is a
        # small fraction of what Fourier's linear ramp would give
        x = solver.state.mesh.cell_centroids[:, 0]
        plateau_drop = T[x < L / 3].mean() - T[x > 2 * L / 3].mean()
        fourier_drop = (T1 - T2) / 3  # linear ramp over a third of the slab
        assert abs(plateau_drop) < 0.15 * fourier_drop
        # and there are large temperature slips at both walls — the
        # signature of ballistic transport
        assert T1 - T.max() > 0.3 * (T1 - T2)
        assert T.min() - T2 > 0.3 * (T1 - T2)

    def test_ballistic_flux_below_fourier(self, gray_model):
        """In the ballistic regime the heat flux saturates below the value
        Fourier's law would predict from the local gradient — the breakdown
        the paper's introduction describes."""
        T1, T2 = 105.0, 95.0
        L = 50e-9
        scenario = BTEScenario(
            name="ballistic-flux", nx=16, ny=2, lx=L, ly=L / 8,
            ndirs=16, n_freq_bands=1,
            dt=2e-13, nsteps=600,
            T0=T2, T_hot=T1, sigma=1e3,
            cold_regions=(2,), hot_regions=(1,), symmetry_regions=(3, 4),
        )
        problem, model = build_bte_problem(scenario, model=gray_model)
        solver = problem.solve()
        q = model.heat_flux(solver.solution())
        q_x = float(np.mean(q[0]))
        assert q_x > 0  # heat flows hot -> cold (+x)

        # Fourier with the gray kinetic conductivity k = C vg mfp / 3
        from repro.bte.equilibrium import _band_heat_capacity

        Tm = 100.0
        Cv = float(_band_heat_capacity(gray_model.bands, np.array([Tm])).sum())
        vg = float(gray_model.bands.vg[0])
        mfp = vg * float(relaxation_times(gray_model.bands, Tm)[0])
        k_fourier = Cv * vg * mfp / 3.0
        q_fourier = k_fourier * (T1 - T2) / L
        assert q_x < 0.5 * q_fourier
