"""Thermal-conductivity extraction (size effect, the ref-[15] application)."""

import numpy as np
import pytest

from repro.bte.angular import uniform_directions_2d
from repro.bte.conductivity import (
    bulk_conductivity,
    effective_conductivity,
    majumdar_eprt,
    mean_free_path,
    size_effect_curve,
)
from repro.bte.dispersion import silicon_bands
from repro.bte.model import BTEModel
from repro.util.errors import SolverError


@pytest.fixture(scope="module")
def gray_model():
    return BTEModel(bands=silicon_bands(1), directions=uniform_directions_2d(16))


class TestBulkProperties:
    def test_bulk_conductivity_magnitude(self, gray_model):
        """A single gray band underestimates real silicon, but the value
        must land in a physically sensible window."""
        k = bulk_conductivity(gray_model, 100.0)
        assert 50.0 < k < 2000.0

    def test_bulk_conductivity_multiband_larger(self, gray_model):
        """More bands capture low-frequency long-mfp carriers and raise k."""
        multi = BTEModel(bands=silicon_bands(10),
                         directions=uniform_directions_2d(16))
        assert bulk_conductivity(multi, 100.0) > bulk_conductivity(gray_model, 100.0)

    def test_mean_free_path_scale(self, gray_model):
        assert 1e-7 < mean_free_path(gray_model, 100.0) < 1e-5

    def test_eprt_limits(self):
        assert majumdar_eprt(0.0) == 1.0
        assert majumdar_eprt(100.0) < 0.01


@pytest.fixture(scope="module")
def curve(gray_model):
    return size_effect_curve(gray_model, [10.0, 3.0, 1.0])


class TestSizeEffect:
    def test_suppression_monotone_in_knudsen(self, curve):
        s = [r.suppression for r in curve]
        assert s[0] < s[1] < s[2]

    def test_always_below_bulk(self, curve):
        for r in curve:
            assert 0.0 < r.suppression < 1.0

    def test_tracks_eprt_interpolation(self, curve):
        """Within ~35 % of Majumdar's formula across the sweep (the formula
        itself is approximate in the transition regime; first-order angular
        and spatial discretisation account for the rest)."""
        for r in curve:
            assert r.suppression == pytest.approx(
                float(majumdar_eprt(r.knudsen)), rel=0.35
            )

    def test_ballistic_asymptote(self, gray_model):
        """Kn >> 1: k_eff/k_bulk -> 3 / (4 Kn) (the Casimir conductance)."""
        r = effective_conductivity(
            gray_model, mean_free_path(gray_model, 100.0) / 20.0, 105.0, 95.0
        )
        assert r.suppression == pytest.approx(3.0 / (4.0 * 20.0), rel=0.35)

    def test_flux_positive_and_steady(self, curve):
        for r in curve:
            assert r.flux > 0
            assert r.steps_run > 0

    def test_inverted_walls_rejected(self, gray_model):
        with pytest.raises(SolverError):
            effective_conductivity(gray_model, 1e-7, 95.0, 105.0)
