"""Global energy budget: an exact discrete identity of the solver.

For forward Euler, one step changes the domain's total phonon energy by
exactly ``-dt * (net outward wall flux)``: interior face fluxes telescope
away in the volume-weighted sum (Gauss), and the 1/tau-weighted closure
makes the relaxation source vanish identically.  This test asserts the
identity against the *independently computed* wall fluxes of
:func:`repro.codegen.probes.wall_heat_flux` — boundary callbacks, ghost
construction and the divergence operator must all agree for it to hold.
"""

import numpy as np
import pytest

from repro.bte.problem import BTEScenario, build_bte_problem, hotspot_scenario
from repro.codegen.probes import wall_heat_flux


def total_energy(state, model) -> float:
    return float(model.energy_from_intensity(state.u) @ state.geom.volume)


@pytest.mark.parametrize(
    "scenario_kwargs",
    [
        dict(nx=8, ny=8, ndirs=8, n_freq_bands=4),
        dict(nx=6, ny=10, ndirs=12, n_freq_bands=3),
    ],
)
def test_energy_change_equals_wall_flux(scenario_kwargs):
    scenario = hotspot_scenario(dt=1e-12, nsteps=1, **scenario_kwargs)
    scenario.sigma = 150e-6
    problem, model = build_bte_problem(scenario)
    solver = problem.generate()
    state = solver.state

    for _ in range(4):  # repeat along a transient: must hold at every step
        E0 = total_energy(state, model)
        flux_out = sum(
            wall_heat_flux(state, model, region)
            for region in state.mesh.boundary_regions()
        )
        solver.step()  # transport only
        E1 = total_energy(state, model)
        # the identity is exact up to the pseudo-temperature Newton
        # tolerance (the relaxation source vanishes only to that residual)
        assert (E1 - E0) / state.dt == pytest.approx(-flux_out, rel=1e-5)
        model.temperature_update(state)  # refresh the closure for next step


def test_budget_holds_with_gpu_target():
    scenario = hotspot_scenario(nx=10, ny=10, ndirs=8, n_freq_bands=5,
                                dt=1e-12, nsteps=1)
    scenario.sigma = 150e-6
    problem, model = build_bte_problem(scenario)
    problem.enable_gpu()
    problem.extra["gpu_force_offload"] = True
    solver = problem.generate()
    state = solver.state
    E0 = total_energy(state, model)
    flux_out = sum(
        wall_heat_flux(state, model, r) for r in state.mesh.boundary_regions()
    )
    solver.step()
    E1 = total_energy(state, model)
    assert (E1 - E0) / state.dt == pytest.approx(-flux_out, rel=1e-9)


def test_stable_dt_utility():
    from repro.bte.angular import uniform_directions_2d
    from repro.bte.dispersion import silicon_bands
    from repro.bte.model import BTEModel
    from repro.mesh.grid import structured_grid

    model = BTEModel(bands=silicon_bands(10),
                     directions=uniform_directions_2d(8))
    mesh = structured_grid((32, 32), [(0.0, 100e-6), (0.0, 100e-6)])
    dt = model.stable_dt(mesh)
    assert 0 < dt < 1e-10
    # and a run at that dt is actually stable
    scenario = hotspot_scenario(nx=32, ny=32, ndirs=8, n_freq_bands=10,
                                dt=dt, nsteps=30)
    scenario.lx = scenario.ly = 100e-6
    problem, _ = build_bte_problem(scenario, model=model)
    solver = problem.solve()  # check_health raises on blow-up
    assert np.all(np.isfinite(solver.state.extra["T"]))
