"""Coarse 3-D BTE (paper Sec. III-A: "Some very coarse-grained
3-dimensional runs were also performed successfully")."""

import math

import numpy as np
import pytest

from repro.bte.angular import product_directions_3d, reflection_map
from repro.bte.problem import build_bte_problem_3d, coarse_3d_scenario
from repro.util.errors import ConfigError


class TestProductOrdinates:
    def test_counts_and_weights(self):
        ds = product_directions_3d(8, 4)
        assert ds.ndirs == 32
        assert ds.dim == 3
        assert ds.weights.sum() == pytest.approx(4 * math.pi)
        assert np.allclose(np.linalg.norm(ds.vectors, axis=1), 1.0)

    def test_paper_quoted_size(self):
        """'around 20 x 20 = 400' for general 3-D problems."""
        ds = product_directions_3d(20, 20)
        assert ds.ndirs == 400

    def test_balanced(self):
        ds = product_directions_3d(8, 4)
        moment = (ds.vectors * ds.weights[:, None]).sum(axis=0)
        assert np.allclose(moment, 0.0, atol=1e-12)

    def test_second_moment_near_isotropic(self):
        """Equal-solid-angle ordinates integrate s_i s_j to ~(4pi/3) I:
        off-diagonals vanish exactly, the trace is exactly 4pi (unit
        vectors), diagonals carry only the O(1/n^2) midpoint error."""
        ds = product_directions_3d(12, 6)
        M = np.einsum("d,di,dj->ij", ds.weights, ds.vectors, ds.vectors)
        off = M - np.diag(np.diag(M))
        assert np.allclose(off, 0.0, atol=1e-12)
        assert np.trace(M) == pytest.approx(4 * math.pi, rel=1e-12)
        assert np.allclose(np.diag(M), 4 * math.pi / 3, rtol=0.05)
        # refinement shrinks the error
        fine = product_directions_3d(12, 12)
        Mf = np.einsum("d,di,dj->ij", fine.weights, fine.vectors, fine.vectors)
        err_coarse = abs(M[2, 2] - 4 * math.pi / 3)
        err_fine = abs(Mf[2, 2] - 4 * math.pi / 3)
        assert err_fine < err_coarse

    @pytest.mark.parametrize("normal", [
        [1.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, 1.0],
    ])
    def test_axis_plane_reflections_exact(self, normal):
        ds = product_directions_3d(8, 4)
        r = reflection_map(ds, np.array(normal))
        assert sorted(r.tolist()) == list(range(32))

    @pytest.mark.parametrize("n_az,n_pol", [(3, 4), (8, 3), (2, 2), (8, 0)])
    def test_invalid_counts(self, n_az, n_pol):
        with pytest.raises(ConfigError):
            product_directions_3d(n_az, n_pol)


class TestCoarse3DRun:
    @pytest.fixture(scope="class")
    def solved(self):
        scenario = coarse_3d_scenario(
            nx=6, ny=6, nz=6, n_azimuthal=8, n_polar=4,
            n_freq_bands=4, dt=1e-12, nsteps=10,
        )
        problem, model = build_bte_problem_3d(scenario)
        solver = problem.solve()
        return scenario, model, solver

    def test_runs_and_heats_from_the_top_face(self, solved):
        scenario, model, solver = solved
        T = solver.state.extra["T"].reshape(scenario.nz, scenario.ny, scenario.nx)
        assert T.max() > scenario.T0
        # the hot face is z-max
        assert T[-1].max() == T.max()
        assert T[0].max() == pytest.approx(scenario.T0, abs=1e-6)

    def test_lateral_symmetry(self, solved):
        """Specular side walls + centred source: the field is symmetric in
        both lateral directions."""
        scenario, model, solver = solved
        T = solver.state.extra["T"].reshape(scenario.nz, scenario.ny, scenario.nx)
        assert np.allclose(T, T[:, :, ::-1], rtol=1e-9)
        assert np.allclose(T, T[:, ::-1, :], rtol=1e-9)

    def test_equation_uses_three_normal_components(self, solved):
        _, _, solver = solved
        assert "NORMAL_3" in str(solver.expanded_expr)
        assert "normal_z" in solver.source

    def test_3d_equilibrium_steady(self):
        scenario = coarse_3d_scenario(
            nx=4, ny=4, nz=4, n_azimuthal=8, n_polar=4,
            n_freq_bands=3, dt=1e-12, nsteps=8, T_hot=300.0,
        )
        problem, _ = build_bte_problem_3d(scenario)
        solver = problem.solve()
        assert np.allclose(solver.state.extra["T"], 300.0, atol=1e-9)
