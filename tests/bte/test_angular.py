"""Discrete ordinates and specular reflection maps."""

import math

import numpy as np
import pytest

from repro.bte.angular import (
    component_reflection_map,
    reflection_map,
    uniform_directions_2d,
)
from repro.util.errors import ConfigError


class TestUniformDirections:
    @pytest.mark.parametrize("n", [4, 8, 16, 20])
    def test_counts_and_weights(self, n):
        ds = uniform_directions_2d(n)
        assert ds.ndirs == n
        assert ds.weights.sum() == pytest.approx(4 * math.pi)
        assert np.allclose(np.linalg.norm(ds.vectors, axis=1), 1.0)

    def test_first_moment_vanishes(self):
        ds = uniform_directions_2d(12)
        assert np.allclose((ds.vectors * ds.weights[:, None]).sum(axis=0), 0.0, atol=1e-12)

    def test_half_offset_avoids_axis_alignment(self):
        ds = uniform_directions_2d(8)
        # no ordinate exactly parallel to a wall normal
        assert np.abs(ds.sx).min() > 1e-6
        assert np.abs(ds.sy).min() > 1e-6

    @pytest.mark.parametrize("n", [3, 5, 2, 0])
    def test_invalid_counts(self, n):
        with pytest.raises(ConfigError):
            uniform_directions_2d(n)


class TestReflectionMaps:
    @pytest.mark.parametrize("normal", [[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    def test_axis_walls_have_exact_maps(self, normal):
        ds = uniform_directions_2d(16)
        r = reflection_map(ds, np.array(normal))
        # involution and permutation
        assert sorted(r.tolist()) == list(range(16))
        assert np.array_equal(r[r], np.arange(16))

    def test_reflection_reverses_normal_component(self):
        ds = uniform_directions_2d(12)
        n = np.array([1.0, 0.0])
        r = reflection_map(ds, n)
        for d in range(12):
            assert ds.vectors[r[d]] @ n == pytest.approx(-(ds.vectors[d] @ n))
            # tangential component preserved
            assert ds.vectors[r[d]][1] == pytest.approx(ds.vectors[d][1])

    def test_no_direction_maps_to_itself_for_offset_sets(self):
        ds = uniform_directions_2d(8)
        r = reflection_map(ds, np.array([1.0, 0.0]))
        assert np.all(r != np.arange(8))

    def test_oblique_wall_rejected_when_set_incompatible(self):
        ds = uniform_directions_2d(8)
        with pytest.raises(ConfigError, match="does not land"):
            reflection_map(ds, np.array([1.0, 0.3]))

    def test_diagonal_wall_works_for_compatible_set(self):
        # 8 half-offset ordinates are symmetric about the 45-degree axis
        ds = uniform_directions_2d(8)
        r = reflection_map(ds, np.array([1.0, 1.0]) / math.sqrt(2))
        assert sorted(r.tolist()) == list(range(8))


class TestComponentLift:
    def test_band_index_preserved(self):
        dmap = np.array([1, 0, 3, 2])
        comp = component_reflection_map(dmap, nbands=3)
        # component (d, b) -> (dmap[d], b), row-major
        assert comp.tolist() == [3, 4, 5, 0, 1, 2, 9, 10, 11, 6, 7, 8]

    def test_is_permutation(self):
        dmap = np.array([2, 3, 0, 1])
        comp = component_reflection_map(dmap, nbands=5)
        assert sorted(comp.tolist()) == list(range(20))
