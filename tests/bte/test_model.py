"""BTEModel: reductions, callbacks, reflection maps."""

import numpy as np
import pytest

from repro.bte.angular import uniform_directions_2d
from repro.bte.dispersion import silicon_bands
from repro.bte.equilibrium import equilibrium_intensity, total_energy_density
from repro.bte.model import BTEModel
from repro.util.errors import ConfigError


@pytest.fixture
def model():
    return BTEModel(bands=silicon_bands(6), directions=uniform_directions_2d(8))


class TestComponentLayout:
    def test_ncomp(self, model):
        assert model.ncomp == 8 * model.bands.nbands

    def test_comp_axes_row_major(self, model):
        nb = model.bands.nbands
        assert model.comp_dir[0] == 0 and model.comp_band[0] == 0
        assert model.comp_dir[nb] == 1 and model.comp_band[nb] == 0
        assert model.comp_band[1] == 1

    def test_vg_per_component(self, model):
        assert np.allclose(model.vg_comp, model.bands.vg[model.comp_band])


class TestEnergyReduction:
    def test_equilibrium_energy_closes(self, model):
        """E(I0(T)) == E(T): the reduction is consistent with the
        equilibrium construction (this is what makes the SMRT step
        energy-conserving)."""
        T = 321.0
        I = model.initial_intensity(T)[:, None] * np.ones((model.ncomp, 10))
        E = model.energy_from_intensity(I)
        assert np.allclose(E, total_energy_density(model.bands, T), rtol=1e-12)

    def test_shape_check(self, model):
        with pytest.raises(ConfigError):
            model.energy_from_intensity(np.zeros((3, 10)))

    def test_heat_flux_zero_at_equilibrium(self, model):
        I = model.initial_intensity(300.0)[:, None] * np.ones((model.ncomp, 5))
        q = model.heat_flux(I)
        assert np.allclose(q, 0.0, atol=1e-8 * np.abs(I).max())

    def test_heat_flux_points_along_anisotropy(self, model):
        I = np.zeros((model.ncomp, 1))
        # load only the ordinate closest to +x
        d_plus = int(np.argmax(model.dirs.sx))
        I[model.comp_dir == d_plus] = 1.0
        q = model.heat_flux(I)
        assert q[0, 0] > 0
        assert abs(q[0, 0]) > abs(q[1, 0]) * 0.5


class TestIsothermalCallback:
    def test_signed_integrand_signs(self, model):
        """Outgoing directions (s.n > 0) upwind the interior value; incoming
        pick the wall equilibrium (Eq. 6)."""
        nf = 3
        normals = np.tile(np.array([[0.0, -1.0]]), (nf, 1))  # bottom wall
        I_owner = np.full((model.ncomp, nf), 2.0)
        out = model.isothermal(
            None,
            I_owner,
            model.bands.vg,
            model.dirs.sx,
            model.dirs.sy,
            None,
            None,
            normals,
            300.0,
        )
        assert out.shape == (model.ncomp, nf)
        sdotn = model.dirs.sy[model.comp_dir] * -1.0
        ghost = equilibrium_intensity(model.bands, 300.0)[model.comp_band]
        expected = -(model.vg_comp * sdotn) * np.where(sdotn > 0, 2.0, ghost)
        assert np.allclose(out[:, 0], expected)

    def test_equilibrium_wall_absorbs_nothing_net(self, model):
        """If the interior already sits at the wall temperature, the net
        energy flux through the wall vanishes."""
        T = 300.0
        nf = 1
        normals = np.array([[0.0, -1.0]])
        I_owner = model.initial_intensity(T)[:, None] * np.ones((model.ncomp, nf))
        out = model.isothermal(
            None, I_owner, model.bands.vg, model.dirs.sx, model.dirs.sy,
            None, None, normals, T,
        )
        net = (model.weight_comp @ out[:, 0])
        assert net == pytest.approx(0.0, abs=1e-10 * np.abs(out).max())


class TestProfileCallback:
    def test_profile_bc_shape_and_variation(self, model):
        profile = lambda centers: 300.0 + 50.0 * centers[:, 0]  # noqa: E731

        cb = model.make_isothermal_profile_bc(profile)
        from repro.fvm.boundary import BoundaryContext

        nf = 4
        ctx = BoundaryContext(
            region=4,
            faces=np.arange(nf),
            normals=np.tile([[0.0, 1.0]], (nf, 1)),
            centers=np.stack([np.linspace(0, 1, nf), np.ones(nf)], axis=1),
            areas=np.ones(nf),
            owner_cells=np.arange(nf),
            owner_values=np.full((model.ncomp, nf), 1.0),
            time=0.0,
            dt=1e-12,
        )
        out = cb(ctx)
        assert out.shape == (model.ncomp, nf)
        # hotter wall -> larger incoming ghost intensity magnitude
        incoming = model.dirs.sy[model.comp_dir] > 0  # s.n > 0 is outgoing here
        mag = np.abs(out[~incoming])
        assert mag[:, -1].mean() > mag[:, 0].mean()

    def test_profile_shape_mismatch_raises(self, model):
        cb = model.make_isothermal_profile_bc(lambda centers: np.zeros(2))
        from repro.fvm.boundary import BoundaryContext

        ctx = BoundaryContext(
            region=4, faces=np.arange(3),
            normals=np.tile([[0.0, 1.0]], (3, 1)),
            centers=np.zeros((3, 2)), areas=np.ones(3),
            owner_cells=np.arange(3),
            owner_values=np.zeros((model.ncomp, 3)),
            time=0.0, dt=1.0,
        )
        with pytest.raises(ConfigError):
            cb(ctx)


class TestSymmetryMaps:
    @pytest.mark.parametrize("normal", [[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    def test_component_permutation(self, model, normal):
        m = model.symmetry_map(np.array(normal))
        assert sorted(m.tolist()) == list(range(model.ncomp))
        # bands never mix under reflection
        assert np.array_equal(model.comp_band[m], model.comp_band)
