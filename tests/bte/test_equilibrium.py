"""Bose-Einstein statistics and the temperature inversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bte import constants as C
from repro.bte.dispersion import silicon_bands
from repro.bte.equilibrium import (
    band_energy_density,
    bose_einstein,
    energy_to_temperature,
    equilibrium_intensity,
    total_energy_density,
)
from repro.util.errors import SolverError


class TestBoseEinstein:
    def test_low_frequency_classical_limit(self):
        """hbar w << kB T: n ~ kB T / (hbar w)."""
        w = 1e10
        n = bose_einstein(np.array([w]), 300.0)[0]
        assert n == pytest.approx(C.KB * 300.0 / (C.HBAR * w), rel=1e-3)

    def test_high_frequency_exponential_suppression(self):
        w = 5e14
        n = bose_einstein(np.array([w]), 300.0)[0]
        assert n < 1e-5

    def test_monotone_in_temperature(self):
        w = np.array([2e13])
        assert bose_einstein(w, 400.0) > bose_einstein(w, 200.0)


class TestEnergyDensity:
    def test_total_energy_increases_with_temperature(self):
        bands = silicon_bands(20)
        Ts = np.array([200.0, 250.0, 300.0, 350.0, 400.0])
        E = np.array([total_energy_density(bands, float(t)) for t in Ts])
        assert np.all(np.diff(E) > 0)

    def test_room_temperature_magnitude(self):
        """Phonon energy density of silicon at 300 K is O(1e5..1e6) J/m^3
        above the zero-point (occupancy-only) level."""
        bands = silicon_bands(40)
        E = total_energy_density(bands, 300.0)
        assert 1e7 < E < 1e9

    def test_band_resolved_shapes(self):
        bands = silicon_bands(10)
        e_scalar = band_energy_density(bands, 300.0)
        assert e_scalar.shape == (bands.nbands,)
        e_field = band_energy_density(bands, np.array([300.0, 310.0]))
        assert e_field.shape == (bands.nbands, 2)

    def test_intensity_is_energy_over_4pi(self):
        bands = silicon_bands(10)
        e = band_energy_density(bands, 300.0)
        Io = equilibrium_intensity(bands, 300.0)
        assert np.allclose(Io * 4 * np.pi, e)


class TestTemperatureInversion:
    def test_roundtrip_scalar_grid(self):
        bands = silicon_bands(20)
        T_true = np.array([250.0, 300.0, 333.3, 400.0])
        E = total_energy_density(bands, T_true)
        T = energy_to_temperature(bands, E, T_guess=300.0)
        assert np.allclose(T, T_true, rtol=1e-8)

    def test_warm_start_converges_fast(self):
        bands = silicon_bands(20)
        T_true = np.full(100, 305.0)
        E = total_energy_density(bands, T_true)
        T = energy_to_temperature(bands, E, T_guess=np.full(100, 300.0), max_iter=6)
        assert np.allclose(T, 305.0, rtol=1e-8)

    def test_nonpositive_energy_rejected(self):
        bands = silicon_bands(5)
        with pytest.raises(SolverError):
            energy_to_temperature(bands, np.array([0.0]))

    @given(temp=st.floats(min_value=150.0, max_value=800.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, temp):
        bands = silicon_bands(8)
        E = total_energy_density(bands, temp)
        T = energy_to_temperature(bands, np.array([E]), T_guess=300.0)
        assert T[0] == pytest.approx(temp, rel=1e-7)

    def test_vector_of_mixed_temperatures(self):
        bands = silicon_bands(12)
        rng = np.random.default_rng(1)
        T_true = rng.uniform(250, 420, size=500)
        E = total_energy_density(bands, T_true)
        T = energy_to_temperature(bands, E, T_guess=np.full(500, 300.0))
        assert np.allclose(T, T_true, rtol=1e-8)
