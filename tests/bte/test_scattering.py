"""Relaxation-time model."""

import numpy as np
import pytest

from repro.bte import constants as C
from repro.bte.dispersion import silicon_bands
from repro.bte.scattering import (
    impurity_rate,
    la_phonon_rate,
    relaxation_times,
    ta_phonon_rate,
)


class TestRates:
    def test_impurity_omega4(self):
        w = np.array([1e13, 2e13])
        r = impurity_rate(w)
        assert r[1] / r[0] == pytest.approx(16.0)

    def test_la_rate_t_cubed(self):
        w = np.array([1e13])
        assert la_phonon_rate(w, 600.0) / la_phonon_rate(w, 300.0) == pytest.approx(8.0)

    def test_ta_rate_piecewise_continuity_domains(self):
        # below the crossover: linear in omega; above: Umklapp expression
        low = ta_phonon_rate(np.array([C.OMEGA_12 * 0.5]), 300.0)
        high = ta_phonon_rate(np.array([C.OMEGA_12 * 1.5]), 300.0)
        assert low > 0 and high > 0

    def test_rates_positive_over_spectrum(self):
        bands = silicon_bands(40)
        for T in (200.0, 300.0, 400.0):
            tau = relaxation_times(bands, T)
            assert np.all(tau > 0)
            assert np.all(np.isfinite(tau))


class TestRelaxationTimes:
    def test_scalar_temperature_shape(self):
        bands = silicon_bands(10)
        tau = relaxation_times(bands, 300.0)
        assert tau.shape == (bands.nbands,)

    def test_array_temperature_shape(self):
        bands = silicon_bands(10)
        T = np.linspace(280, 350, 7)
        tau = relaxation_times(bands, T)
        assert tau.shape == (bands.nbands, 7)

    def test_hotter_scatters_faster(self):
        """tau decreases with T for every band (Umklapp/normal grow with T)."""
        bands = silicon_bands(20)
        tau_cold = relaxation_times(bands, 250.0)
        tau_hot = relaxation_times(bands, 400.0)
        assert np.all(tau_hot < tau_cold)

    def test_high_frequency_scatters_faster_within_branch(self):
        bands = silicon_bands(20)
        tau = relaxation_times(bands, 300.0)
        la = [i for i, b in enumerate(bands.branch) if b == "LA"]
        assert tau[la[-1]] < tau[la[0]]

    def test_magnitude_reasonable_at_room_temperature(self):
        """Relaxation times for silicon at 300 K span ~1e-12..1e-8 s."""
        bands = silicon_bands(40)
        tau = relaxation_times(bands, 300.0)
        assert 1e-13 < tau.min() < 1e-9
        assert 1e-12 < tau.max() < 1e-6

    def test_consistency_scalar_vs_array(self):
        bands = silicon_bands(8)
        tau_s = relaxation_times(bands, 300.0)
        tau_a = relaxation_times(bands, np.array([300.0, 300.0]))
        assert np.allclose(tau_a[:, 0], tau_s)
        assert np.allclose(tau_a[:, 1], tau_s)
