"""Silicon dispersion and band discretisation."""

import numpy as np
import pytest

from repro.bte import constants as C
from repro.bte.dispersion import LA_BRANCH, TA_BRANCH, silicon_bands
from repro.util.errors import ConfigError


class TestBranches:
    def test_la_omega_max_reference_value(self):
        # the quadratic fit puts the LA zone edge near 7.75e13 rad/s
        assert LA_BRANCH.omega_max == pytest.approx(7.75e13, rel=0.01)

    def test_ta_omega_max_reference_value(self):
        assert TA_BRANCH.omega_max == pytest.approx(3.0e13, rel=0.05)

    def test_dispersion_monotone_up_to_zone_edge(self):
        for br in (LA_BRANCH, TA_BRANCH):
            k = np.linspace(0, br.k_max, 200)
            w = br.omega(k)
            assert np.all(np.diff(w) >= -1e-6)

    def test_k_of_omega_roundtrip(self):
        for br in (LA_BRANCH, TA_BRANCH):
            k = np.linspace(br.k_max * 0.01, br.k_max * 0.99, 50)
            w = br.omega(k)
            assert np.allclose(br.k_of_omega(w), k, rtol=1e-10)

    def test_k_of_omega_range_check(self):
        with pytest.raises(ConfigError):
            LA_BRANCH.k_of_omega(LA_BRANCH.omega_max * 1.5)
        with pytest.raises(ConfigError):
            LA_BRANCH.k_of_omega(-1.0)

    def test_group_velocity_decreases_with_k(self):
        k = np.linspace(0, LA_BRANCH.k_max, 50)
        vg = LA_BRANCH.group_velocity(k)
        assert vg[0] == pytest.approx(C.LA_VS)
        assert np.all(np.diff(vg) < 0)

    def test_ta_velocity_vanishes_at_zone_edge(self):
        assert TA_BRANCH.group_velocity(TA_BRANCH.k_max) == pytest.approx(0.0, abs=1.0)

    def test_dos_positive(self):
        k = np.linspace(1e8, LA_BRANCH.k_max, 20)
        vg = LA_BRANCH.group_velocity(k)
        assert np.all(LA_BRANCH.dos(k, vg) > 0)

    def test_ta_degeneracy_doubles_dos(self):
        k = 1e9
        vg_la = LA_BRANCH.group_velocity(k)
        vg_ta = TA_BRANCH.group_velocity(k)
        # per unit (k^2 / 2 pi^2 vg), TA carries twice the states
        assert TA_BRANCH.dos(k, vg_ta) / (k**2 / (2 * np.pi**2 * vg_ta)) == 2


class TestBandSet:
    def test_paper_band_counts(self):
        """40 frequency bands -> 40 LA + 15 TA = 55 polarised bands
        (paper Sec. I and III-A)."""
        bands = silicon_bands(40)
        assert bands.nbands == 55
        assert bands.n_la == 40
        assert bands.n_ta == 15

    @pytest.mark.parametrize("n", [1, 5, 10, 80])
    def test_other_band_counts_consistent(self, n):
        bands = silicon_bands(n)
        assert bands.n_la == n
        assert 0 <= bands.n_ta <= n
        assert bands.nbands == bands.n_la + bands.n_ta

    def test_band_widths_cover_la_spectrum(self):
        bands = silicon_bands(40)
        la = [i for i, b in enumerate(bands.branch) if b == "LA"]
        assert np.isclose(bands.domega[la].sum(), LA_BRANCH.omega_max, rtol=1e-12)

    def test_group_velocities_physical(self):
        bands = silicon_bands(40)
        assert np.all(bands.vg > 0)
        assert bands.vg.max() <= C.LA_VS * 1.001

    def test_ta_bands_are_low_frequency(self):
        bands = silicon_bands(40)
        ta = [i for i, b in enumerate(bands.branch) if b == "TA"]
        assert bands.omega[ta].max() <= TA_BRANCH.omega_max

    def test_freq_band_back_reference(self):
        bands = silicon_bands(10)
        # the LA entries enumerate frequency bands 0..9 in order
        la = [i for i, b in enumerate(bands.branch) if b == "LA"]
        assert bands.freq_band[la].tolist() == list(range(10))

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            silicon_bands(0)
