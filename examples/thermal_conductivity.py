"""Thermal-conductivity size effect from BTE film simulations.

The application behind the paper's reference [15]: run the BTE across a
thin film between two isothermal walls, read the steady heat flux, and
extract the *effective* cross-plane conductivity.  Sweeping the film
thickness maps the classical size effect — k_eff collapses below the bulk
value once the film is thinner than the phonon mean free path, which is
precisely why the paper's sub-micron devices need the BTE instead of
Fourier's law.

The gray (single-band) results are compared against Majumdar's EPRT
interpolation 1 / (1 + 4 Kn / 3).

Run:  python examples/thermal_conductivity.py
"""

import numpy as np

from repro.bte.angular import uniform_directions_2d
from repro.bte.conductivity import (
    bulk_conductivity,
    majumdar_eprt,
    mean_free_path,
    size_effect_curve,
)
from repro.bte.dispersion import silicon_bands
from repro.bte.model import BTEModel


def main() -> None:
    model = BTEModel(bands=silicon_bands(1), directions=uniform_directions_2d(16))
    T = 100.0
    mfp = mean_free_path(model, T)
    k_bulk = bulk_conductivity(model, T)
    print(f"gray silicon model at {T:.0f} K:")
    print(f"  mean free path      : {mfp * 1e9:.0f} nm")
    print(f"  bulk conductivity   : {k_bulk:.1f} W/m-K")
    print()

    # the ballistic/transition regime of the paper's devices; Kn << 1
    # (deep-diffusive) films need ~1e6 explicit steps — see the module note
    knudsen = [10.0, 3.0, 1.0]
    print(f"{'Kn':>6} {'L [nm]':>9} {'k_eff [W/m-K]':>14} "
          f"{'k_eff/k_bulk':>13} {'EPRT':>7} {'steps':>7}")
    results = size_effect_curve(model, knudsen)
    for r in results:
        print(f"{r.knudsen:>6.1f} {r.thickness * 1e9:>9.0f} {r.k_eff:>14.2f} "
              f"{r.suppression:>13.3f} {float(majumdar_eprt(r.knudsen)):>7.3f} "
              f"{r.steps_run:>7}")

    suppressions = [r.suppression for r in results]
    assert suppressions == sorted(suppressions), "suppression must ease as Kn falls"
    print("\nthe thinner the film, the further k_eff falls below bulk —")
    print("Fourier's law (which would give k_eff = k_bulk at every L) breaks")
    print("down exactly where the paper's devices live (paper Sec. I).")


if __name__ == "__main__":
    main()
