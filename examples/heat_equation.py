"""Heat conduction via the ``diffuse`` operator — and why it is not enough.

Demonstrates two things:

1. The DSL's operator extensibility (paper Sec. II-A: "a more sophisticated
   flux reconstruction could be created and used in the input expression
   similar to upwind"): ``surface(diffuse(D, u))`` assembles the standard
   two-point diffusive flux, giving Fourier heat conduction
   ``du/dt = div(D grad u)``.
2. The physical motivation of the paper's Section I: Fourier's law is the
   *continuum* description that breaks down at sub-micron scales — the BTE
   examples model what this script cannot.

Verifies the solver against the exact decay of Fourier modes in 1-D and
2-D, and shows second-order spatial convergence of the two-point flux.

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid


def solve_sine_decay_1d(n: int, D: float = 0.7, t_end: float = 0.02,
                        dt: float | None = None) -> float:
    """Return the max error vs the exact decayed sine mode."""
    dt = dt if dt is not None else 0.2 * (1.0 / n) ** 2 / D
    problem = Problem(f"heat1d-{n}")
    problem.set_domain(1)
    problem.set_steps(dt, int(round(t_end / dt)))
    problem.set_mesh(structured_grid((n,)))
    problem.add_variable("u")
    problem.add_coefficient("D", D)
    problem.add_boundary("u", 1, BCKind.DIRICHLET, 0.0)
    problem.add_boundary("u", 2, BCKind.DIRICHLET, 0.0)
    problem.set_initial("u", lambda x: np.sin(np.pi * x[:, 0]))
    problem.set_conservation_form("u", "surface(diffuse(D, u))")
    solver = problem.solve()
    x = solver.state.mesh.cell_centroids[:, 0]
    exact = np.exp(-D * np.pi**2 * t_end) * np.sin(np.pi * x)
    return float(np.abs(solver.solution()[0] - exact).max())


def solve_2d_mode(n: int = 24, D: float = 1.0, t_end: float = 0.01) -> float:
    dt = 0.2 * (1.0 / n) ** 2 / D
    problem = Problem("heat2d")
    problem.set_domain(2)
    problem.set_steps(dt, int(round(t_end / dt)))
    problem.set_mesh(structured_grid((n, n)))
    problem.add_variable("u")
    problem.add_coefficient("D", D)
    for region in (1, 2, 3, 4):
        problem.add_boundary("u", region, BCKind.DIRICHLET, 0.0)
    problem.set_initial(
        "u", lambda x: np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1])
    )
    problem.set_conservation_form("u", "surface(diffuse(D, u))")
    solver = problem.solve()
    c = solver.state.mesh.cell_centroids
    exact = np.exp(-2 * D * np.pi**2 * t_end) * np.sin(np.pi * c[:, 0]) * np.sin(
        np.pi * c[:, 1]
    )
    return float(np.abs(solver.solution()[0] - exact).max())


def main() -> None:
    print("1-D sine-mode decay, du/dt = div(D grad u):")
    # fixed fine dt so the study isolates the *spatial* error
    dt_fine = 0.2 * (1.0 / 128) ** 2 / 0.7
    errors = []
    for n in (8, 16, 32):
        err = solve_sine_decay_1d(n, dt=dt_fine)
        errors.append(err)
        print(f"  n={n:4d}   max error {err:.3e}")
    order = np.log2(errors[0] / errors[-1]) / 2
    print(f"  observed spatial order: {order:.2f} (two-point flux is 2nd order)")
    assert order > 1.8

    err2d = solve_2d_mode()
    print(f"\n2-D product mode on 24x24: max error {err2d:.3e}")
    assert err2d < 0.02

    print("\nFourier's law reproduced — but the paper's point (Sec. I) is that")
    print("at sub-micron scales this continuum model is *inadequate*, which is")
    print("why the BTE examples exist. Compare examples/bte_hotspot.py.")


if __name__ == "__main__":
    main()
