"""Quickstart: the paper's Section II model problem, end to end.

Solves the advection-reaction conservation law

    du/dt = -k*u - div(b u)

on a 2-D box with an inflow boundary, using exactly the DSL input shown in
the paper:

    conservationForm(u, "-k*u - surface(upwind(b, u))")

and prints the symbolic pipeline stages (expanded form, Euler form, the
LHS/RHS classification) followed by the generated source and the solution.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.dsl as finch
from repro.ir.lowering import lower_conservation_form, render_stage_listing
from repro.mesh import structured_grid


def main() -> None:
    finch.init_problem("quickstart")
    finch.domain(2)
    finch.solver_type(finch.FV)
    finch.time_stepper(finch.EULER_EXPLICIT)

    nx, ny = 40, 12
    cfl = 0.4
    dt = cfl / nx
    nsteps = int(round(1.2 / dt))  # t_end past the crossing time
    finch.set_steps(dt, nsteps)
    finch.mesh(structured_grid((nx, ny), [(0.0, 1.0), (0.0, 0.3)]))

    u = finch.variable("u")
    finch.coefficient("k", 0.8)  # reactive decay rate
    finch.coefficient("bx", 1.0)  # advection velocity (1, 0)
    finch.coefficient("by", 0.0)

    finch.boundary(u, 1, finch.DIRICHLET, 1.0)  # inflow at x = 0
    finch.boundary(u, 2, finch.NEUMANN0)  # outflow
    finch.boundary(u, 3, finch.NEUMANN0)
    finch.boundary(u, 4, finch.NEUMANN0)
    finch.initial(u, 0.0)

    finch.conservation_form(u, "-k*u - surface(upwind([bx;by], u))")

    # --- show the symbolic pipeline (paper Sec. II) --------------------------
    problem = finch.current_problem()
    expanded, form = lower_conservation_form(
        problem.equation.source, problem.unknown, problem.entities, problem.operators
    )
    print("=" * 72)
    print("symbolic pipeline (paper Section II):")
    print(render_stage_listing(expanded, form, problem.unknown))
    print("=" * 72)

    solver = finch.solve(u)

    print("\ngenerated source (first 40 lines):")
    print("\n".join(solver.source.splitlines()[:40]))

    # --- check against the analytic steady state ------------------------------
    # steady state of du/dt = -k u - u_x with u(0)=1:  u(x) = exp(-k x)
    sol = solver.solution()[0]
    x = solver.state.mesh.cell_centroids[:, 0]
    exact = np.exp(-0.8 * x)
    err = np.abs(sol - exact).max()
    print("\nsteady state reached after", nsteps, "steps")
    print(f"max deviation from exp(-k x): {err:.3e} "
          f"(first-order upwind on a {nx}-cell grid)")
    assert err < 0.05, "quickstart did not converge to the analytic profile"
    print("OK")


if __name__ == "__main__":
    main()
