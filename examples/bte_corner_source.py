"""The paper's second demonstration (Fig. 10): elongated material, corner
heat source.

A smaller-scale elongated silicon slab with the Gaussian heat source in the
top-left corner, an isothermal cold wall on the bottom, and symmetry
conditions on the left and right sides — at a colder base temperature
(100 K) where phonon transport is more ballistic.

Run:  python examples/bte_corner_source.py [--steps N]
"""

import argparse

import numpy as np

from repro.bte import build_bte_problem, corner_source_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=300)
    args = parser.parse_args()

    scenario = corner_source_scenario(
        nx=48, ny=16, ndirs=12, n_freq_bands=8, dt=5e-12, nsteps=args.steps
    )
    scenario.sigma = 30e-6  # resolve the corner source on the reduced grid

    print(f"scenario: {scenario.name}  ({scenario.lx * 1e6:.0f} um x "
          f"{scenario.ly * 1e6:.0f} um, T0 = {scenario.T0} K, "
          f"corner source at {scenario.T_hot} K)")

    problem, model = build_bte_problem(scenario)
    solver = problem.solve()

    T = solver.state.extra["T"].reshape(scenario.ny, scenario.nx)
    print(f"\nafter {args.steps} steps "
          f"({args.steps * scenario.dt * 1e9:.2f} ns):")
    print(f"  T range [{T.min():.3f}, {T.max():.3f}] K")

    # the heat source sits in the top-LEFT corner: temperature must decay
    # monotonically away from it along the top wall
    top = T[-1, :]
    assert top[0] == T.max() == top.max(), "hottest point should be the corner"
    third = scenario.nx // 3
    assert top[:third].mean() > top[third : 2 * third].mean() > top[2 * third :].mean()
    print("  corner is the hottest point; decay along the wall confirmed")

    ramp = " .:-=+*#%@"
    lo, span = T.min(), max(T.max() - T.min(), 1e-12)
    print("\ntemperature field (source in the top-left corner):")
    for j in range(scenario.ny - 1, -1, -1):
        print("".join(ramp[int(((v - lo) / span) ** 0.3 * (len(ramp) - 1))]
                      for v in T[j]))

    print("\nheat-flux direction at the corner cell:")
    q = model.heat_flux(solver.solution())
    corner = (scenario.ny - 1) * scenario.nx  # top-left cell index
    print(f"  q = ({q[0, corner]:+.3e}, {q[1, corner]:+.3e}) W/m^2 "
          "(downward and into the slab)")


if __name__ == "__main__":
    main()
