"""User-defined symbolic operators (paper Sec. II-A).

"A powerful feature of the DSL is the ability to define and import any
custom symbolic operator.  For example, a more sophisticated flux
reconstruction could be created and used in the input expression similar
to upwind."

This example defines exactly that: a **Rusanov (local Lax-Friedrichs)**
flux operator

    rusanov(v, u) = (v.n) * avg(u) - |v.n|/2 * (CELL2_u - CELL1_u)

built from the library's expression nodes, registers it with
``custom_operator``, uses it in the input string *in place of* ``upwind``,
and verifies it against the built-in on a rotating-velocity advection
problem (for scalar advection Rusanov and first-order upwind are
algebraically identical — a nontrivial check that the custom expansion is
right).

Run:  python examples/custom_operator.py
"""

import numpy as np

import repro.dsl as finch
from repro.mesh import structured_grid
from repro.symbolic.expr import Add, Call, Mul, Num, SideValue
from repro.symbolic.operators import dot_with_normal


def rusanov(velocity, quantity):
    """Central flux plus |v.n|/2 jump dissipation."""
    vn = dot_with_normal(velocity)
    central = Mul(vn, Mul(Num(0.5), Add(SideValue(quantity, 1), SideValue(quantity, 2))))
    dissipation = Mul(
        Num(-0.5),
        Call("abs", vn),
        Add(SideValue(quantity, 2), Mul(Num(-1), SideValue(quantity, 1))),
    )
    return Add(central, dissipation)


def solve(flux_operator: str) -> np.ndarray:
    finch.init_problem(f"rotating-{flux_operator}")
    finch.domain(2)
    finch.time_stepper(finch.EULER_EXPLICIT)
    n = 24
    finch.set_steps(0.25 / n, 160)
    finch.mesh(structured_grid((n, n), [(-1.0, 1.0), (-1.0, 1.0)]))
    u = finch.variable("u")
    # rotating velocity field (-y, x)
    finch.coefficient("bx", lambda c: -c[:, 1])
    finch.coefficient("by", lambda c: c[:, 0])
    for region in (1, 2, 3, 4):
        finch.boundary(u, region, finch.NEUMANN0)
    finch.initial(
        u, lambda c: np.exp(-8 * ((c[:, 0] - 0.4) ** 2 + c[:, 1] ** 2))
    )
    if flux_operator == "rusanov":
        finch.custom_operator("rusanov", rusanov, arity=2)
    finch.conservation_form(
        u, f"-surface({flux_operator}([bx;by], u))"
    )
    solver = finch.solve(u)
    finch.finalize()
    return solver.solution()[0]


def main() -> None:
    print("solid-body rotation of a Gaussian blob, 160 steps")
    print("  built-in:  -surface(upwind([bx;by], u))")
    print("  custom:    -surface(rusanov([bx;by], u))  (user-registered)")
    u_upwind = solve("upwind")
    u_rusanov = solve("rusanov")

    diff = np.abs(u_upwind - u_rusanov).max()
    print(f"\nmax |upwind - rusanov| = {diff:.3e}")
    print("(identical, as they must be for scalar advection: Rusanov's")
    print(" central+|v.n|/2-jump form IS first-order upwinding)")
    assert diff < 1e-12

    # the blob rotated: its centroid moved along the circle
    print(f"\nblob mass after rotation: {u_rusanov.sum():.4f} "
          f"(initial {u_upwind.sum():.4f} — conserved up to boundary loss)")


if __name__ == "__main__":
    main()
