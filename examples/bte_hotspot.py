"""The paper's primary demonstration: 2-D phonon BTE with a Gaussian hot spot.

This is the Python rendition of the appendix input deck (Fig. 1 geometry):
a square silicon domain, cold isothermal bottom wall at 300 K, isothermal
top wall carrying a 350 K Gaussian hot spot, specular symmetry left/right;
40 spectral bands (55 with polarisation) x 20 directions at full scale.

By default this runs a reduced configuration (~seconds); pass ``--full``
for the paper's 120x120 x 20 x 55 setup (slow in pure Python - the paper's
performance numbers for it come from the benchmark harness instead).

Run:  python examples/bte_hotspot.py [--full] [--steps N]
"""

import argparse

import numpy as np

from repro.bte import build_bte_problem, hotspot_scenario


def temperature_summary(T: np.ndarray, mesh, scenario) -> str:
    x = mesh.cell_centroids[:, 0]
    y = mesh.cell_centroids[:, 1]
    top = y > scenario.ly * (1 - 1.5 / scenario.ny)
    mid = np.abs(x - scenario.lx / 2) < scenario.lx / 8
    return (
        f"  T range:              [{T.min():9.4f}, {T.max():9.4f}] K\n"
        f"  mean T on top row:    {T[top].mean():9.4f} K\n"
        f"  mean T under the spot:{T[top & mid].mean():9.4f} K"
    )


def ascii_field(T: np.ndarray, scenario, width: int = 60, height: int = 18) -> str:
    """Coarse ASCII rendering of the temperature field (Fig. 2's shape)."""
    grid = T.reshape(scenario.ny, scenario.nx)
    ramp = " .:-=+*#%@"
    lo, hi = grid.min(), grid.max()
    span = max(hi - lo, 1e-12)
    rows = []
    for j in np.linspace(scenario.ny - 1, 0, height).astype(int):
        cols = grid[j, np.linspace(0, scenario.nx - 1, width).astype(int)]
        # power-law ramp so the faint spreading front stays visible
        # (the paper's Fig. 2 uses contour lines for the same reason)
        rows.append(
            "".join(
                ramp[int(((v - lo) / span) ** 0.3 * (len(ramp) - 1))] for v in cols
            )
        )
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="the paper's full 120x120 / 20 dirs / 55 bands setup")
    parser.add_argument("--steps", type=int, default=None, help="time steps")
    parser.add_argument("--vtk", metavar="FILE", default=None,
                        help="write the final temperature field as legacy VTK")
    args = parser.parse_args()

    if args.full:
        scenario = hotspot_scenario(nsteps=args.steps or 100)
    else:
        # reduced size; the larger dt is still stable (CFL: h/vg ~ 1.8 ns,
        # stiffest relaxation time ~ 1e-11 s at these band counts)
        scenario = hotspot_scenario(
            nx=32, ny=32, ndirs=12, n_freq_bands=10,
            dt=5e-12, nsteps=args.steps or 400,
        )
        scenario.sigma = 60e-6  # widen the spot so the coarse grid samples it

    print(f"scenario: {scenario.name}")
    print(f"  mesh {scenario.nx}x{scenario.ny}, {scenario.ndirs} directions, "
          f"{scenario.n_freq_bands} frequency bands")

    problem, model = build_bte_problem(scenario)
    print(f"  polarised bands: {model.bands.nbands} "
          f"({model.bands.n_la} LA + {model.bands.n_ta} TA)")
    print(f"  intensity DOF:   {model.ncomp * scenario.nx * scenario.ny:,}")
    print(f"  equation: {problem.equation.source}")

    solver = problem.solve()

    T = solver.state.extra["T"]
    print(f"\nafter {scenario.nsteps} steps "
          f"({scenario.nsteps * scenario.dt * 1e9:.3f} ns of transport):")
    print(temperature_summary(T, solver.state.mesh, scenario))
    print("\ntemperature field (hot spot at the top wall):")
    print(ascii_field(T, scenario))

    print("\nexecution-time breakdown (this run):")
    for phase, frac in sorted(solver.breakdown().items()):
        print(f"  {phase:<12} {frac * 100:5.1f}%")

    if args.vtk:
        from repro.mesh.vtk_io import write_vtk

        q = model.heat_flux(solver.solution())
        write_vtk(
            solver.state.mesh,
            args.vtk,
            {
                "temperature": T,
                "heat_flux_x": q[0],
                "heat_flux_y": q[1],
            },
            title="BTE hot-spot temperature (paper Fig. 2 scenario)",
        )
        print(f"\nwrote {args.vtk} (open in ParaView/VisIt)")


if __name__ == "__main__":
    main()
