"""Hybrid CPU/GPU generation: automatic placement, transfer planning,
asynchronous overlap, and the device profile (paper Secs. II-B, III-D).

Runs the BTE on the hybrid target with the simulated A6000, prints

* the min-cut placement decision (which tasks went to the GPU, with the
  CPU-pinned user callbacks),
* the automatic per-step transfer schedule ("Finch will automatically
  determine what variables need to be updated and communicated"),
* the generated kernel source,
* the virtual timeline breakdown (Fig. 8's categories) showing the
  boundary-callback work hidden under the kernel (Fig. 6),
* the device profiling table (the paper's SM-utilisation/throughput/FLOP
  table).

Run:  python examples/gpu_offload.py [--tiny]
"""

import argparse

import numpy as np

from repro.bte import build_bte_problem, hotspot_scenario
from repro.gpu.spec import A100


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="use a problem too small to be worth offloading "
                             "(shows the optimiser declining the GPU)")
    parser.add_argument("--a100", action="store_true",
                        help="use the A100 device model instead of the A6000")
    args = parser.parse_args()

    if args.tiny:
        scenario = hotspot_scenario(nx=4, ny=4, ndirs=4, n_freq_bands=2,
                                    dt=1e-12, nsteps=4)
    else:
        scenario = hotspot_scenario(nx=24, ny=24, ndirs=12, n_freq_bands=10,
                                    dt=1e-12, nsteps=20)

    problem, model = build_bte_problem(scenario)
    problem.enable_gpu(A100 if args.a100 else None)

    solver = problem.generate()
    print(f"requested target: gpu     generated target: {solver.target_name}")
    print()
    print(solver.placement.report())

    if solver.target_name != "gpu":
        print("\nthe optimiser kept everything on the CPU for this size —")
        print("rerun without --tiny to see the offloaded path")
        return

    print()
    print(solver.transfer_plan.report())

    print("\ngenerated interior kernel:")
    in_kernel = False
    for line in solver.source.splitlines():
        if line.startswith("def interior_kernel"):
            in_kernel = True
        elif in_kernel and line.startswith("def "):
            break
        if in_kernel:
            print("  " + line)

    solver.run()

    print(f"\nvirtual timeline after {scenario.nsteps} steps "
          f"(device: {solver.device.spec.name}):")
    total = solver.state.host_clock.now()
    for phase, seconds in sorted(solver.state.gpu_phases.items()):
        print(f"  {phase:<22} {seconds * 1e3:8.3f} ms   "
              f"({seconds / total * 100:5.1f}%)")
    print(f"  {'total':<22} {total * 1e3:8.3f} ms")

    kernel_busy = sum(r.duration for r in solver.device.default_stream.records)
    boundary = solver.namespace["COST_BOUNDARY"] * scenario.nsteps
    print(f"\noverlap (Fig. 6): kernel busy {kernel_busy * 1e3:.3f} ms, "
          f"CPU boundary work {boundary * 1e3:.3f} ms,")
    print(f"  but the intensity phase cost only "
          f"{solver.state.gpu_phases['solve for intensity'] * 1e3:.3f} ms — "
          "they ran concurrently")

    print("\ndevice profile of the interior kernel "
          "(cf. the paper's profiling table):")
    print(solver.device.profiler.report(solver.kernel.name).table())

    # sanity: the physics matches the serial path
    p2, _ = build_bte_problem(scenario)
    ref = p2.solve().solution()
    err = np.max(np.abs(solver.solution() - ref)) / np.max(np.abs(ref))
    print(f"\nrelative deviation from the CPU-only solver: {err:.2e}")


if __name__ == "__main__":
    main()
