"""Strong-scaling study across all the paper's strategies (Figs. 4, 7, 9).

Two layers, cross-checked against each other:

1. *Executed* small-scale runs: the distributed code generator produces real
   SPMD rank programs that run on the simulated communicator (actual halo
   exchanges / reductions, virtual clocks charged by the calibrated cost
   model) for a reduced BTE configuration;
2. *Modelled* paper-scale sweeps: the analytic evaluators reproduce the
   full 120x120 x 20 x 55 configuration out to 320 processes and 55 GPUs.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.bte import build_bte_problem, hotspot_scenario
from repro.perfmodel import BTEWorkload, strong_scaling_table
from repro.perfmodel.scaling import (
    PHASE_COMMUNICATION,
    PHASE_INTENSITY,
    PHASE_TEMPERATURE,
)


def executed_study() -> None:
    print("=" * 72)
    print("executed SPMD runs (reduced configuration, real data exchange)")
    print("=" * 72)
    scenario = hotspot_scenario(nx=12, ny=12, ndirs=8, n_freq_bands=6,
                                dt=1e-12, nsteps=5)
    base_u = None
    print(f"{'strategy':<10}{'ranks':>6}{'virtual time':>15}{'msgs':>8}{'bytes':>12}")
    for strategy, ranks in (("bands", [1, 2, 4, 7]), ("cells", [1, 2, 4, 8])):
        for p in ranks:
            problem, _ = build_bte_problem(scenario)
            if p > 1:
                problem.set_partitioning(strategy, p,
                                         index="b" if strategy == "bands" else None)
            solver = problem.solve()
            if base_u is None:
                base_u = solver.solution()
            assert np.array_equal(solver.solution(), base_u), "strategies disagree!"
            if p > 1:
                res = solver.state.spmd_result
                msgs = sum(s.messages_sent for s in res.stats)
                byts = sum(s.bytes_sent for s in res.stats)
                t = res.makespan
            else:
                msgs, byts = 0, 0
                t = solver.state.timers.total("solve") + solver.state.timers.total(
                    "post_step"
                )
            print(f"{strategy:<10}{p:>6}{t:>14.4f}s{msgs:>8}{byts:>12,}")
    print("(all strategies produced bit-identical solutions)")


def modelled_study() -> None:
    print()
    print("=" * 72)
    print("modelled paper-scale sweeps (120x120 cells, 20 dirs, 55 bands,")
    print("100 steps; Cascade Lake rates + A6000 device model)")
    print("=" * 72)
    tab = strong_scaling_table()
    print(f"\n{'':>6}" + "".join(f"{name:>12}" for name in tab))
    procs = sorted({p for st in tab.values() for p in st.procs})
    for p in procs:
        row = f"{p:>6}"
        for st in tab.values():
            if p in st.procs:
                row += f"{st.total[st.procs.index(p)]:>11.1f}s"
            else:
                row += f"{'-':>12}"
        print(row)

    print("\nexecution-time breakdowns (Figs. 5 and 8):")
    for name in ("bands", "GPU"):
        st = tab[name]
        print(f"\n  {name}:")
        print(f"    {'p':>4} {'intensity':>10} {'temperature':>12} {'comm':>7}")
        for p in st.procs:
            fr = st.breakdown_fractions(p)
            print(f"    {p:>4} {fr[PHASE_INTENSITY] * 100:>9.1f}% "
                  f"{fr[PHASE_TEMPERATURE] * 100:>11.1f}% "
                  f"{fr[PHASE_COMMUNICATION] * 100:>6.2f}%")

    b, g = tab["bands"], tab["GPU"]
    print("\nheadline numbers vs the paper:")
    for p in (1, 2):
        ratio = b.total[b.procs.index(p)] / g.total[g.procs.index(p)]
        print(f"  CPU/GPU speedup at {p} partition(s): {ratio:.1f}x "
              "(paper: ~18x)")
    f = tab["Fortran"]
    print(f"  Finch/Fortran serial ratio: "
          f"{b.total[0] / f.total[0]:.2f}x (paper: ~2x)")


if __name__ == "__main__":
    executed_study()
    modelled_study()
