"""Multi-tenant solver service: dedup, shared artifacts, quotas, priorities.

N tenants fire mixed-priority requests at one in-process solver service.
Many of the requests are *identical* (same ``repro.cache/1`` signature and
runtime binding): the service coalesces those onto a single job, so one
solve — and one compiled artifact — serves every tenant that asked.  The
rest share the compiled artifact even when their answers differ (different
step counts bind the same generated code).  The script ends by reading the
``repro.serve/1`` status document and printing the dedup and warm-hit
rates it advertises.

Run:  python examples/serve_many_tenants.py [--tenants N] [--requests N]
      [--nx N] [--steps N]
"""

import argparse

import numpy as np

from repro.bte import build_bte_problem, hotspot_scenario
from repro.serve import serve_session


def make_problem(nx: int, nsteps: int):
    scenario = hotspot_scenario(nx=nx, ny=nx, ndirs=4, n_freq_bands=4,
                                dt=1e-12, nsteps=nsteps)
    problem, _ = build_bte_problem(scenario)
    return problem


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tenants", type=int, default=4)
    ap.add_argument("--requests", type=int, default=4,
                    help="requests submitted per tenant")
    ap.add_argument("--nx", type=int, default=8)
    ap.add_argument("--steps", type=int, default=3)
    args = ap.parse_args()

    # request mix per tenant: mostly the same problem (dedup fodder), plus
    # one variant whose answer differs but whose generated code does not
    shapes = [(args.nx, args.steps)] * (max(args.requests - 1, 1)) \
        + [(args.nx, args.steps + 2)]
    priorities = ["normal", "high", "batch"]

    print(f"starting solver service for {args.tenants} tenant(s) x "
          f"{args.requests} request(s) ...")
    with serve_session(workers=2, queue_max=128) as service:
        client = service.client
        client.hold()  # stage the whole burst so requests truly overlap
        tickets = []
        for t in range(args.tenants):
            for r in range(args.requests):
                nx, nsteps = shapes[r % len(shapes)]
                tickets.append(client.submit(
                    make_problem(nx, nsteps),
                    tenant=f"tenant{t}",
                    priority=priorities[(t + r) % len(priorities)]))
        client.release()
        results = [ticket.result(300) for ticket in tickets]
        doc = client.status()

    # every tenant that asked the same question got the same bits back
    by_key: dict[str, list] = {}
    for res in results:
        by_key.setdefault(res.key, []).append(res)
    identical = all(
        all(np.array_equal(r.u, group[0].u) for r in group)
        for group in by_key.values())
    counters, cache = doc["counters"], doc["cache"]
    without_solve = counters["deduped"] + counters["results_reused"]
    dedup_rate = 100.0 * without_solve / max(1, counters["requests"])
    lookups = cache["memory_hits"] + cache["disk_hits"] + cache["misses"]
    warm_rate = 100.0 * (cache["memory_hits"] + cache["disk_hits"]) \
        / max(1, lookups)

    print(f"requests: {counters['requests']}  "
          f"distinct jobs solved: {counters['completed']}")
    print(f"in-flight dedup: {counters['deduped']}  "
          f"result reuse: {counters['results_reused']}")
    print(f"dedup rate: {dedup_rate:.1f}%")
    print(f"artifact builds: {cache['builds']}  "
          f"warm-hit rate: {warm_rate:.1f}%")
    print(f"results bit-identical within each job: {identical}")
    for name, state in sorted(doc["tenants"].items()):
        print(f"  {name}: submitted={state['submitted']} "
              f"deduped={state['deduped']} "
              f"hashtree root={state['hashtree']['root']}")


if __name__ == "__main__":
    main()
