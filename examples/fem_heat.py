"""The multi-discretisation DSL: the same heat problem through FEM and FVM.

The paper's DSL "includes support for finite element and finite volume
methods (FEM and FVM)" and describes how weak-form input is classified
"into linear and bilinear groups".  This example declares transient heat
conduction with a manufactured source twice —

    FEM:  weak_form(u, "-k*dot(grad(u), grad(v)) + f*v")     (P1, lumped mass)
    FVM:  conservation_form(u, "surface(diffuse(k, u)) + f")  (two-point flux)

— runs both to the manufactured steady state `u = sin(pi x) sin(pi y)`,
prints the weak-form classification listing, and compares the fields.

Run:  python examples/fem_heat.py
"""

import numpy as np

from repro.dsl.entities import NODE
from repro.dsl.problem import Problem
from repro.fvm.boundary import BCKind
from repro.mesh.grid import structured_grid, triangulated_grid

D = 1.0
N = 16
T_END = 0.35  # several diffusive time constants: effectively steady


def source(x):
    return 2.0 * D * np.pi**2 * np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1])


def exact(x):
    return np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1])


def solve_fem():
    dt = 0.15 * (1.0 / N) ** 2 / D
    p = Problem("fem-heat")
    p.set_domain(2)
    p.set_solver_type("FEM")
    p.set_steps(dt, int(round(T_END / dt)))
    p.set_mesh(triangulated_grid((N, N)))
    p.add_variable("u", location=NODE)
    p.add_coefficient("k", D)
    p.add_coefficient("f", source)
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.DIRICHLET, 0.0)
    p.set_initial("u", 0.0)
    p.set_weak_form("u", "-k*dot(grad(u), grad(v)) + f*v")
    solver = p.solve()
    return solver


def solve_fvm():
    dt = 0.15 * (1.0 / N) ** 2 / D
    p = Problem("fvm-heat")
    p.set_domain(2)
    p.set_steps(dt, int(round(T_END / dt)))
    p.set_mesh(structured_grid((N, N)))
    p.add_variable("u")
    p.add_coefficient("k", D)
    p.add_coefficient("f", source)
    for r in (1, 2, 3, 4):
        p.add_boundary("u", r, BCKind.DIRICHLET, 0.0)
    p.set_initial("u", 0.0)
    p.set_conservation_form("u", "surface(diffuse(k, u)) + f")
    return p.solve()


def main() -> None:
    fem = solve_fem()
    print("weak-form classification (printed into the generated source):")
    for line in fem.source.splitlines():
        if line.strip().startswith(("Bilinear", "Linear", "stiffness", "load")):
            print("  " + line.strip())

    nodes = fem.state.mesh.nodes
    err_fem = np.abs(fem.solution()[0] - exact(nodes)).max()
    print(f"\nFEM  (P1 triangles, {N}x{N}x2):  max error vs manufactured "
          f"solution {err_fem:.2e}")

    fvm = solve_fvm()
    cells = fvm.state.mesh.cell_centroids
    err_fvm = np.abs(fvm.solution()[0] - exact(cells)).max()
    print(f"FVM  (two-point flux, {N}x{N}):   max error {err_fvm:.2e}")

    assert err_fem < 0.02 and err_fvm < 0.02
    print("\nsame physics, two discretisations, one DSL — the paper's")
    print('"multi-discretization" claim in action.')


if __name__ == "__main__":
    main()
