"""Coarse 3-D phonon BTE (paper Sec. III-A: "Some very coarse-grained
3-dimensional runs were also performed successfully").

A small silicon cube with a Gaussian hot spot on the top (z-max) face, a
cold isothermal bottom, and specular symmetry on the four sides, using the
product direction set the paper quotes for 3-D ("around 20 x 20 = 400" at
full scale; this demo uses 8 x 4 = 32 ordinates).

Run:  python examples/bte_3d.py [--steps N]
"""

import argparse

import numpy as np

from repro.bte import build_bte_problem_3d, coarse_3d_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=120)
    args = parser.parse_args()

    scenario = coarse_3d_scenario(
        nx=10, ny=10, nz=10, n_azimuthal=8, n_polar=4,
        n_freq_bands=6, dt=2e-12, nsteps=args.steps,
    )
    scenario.lx = scenario.ly = scenario.lz = 60e-6
    scenario.sigma = 20e-6

    problem, model = build_bte_problem_3d(scenario)
    ncells = scenario.nx * scenario.ny * scenario.nz
    print(f"3-D BTE: {scenario.nx}^3 cells x {model.dirs.ndirs} ordinates x "
          f"{model.bands.nbands} bands = {model.ncomp * ncells:,} DOF")
    print(f"equation: {problem.equation.source}")

    solver = problem.solve()
    T = solver.state.extra["T"].reshape(scenario.nz, scenario.ny, scenario.nx)

    print(f"\nafter {args.steps} steps "
          f"({args.steps * scenario.dt * 1e9:.2f} ns):")
    print(f"  T range [{T.min():.4f}, {T.max():.4f}] K")
    print("\nhorizontal-slice maxima (bottom -> top):")
    for k in range(scenario.nz):
        bar = "#" * int((T[k].max() - scenario.T0) / max(T.max() - scenario.T0, 1e-12) * 40)
        print(f"  z={k:2d}  Tmax={T[k].max():9.4f} K  {bar}")

    # the bulb under the spot is symmetric in both lateral directions
    assert np.allclose(T, T[:, :, ::-1], rtol=1e-9)
    assert np.allclose(T, T[:, ::-1, :], rtol=1e-9)
    print("\nlateral mirror symmetry confirmed (the four specular walls)")


if __name__ == "__main__":
    main()
